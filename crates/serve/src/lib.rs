//! `atm-serve`: the memoization runtime as a **long-running service**.
//!
//! The batch experiments of the paper submit one application's task graph,
//! taskwait, and exit. A serving deployment is a different regime: the
//! process stays up indefinitely, *sessions* come and go — each registering
//! its own data regions and submitting small task DAGs as *requests* — and
//! the operator cares about request latency percentiles and sustainable
//! throughput, not end-to-end makespan. This crate builds that tier on the
//! existing [`atm_runtime::Runtime`] without forking it:
//!
//! * **Sessions** ([`ServeEngine::session`]) own namespaced regions
//!   (registered as `s<id>/<name>`, so tenants cannot collide) and release
//!   them on [`Session::close`] through the runtime's region retirement —
//!   region bytes and dependence-index entries are bounded by the *live*
//!   sessions, not by how many ever existed.
//! * **Requests** ([`Session::request`]) stage a small task DAG and submit
//!   it as one batch. Completion is detected by a per-request
//!   [`atm_runtime::TaskNotify`] hook — no polling — and the end-to-end
//!   latency (admission to last task completion) lands in the shared
//!   [`Observability`] histogram under [`LatencyMetric::Request`].
//! * **Admission control**: a bounded in-flight-request window plus the
//!   runtime's own live-task window ([`RuntimeBuilder::max_live_tasks`]).
//!   When either is full, submission fails fast with
//!   [`ServeError::Overloaded`] carrying a retry-after hint — the service
//!   never queues unboundedly, which is what keeps tail latency bounded in
//!   an open-loop world (clients keep arriving whether or not the server
//!   keeps up).
//! * **Graceful drain** ([`ServeEngine::drain`]): stop admitting, let
//!   in-flight requests finish, and hand back one final unified
//!   [`Observation`] before stopping the workers.
//!
//! Memoization composes transparently: configure an [`AtmConfig`] and every
//! request's tasks go through the THT/IKT exactly as in batch mode — a
//! service whose tenants resubmit similar work sheds kernel executions and
//! serves them from the memo store.
//!
//! # Example
//!
//! ```
//! use atm_serve::{ServeConfig, ServeEngine};
//! use atm_runtime::TaskTypeBuilder;
//!
//! let serve = ServeEngine::new(ServeConfig::default().workers(2));
//! let scale = serve.register_task_type(
//!     TaskTypeBuilder::new("scale", |ctx| {
//!         let v: Vec<f64> = ctx.arg::<f64>(0).iter().map(|x| x * 2.0).collect();
//!         ctx.out(1, &v);
//!     })
//!     .arg::<f64>()
//!     .out::<f64>()
//!     .build(),
//! );
//!
//! let mut session = serve.session().unwrap();
//! let input = session.register_region("in", vec![1.0f64, 2.0]).unwrap();
//! let output = session.register_zeros::<f64>("out", 2).unwrap();
//! let request = session
//!     .request()
//!     .task(scale)
//!     .reads(&input)
//!     .writes(&output)
//!     .submit()
//!     .unwrap();
//! request.wait();
//! assert_eq!(serve.runtime().store().read(output).lock().as_f64(), &[2.0, 4.0]);
//! session.close().unwrap();
//! let report = serve.drain();
//! assert_eq!(report.latency.get(atm_obs::LatencyMetric::Request).count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atm_core::{AtmConfig, AtmEngine};
use atm_obs::{LatencyMetric, Observability};
use atm_runtime::{
    DeregisterError, Elem, MemoSpec, Observation, Region, RegionId, Runtime, RuntimeBuilder,
    SubmitError, TaskDesc, TaskId, TaskNotify, TaskTypeId, TaskTypeInfo,
};
use atm_sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use atm_sync::{Condvar, Event, Mutex};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a [`ServeEngine`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    workers: usize,
    max_inflight_requests: usize,
    max_live_tasks: u64,
    retry_after_hint_ns: u64,
    atm: Option<AtmConfig>,
    record_metrics: bool,
}

impl Default for ServeConfig {
    /// Two workers, a 64-request window, a 4096-task live window, a 1 ms
    /// retry hint, no memoization, metrics on.
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_inflight_requests: 64,
            max_live_tasks: 4096,
            retry_after_hint_ns: 1_000_000,
            atm: None,
            record_metrics: true,
        }
    }
}

impl ServeConfig {
    /// Number of worker threads executing request tasks.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Bounds the number of requests admitted but not yet completed. The
    /// window is the service's primary backpressure: a submission beyond it
    /// fails fast with [`ServeError::Overloaded`] instead of queueing.
    #[must_use]
    pub fn max_inflight_requests(mut self, limit: usize) -> Self {
        assert!(limit >= 1, "a zero-request window would reject everything");
        self.max_inflight_requests = limit;
        self
    }

    /// Bounds the number of live tasks inside the runtime (see
    /// [`RuntimeBuilder::max_live_tasks`]); the second, finer-grained
    /// admission layer for requests of uneven size.
    #[must_use]
    pub fn max_live_tasks(mut self, limit: u64) -> Self {
        self.max_live_tasks = limit;
        self
    }

    /// The retry-after hint reported inside [`ServeError::Overloaded`].
    #[must_use]
    pub fn retry_after_hint_ns(mut self, ns: u64) -> Self {
        self.retry_after_hint_ns = ns;
        self
    }

    /// Installs the ATM memoization engine with this configuration; every
    /// request's tasks then go through the THT/IKT.
    #[must_use]
    pub fn atm(mut self, config: AtmConfig) -> Self {
        self.atm = Some(config);
        self
    }

    /// Whether the service records latency histograms and memo decisions
    /// (on by default — they are the serving tier's product; turn off only
    /// for overhead experiments).
    #[must_use]
    pub fn record_metrics(mut self, enabled: bool) -> Self {
        self.record_metrics = enabled;
        self
    }
}

/// Why the service refused or failed a request.
#[derive(Debug)]
pub enum ServeError {
    /// The admission window (in-flight requests or live tasks) is full.
    /// Back off for roughly `retry_after_ns` and resubmit.
    Overloaded {
        /// Occupancy of the window that rejected the request.
        inflight: u64,
        /// Capacity of that window.
        capacity: u64,
        /// Suggested client backoff before retrying.
        retry_after_ns: u64,
    },
    /// The service is draining (or already stopped): no new sessions or
    /// requests are admitted.
    Draining,
    /// The request staged no tasks.
    EmptyRequest,
    /// The runtime rejected the submission for a non-capacity reason
    /// (unknown task type, signature mismatch, retired region, …).
    Rejected(SubmitError),
    /// A region could not be registered (duplicate name, zero length, …).
    Register(atm_runtime::RegisterError),
    /// A session region could not be deregistered at close.
    Deregister(DeregisterError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                inflight,
                capacity,
                retry_after_ns,
            } => write!(
                f,
                "service overloaded ({inflight} of {capacity} window slots in use); \
                 retry after ~{retry_after_ns} ns"
            ),
            ServeError::Draining => write!(f, "service is draining; no new work admitted"),
            ServeError::EmptyRequest => write!(f, "request stages no tasks"),
            ServeError::Rejected(err) => write!(f, "request rejected: {err}"),
            ServeError::Register(err) => write!(f, "session region registration failed: {err}"),
            ServeError::Deregister(err) => write!(f, "session region release failed: {err}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rejected(err) => Some(err),
            ServeError::Register(err) => Some(err),
            ServeError::Deregister(err) => Some(err),
            _ => None,
        }
    }
}

/// State shared between the engine, its sessions and the per-request
/// completion hooks.
struct Shared {
    /// False once [`ServeEngine::drain`] starts: admission closed.
    accepting: AtomicBool,
    /// Requests admitted and not yet completed.
    inflight: AtomicUsize,
    max_inflight: usize,
    retry_after_hint_ns: u64,
    /// Completion wakeups: [`Session::close`] waits for its own requests,
    /// [`ServeEngine::drain`] for all of them. Waiters re-check their
    /// predicate under the lock; notifiers take the lock before notifying,
    /// so a wakeup between the predicate check and the wait cannot be lost.
    wake_lock: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    /// Blocks until `done()` holds. `done` must eventually be made true by
    /// a completion hook (which notifies `wake`).
    fn wait_until(&self, done: impl Fn() -> bool) {
        let mut guard = self.wake_lock.lock();
        while !done() {
            self.wake.wait(&mut guard);
        }
    }

    fn notify_waiters(&self) {
        let _guard = self.wake_lock.lock();
        self.wake.notify_all();
    }
}

/// Per-session bookkeeping shared with the session's request hooks.
struct SessionState {
    /// Requests this session admitted and not yet completed.
    open_requests: AtomicUsize,
}

/// Completion hook attached to every task of a request: the last task to
/// finish stamps the request latency, frees the admission slot and wakes
/// blocked waiters. Implements [`TaskNotify`], so it runs on the completing
/// worker right after the task left the runtime's outstanding count.
struct RequestTracker {
    remaining: AtomicUsize,
    started: Instant,
    latency_ns: AtomicU64,
    completed: AtomicBool,
    done: Event,
    shared: Arc<Shared>,
    session: Arc<SessionState>,
    obs: Arc<Observability>,
}

impl TaskNotify for RequestTracker {
    fn task_finished(&self, worker: usize, _task: TaskId) {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) != 1 {
            return;
        }
        let elapsed = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.latency_ns.store(elapsed, Ordering::SeqCst);
        if self.obs.is_enabled() {
            self.obs
                .record_latency(LatencyMetric::Request, worker, elapsed);
        }
        self.session.open_requests.fetch_sub(1, Ordering::SeqCst);
        self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        // Publish completion before signalling so a waiter that wakes (or
        // never slept) observes it.
        self.completed.store(true, Ordering::SeqCst);
        self.done.signal();
        self.shared.notify_waiters();
    }
}

/// Handle to one admitted request.
#[must_use = "an unawaited request still runs, but its latency is lost to the caller"]
pub struct Request {
    tracker: Arc<RequestTracker>,
}

impl Request {
    /// True once every task of the request has finished.
    pub fn is_complete(&self) -> bool {
        self.tracker.completed.load(Ordering::SeqCst)
    }

    /// Blocks until the request completes. Idempotent.
    pub fn wait(&self) {
        while !self.is_complete() {
            self.tracker.done.wait();
        }
    }

    /// End-to-end latency (admission to last task completion), available
    /// once the request completed; `None` while still in flight.
    pub fn latency_ns(&self) -> Option<u64> {
        if self.is_complete() {
            Some(self.tracker.latency_ns.load(Ordering::SeqCst))
        } else {
            None
        }
    }
}

/// The serving tier: a long-running [`Runtime`] (optionally with the ATM
/// engine installed) fronted by sessions, admission control and drain.
///
/// The engine is `Sync`: sessions can be opened and driven from many client
/// threads concurrently — the runtime's sharded submission locks keep
/// disjoint sessions from contending.
pub struct ServeEngine {
    runtime: Runtime,
    engine: Option<Arc<AtmEngine>>,
    obs: Arc<Observability>,
    shared: Arc<Shared>,
    next_session: AtomicU64,
}

impl ServeEngine {
    /// Builds the service: runtime, optional memoization engine and the
    /// shared observability handle, wired together.
    pub fn new(config: ServeConfig) -> Self {
        let obs = Arc::new(if config.record_metrics {
            Observability::enabled()
        } else {
            Observability::disabled()
        });
        let mut builder = RuntimeBuilder::new()
            .workers(config.workers)
            .max_live_tasks(config.max_live_tasks)
            .observability(Arc::clone(&obs));
        let engine = config
            .atm
            .map(|atm| Arc::new(AtmEngine::new(atm).with_observability(Arc::clone(&obs))));
        if let Some(engine) = &engine {
            builder = builder.interceptor(Arc::clone(engine) as Arc<_>);
        }
        ServeEngine {
            runtime: builder.build(),
            engine,
            obs,
            shared: Arc::new(Shared {
                accepting: AtomicBool::new(true),
                inflight: AtomicUsize::new(0),
                max_inflight: config.max_inflight_requests,
                retry_after_hint_ns: config.retry_after_hint_ns,
                wake_lock: Mutex::new(()),
                wake: Condvar::new(),
            }),
            next_session: AtomicU64::new(0),
        }
    }

    /// The underlying runtime (regions, stats, tracer).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The installed memoization engine, when one was configured.
    pub fn engine(&self) -> Option<&Arc<AtmEngine>> {
        self.engine.as_ref()
    }

    /// The shared observability handle ([`LatencyMetric::Request`] carries
    /// the request-latency histogram).
    pub fn observability(&self) -> &Arc<Observability> {
        &self.obs
    }

    /// Registers a task type shared by all sessions — the service's fixed
    /// "endpoint" set. The runtime's type registry is append-only, so types
    /// belong to the service, not to (churning) sessions.
    pub fn register_task_type(&self, info: TaskTypeInfo) -> TaskTypeId {
        self.runtime.register_task_type(info)
    }

    /// Requests admitted and not yet completed.
    pub fn inflight_requests(&self) -> usize {
        self.shared.inflight.load(Ordering::SeqCst)
    }

    /// Opens a session. Fails with [`ServeError::Draining`] once
    /// [`ServeEngine::drain`] has started.
    pub fn session(&self) -> Result<Session<'_>, ServeError> {
        if !self.shared.accepting.load(Ordering::SeqCst) {
            return Err(ServeError::Draining);
        }
        let id = self.next_session.fetch_add(1, Ordering::SeqCst);
        Ok(Session {
            serve: self,
            id,
            regions: Vec::new(),
            state: Arc::new(SessionState {
                open_requests: AtomicUsize::new(0),
            }),
        })
    }

    /// One unified snapshot of every layer's counters and histograms (see
    /// [`Runtime::observe`]).
    pub fn observe(&self) -> Observation {
        self.runtime.observe()
    }

    /// Gracefully drains the service: stops admitting sessions and
    /// requests, waits for every in-flight request to complete, and returns
    /// the final [`Observation`] after stopping the workers. Already-open
    /// sessions can no longer submit ([`ServeError::Draining`]) but their
    /// in-flight work finishes normally.
    pub fn drain(self) -> Observation {
        self.shared.accepting.store(false, Ordering::SeqCst);
        let shared = Arc::clone(&self.shared);
        shared.wait_until(|| shared.inflight.load(Ordering::SeqCst) == 0);
        // Notify hooks fire after the runtime's outstanding count drops, so
        // inflight == 0 implies the graph may still be retiring the very
        // last nodes; taskwait settles it.
        self.runtime.taskwait();
        let report = self.runtime.observe();
        self.runtime.shutdown();
        report
    }
}

/// One tenant of the service: owns namespaced regions and submits requests.
/// Close it with [`Session::close`] to release its regions; dropping a
/// session without closing leaks its regions until the process exits (the
/// service cannot tell an abandoned session from a slow one).
pub struct Session<'serve> {
    serve: &'serve ServeEngine,
    id: u64,
    regions: Vec<RegionId>,
    state: Arc<SessionState>,
}

impl Session<'_> {
    /// The session id (also the region-name namespace `s<id>/…`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Registers a typed region owned by this session. The name is
    /// namespaced per session, so concurrent tenants cannot collide.
    pub fn register_region<T: Elem>(
        &mut self,
        name: impl AsRef<str>,
        data: Vec<T>,
    ) -> Result<Region<T>, ServeError> {
        let region = self
            .serve
            .runtime
            .store()
            .register_typed(format!("s{}/{}", self.id, name.as_ref()), data)
            .map_err(ServeError::Register)?;
        self.regions.push(region.id());
        Ok(region)
    }

    /// Registers a zero-initialised region owned by this session.
    pub fn register_zeros<T: Elem>(
        &mut self,
        name: impl AsRef<str>,
        len: usize,
    ) -> Result<Region<T>, ServeError> {
        self.register_region(name, vec![T::ZERO; len])
    }

    /// Stages a new request (a small task DAG submitted as one batch).
    pub fn request(&self) -> RequestBuilder<'_, '_> {
        RequestBuilder {
            session: self,
            staged: Vec::new(),
            current: None,
            independent: false,
        }
    }

    /// Requests this session admitted that have not yet completed.
    pub fn open_requests(&self) -> usize {
        self.state.open_requests.load(Ordering::SeqCst)
    }

    /// Closes the session: waits for its in-flight requests, then
    /// deregisters every region it owns. Returns the data bytes freed.
    pub fn close(self) -> Result<usize, ServeError> {
        let shared = &self.serve.shared;
        let state = &self.state;
        shared.wait_until(|| state.open_requests.load(Ordering::SeqCst) == 0);
        let mut freed = 0usize;
        for region in &self.regions {
            // The completion hook fires after the graph pruned the request's
            // live accesses, so by the time `open_requests` hit zero no task
            // of this session holds an accessor entry — deregistration
            // cannot see `LiveAccessors` unless a foreign task touched a
            // session region, which *is* an error worth surfacing.
            freed += self
                .serve
                .runtime
                .deregister_region(*region)
                .map_err(ServeError::Deregister)?;
        }
        Ok(freed)
    }
}

/// Fluent staging of one request's task DAG; mirrors the vocabulary of
/// [`atm_runtime::BatchBuilder`].
#[must_use = "a request builder does nothing until `submit()` is called"]
pub struct RequestBuilder<'s, 'serve> {
    session: &'s Session<'serve>,
    staged: Vec<TaskDesc>,
    current: Option<TaskDesc>,
    independent: bool,
}

impl RequestBuilder<'_, '_> {
    fn seal_current(&mut self) {
        if let Some(desc) = self.current.take() {
            self.staged.push(desc);
        }
    }

    fn current_mut(&mut self) -> &mut TaskDesc {
        self.current
            .as_mut()
            .expect("open a task with `task(tt)` before declaring accesses")
    }

    /// Opens the next task of the request as an instance of `task_type`.
    pub fn task(mut self, task_type: TaskTypeId) -> Self {
        self.seal_current();
        self.current = Some(TaskDesc::new(task_type, Vec::new()));
        self
    }

    /// Declares a whole-region read of the open task.
    pub fn reads<T: Elem>(mut self, region: &Region<T>) -> Self {
        self.current_mut()
            .accesses
            .push(atm_runtime::Access::read(region));
        self
    }

    /// Declares a whole-region write of the open task.
    pub fn writes<T: Elem>(mut self, region: &Region<T>) -> Self {
        self.current_mut()
            .accesses
            .push(atm_runtime::Access::write(region));
        self
    }

    /// Declares a whole-region read-write of the open task.
    pub fn reads_writes<T: Elem>(mut self, region: &Region<T>) -> Self {
        self.current_mut()
            .accesses
            .push(atm_runtime::Access::read_write(region));
        self
    }

    /// Opts the open task into memoization.
    pub fn memo(mut self, spec: impl Into<MemoSpec>) -> Self {
        self.current_mut().memo = Some(spec.into());
        self
    }

    /// Declares that the request's tasks are mutually independent, enabling
    /// the runtime's fast batch dependence pass (see
    /// [`atm_runtime::Runtime::try_submit_all_independent`]).
    pub fn independent(mut self) -> Self {
        self.independent = true;
        self
    }

    /// Admits and submits the request. Fails fast with
    /// [`ServeError::Overloaded`] when either admission window is full and
    /// with [`ServeError::Draining`] once the service stopped admitting.
    pub fn submit(mut self) -> Result<Request, ServeError> {
        self.seal_current();
        if self.staged.is_empty() {
            return Err(ServeError::EmptyRequest);
        }
        let serve = self.session.serve;
        let shared = &serve.shared;
        if !shared.accepting.load(Ordering::SeqCst) {
            return Err(ServeError::Draining);
        }
        // Claim an in-flight slot (CAS loop: the window is contended by
        // concurrent client threads).
        let mut inflight = shared.inflight.load(Ordering::SeqCst);
        loop {
            if inflight >= shared.max_inflight {
                return Err(ServeError::Overloaded {
                    inflight: inflight as u64,
                    capacity: shared.max_inflight as u64,
                    retry_after_ns: shared.retry_after_hint_ns,
                });
            }
            match shared.inflight.compare_exchange(
                inflight,
                inflight + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(current) => inflight = current,
            }
        }
        self.session
            .state
            .open_requests
            .fetch_add(1, Ordering::SeqCst);

        let tracker = Arc::new(RequestTracker {
            remaining: AtomicUsize::new(self.staged.len()),
            started: Instant::now(),
            latency_ns: AtomicU64::new(0),
            completed: AtomicBool::new(false),
            done: Event::new(),
            shared: Arc::clone(shared),
            session: Arc::clone(&self.session.state),
            obs: Arc::clone(&serve.obs),
        });
        let descs: Vec<TaskDesc> = self
            .staged
            .drain(..)
            .map(|desc| desc.with_notify(Arc::clone(&tracker) as Arc<dyn TaskNotify>))
            .collect();
        let submitted = if self.independent {
            serve.runtime.try_submit_all_independent(descs)
        } else {
            serve.runtime.try_submit_all(descs)
        };
        if let Err(err) = submitted {
            // Give back the admission slot: nothing was submitted.
            self.session
                .state
                .open_requests
                .fetch_sub(1, Ordering::SeqCst);
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            shared.notify_waiters();
            return Err(match err {
                SubmitError::Overloaded { live, capacity } => ServeError::Overloaded {
                    inflight: live,
                    capacity,
                    retry_after_ns: shared.retry_after_hint_ns,
                },
                other => ServeError::Rejected(other),
            });
        }
        Ok(Request { tracker })
    }
}

#[cfg(test)]
mod tests;
