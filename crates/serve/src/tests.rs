//! Serving-tier behaviour: admission, backpressure, drain, multi-tenant
//! region lifecycle, and the bounded-memory guarantees under session churn.

use super::*;
use atm_runtime::{RegionStatus, TaskTypeBuilder};
use atm_sync::Event;

fn scale_type(serve: &ServeEngine) -> TaskTypeId {
    serve.register_task_type(
        TaskTypeBuilder::new("scale", |ctx| {
            let v: Vec<f64> = ctx.arg::<f64>(0).iter().map(|x| x * 2.0).collect();
            ctx.out(1, &v);
        })
        .arg::<f64>()
        .out::<f64>()
        .build(),
    )
}

#[test]
fn request_round_trip_records_latency() {
    let serve = ServeEngine::new(ServeConfig::default().workers(2));
    let scale = scale_type(&serve);
    let mut session = serve.session().unwrap();
    let input = session
        .register_region("in", vec![1.0f64, 2.0, 3.0])
        .unwrap();
    let output = session.register_zeros::<f64>("out", 3).unwrap();
    let request = session
        .request()
        .task(scale)
        .reads(&input)
        .writes(&output)
        .submit()
        .unwrap();
    request.wait();
    assert!(request.is_complete());
    assert!(request.latency_ns().unwrap() > 0);
    assert_eq!(
        serve.runtime().store().read(output).lock().as_f64(),
        &[2.0, 4.0, 6.0]
    );
    assert_eq!(session.open_requests(), 0);
    let freed = session.close().unwrap();
    assert_eq!(freed, 6 * std::mem::size_of::<f64>());
    let report = serve.drain();
    assert_eq!(report.latency.get(LatencyMetric::Request).count, 1);
    assert!(report.latency.get(LatencyMetric::Request).p50() > 0);
}

#[test]
fn full_request_window_is_rejected_with_a_retry_hint() {
    let gate = Arc::new(Event::new());
    let gate_in_kernel = Arc::clone(&gate);
    let serve = ServeEngine::new(
        ServeConfig::default()
            .workers(1)
            .max_inflight_requests(2)
            .retry_after_hint_ns(12_345),
    );
    let blocker = serve.register_task_type(
        TaskTypeBuilder::new("blocker", move |ctx| {
            gate_in_kernel.wait();
            ctx.out(0, &[1.0f64]);
        })
        .out::<f64>()
        .build(),
    );
    let mut session = serve.session().unwrap();
    let regions: Vec<Region<f64>> = (0..3)
        .map(|i| session.register_zeros(format!("r{i}"), 1).unwrap())
        .collect();
    let first = session
        .request()
        .task(blocker)
        .writes(&regions[0])
        .submit()
        .unwrap();
    let _second = session
        .request()
        .task(blocker)
        .writes(&regions[1])
        .submit()
        .unwrap();
    assert_eq!(serve.inflight_requests(), 2);
    // The window is full: the third request is rejected, not queued.
    match session.request().task(blocker).writes(&regions[2]).submit() {
        Err(ServeError::Overloaded {
            inflight,
            capacity,
            retry_after_ns,
        }) => {
            assert_eq!((inflight, capacity), (2, 2));
            assert_eq!(retry_after_ns, 12_345);
        }
        other => panic!("expected Overloaded, got {:?}", other.map(|_| ())),
    }
    // Draining the window restores admission. (The single worker executes
    // the blocked kernels one at a time; each wait consumes one signal, so
    // signal once per blocked task.)
    gate.signal();
    first.wait();
    gate.signal();
    let third = session
        .request()
        .task(blocker)
        .writes(&regions[2])
        .submit()
        .unwrap();
    gate.signal();
    third.wait();
    session.close().unwrap();
    serve.drain();
}

#[test]
fn runtime_live_task_window_backpressures_large_requests() {
    let gate = Arc::new(Event::new());
    let gate_in_kernel = Arc::clone(&gate);
    let serve = ServeEngine::new(
        ServeConfig::default()
            .workers(1)
            .max_inflight_requests(64)
            .max_live_tasks(2),
    );
    let blocker = serve.register_task_type(
        TaskTypeBuilder::new("blocker", move |ctx| {
            gate_in_kernel.wait();
            ctx.out(0, &[1.0f64]);
        })
        .out::<f64>()
        .build(),
    );
    let mut session = serve.session().unwrap();
    let regions: Vec<Region<f64>> = (0..4)
        .map(|i| session.register_zeros(format!("r{i}"), 1).unwrap())
        .collect();
    let first = session
        .request()
        .task(blocker)
        .writes(&regions[0])
        .submit()
        .unwrap();
    // A two-task request cannot fit the one remaining live-task slot: the
    // runtime's window rejects it, and the serve layer surfaces Overloaded
    // after rolling its own admission slot back.
    let err = session
        .request()
        .task(blocker)
        .writes(&regions[1])
        .task(blocker)
        .writes(&regions[2])
        .independent()
        .submit();
    assert!(matches!(
        err,
        Err(ServeError::Overloaded { capacity: 2, .. })
    ));
    assert_eq!(serve.inflight_requests(), 1, "rolled back the request slot");
    gate.signal();
    first.wait();
    session.close().unwrap();
    serve.drain();
}

#[test]
fn draining_rejects_new_work_but_finishes_in_flight_requests() {
    let gate = Arc::new(Event::new());
    let gate_in_kernel = Arc::clone(&gate);
    let serve = ServeEngine::new(ServeConfig::default().workers(1));
    let blocker = serve.register_task_type(
        TaskTypeBuilder::new("blocker", move |ctx| {
            gate_in_kernel.wait();
            ctx.out(0, &[7.0f64]);
        })
        .out::<f64>()
        .build(),
    );
    let mut session = serve.session().unwrap();
    let r = session.register_zeros::<f64>("r", 1).unwrap();
    let request = session.request().task(blocker).writes(&r).submit().unwrap();
    // Drain from another thread while a request is still in flight.
    let report = std::thread::scope(|scope| {
        let handle = scope.spawn(|| serve.drain());
        // The drain cannot finish while the kernel is gated.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!handle.is_finished(), "drain must wait for in-flight work");
        gate.signal();
        handle.join().unwrap()
    });
    request.wait();
    assert_eq!(report.runtime.submitted, 1);
    assert_eq!(report.latency.get(LatencyMetric::Request).count, 1);
}

#[test]
fn drained_engine_rejects_sessions() {
    let serve = ServeEngine::new(ServeConfig::default().workers(1));
    // Flip admission off the way drain does, without consuming the engine.
    serve.shared.accepting.store(false, Ordering::SeqCst);
    assert!(matches!(serve.session(), Err(ServeError::Draining)));
    serve.shared.accepting.store(true, Ordering::SeqCst);
    let session = serve.session().unwrap();
    serve.shared.accepting.store(false, Ordering::SeqCst);
    let scale = scale_type(&serve);
    let err = session.request().task(scale).submit();
    assert!(matches!(err, Err(ServeError::Draining)));
    session.close().unwrap();
}

#[test]
fn closed_sessions_leave_regions_retired_and_rejected_at_submission() {
    let serve = ServeEngine::new(ServeConfig::default().workers(1));
    let scale = scale_type(&serve);
    let mut session = serve.session().unwrap();
    let input = session.register_region("in", vec![1.0f64]).unwrap();
    let output = session.register_zeros::<f64>("out", 1).unwrap();
    session
        .request()
        .task(scale)
        .reads(&input)
        .writes(&output)
        .submit()
        .unwrap()
        .wait();
    session.close().unwrap();
    assert_eq!(
        serve.runtime().store().region_status(input),
        RegionStatus::Retired
    );
    // A stale handle in a new session is rejected with the dedicated error.
    let stale = serve.session().unwrap();
    let err = stale
        .request()
        .task(scale)
        .reads(&input)
        .writes(&output)
        .submit();
    match err {
        Err(ServeError::Rejected(SubmitError::RegionRetired { region, .. })) => {
            assert_eq!(region, input.id());
        }
        other => panic!("expected RegionRetired, got {:?}", other.map(|_| ())),
    }
    stale.close().unwrap();
    serve.drain();
}

/// The bounded-multi-tenant-data acceptance: region bytes, the store's
/// by-name map and the dependence index all track the *live* session set
/// across heavy session churn.
#[test]
fn hundred_session_churn_keeps_region_bytes_and_index_bounded() {
    let serve = ServeEngine::new(ServeConfig::default().workers(2));
    let scale = scale_type(&serve);
    let elems = 256usize;
    let payload = elems * std::mem::size_of::<f64>();
    let mut peak_bytes = 0usize;
    let mut peak_index = 0u64;
    for round in 0..120 {
        let mut session = serve.session().unwrap();
        let input = session.register_region("in", vec![1.0f64; elems]).unwrap();
        let output = session.register_zeros::<f64>("out", elems).unwrap();
        let request = session
            .request()
            .task(scale)
            .reads(&input)
            .writes(&output)
            .submit()
            .unwrap();
        request.wait();
        let freed = session.close().unwrap();
        assert_eq!(freed, 2 * payload, "round {round} freed the wrong bytes");
        peak_bytes = peak_bytes.max(serve.runtime().store().total_bytes());
        peak_index = peak_index.max(serve.observe().runtime.live_index_regions);
    }
    // One live session holds 2 regions; the gauges must be bounded by a
    // small constant, not grow with the 120 sessions that ever existed.
    assert!(
        peak_bytes <= 2 * 2 * payload,
        "store bytes grew with session count: peak {peak_bytes}"
    );
    assert!(
        peak_index <= 4,
        "dependence index grew with session count: peak {peak_index}"
    );
    assert_eq!(serve.runtime().store().total_bytes(), 0);
    let report = serve.drain();
    assert_eq!(report.latency.get(LatencyMetric::Request).count, 120);
}

/// Concurrent tenants on disjoint regions submit in parallel; the sharded
/// submission locks let all of them make progress and every request
/// completes with the right data.
#[test]
fn concurrent_sessions_submit_and_complete_in_parallel() {
    let serve = ServeEngine::new(
        ServeConfig::default()
            .workers(4)
            .max_inflight_requests(256)
            .max_live_tasks(100_000),
    );
    let scale = scale_type(&serve);
    let tenants = 4;
    let requests_per_tenant = 50;
    std::thread::scope(|scope| {
        for tenant in 0..tenants {
            let serve = &serve;
            scope.spawn(move || {
                let mut session = serve.session().unwrap();
                let input = session
                    .register_region("in", vec![tenant as f64; 8])
                    .unwrap();
                let output = session.register_zeros::<f64>("out", 8).unwrap();
                for _ in 0..requests_per_tenant {
                    let request = loop {
                        match session
                            .request()
                            .task(scale)
                            .reads(&input)
                            .writes(&output)
                            .submit()
                        {
                            Ok(request) => break request,
                            Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
                            Err(other) => panic!("unexpected rejection: {other}"),
                        }
                    };
                    request.wait();
                }
                assert_eq!(
                    serve.runtime().store().read(output).lock().as_f64(),
                    &[tenant as f64 * 2.0; 8]
                );
                session.close().unwrap();
            });
        }
    });
    let report = serve.drain();
    assert_eq!(
        report.latency.get(LatencyMetric::Request).count,
        (tenants * requests_per_tenant) as u64
    );
    assert_eq!(
        report.runtime.submitted,
        (tenants * requests_per_tenant) as u64
    );
}

/// Memoization composes with serving: identical requests from one tenant
/// hit the THT and skip their kernels.
#[test]
fn repeated_requests_are_served_from_the_memo_store() {
    use atm_core::AtmConfig;
    use atm_runtime::MemoSpec;
    let serve = ServeEngine::new(
        ServeConfig::default()
            .workers(1)
            .atm(AtmConfig::static_atm()),
    );
    let scale = scale_type(&serve);
    let mut session = serve.session().unwrap();
    let input = session.register_region("in", vec![3.0f64; 4]).unwrap();
    let output = session.register_zeros::<f64>("out", 4).unwrap();
    for _ in 0..10 {
        session
            .request()
            .task(scale)
            .reads(&input)
            .writes(&output)
            .memo(MemoSpec::exact())
            .submit()
            .unwrap()
            .wait();
    }
    let report = serve.observe();
    assert_eq!(report.runtime.submitted, 10);
    assert!(
        report.runtime.bypassed >= 8,
        "identical requests must be memoized (bypassed {})",
        report.runtime.bypassed
    );
    assert_eq!(
        serve.runtime().store().read(output).lock().as_f64(),
        &[6.0; 4]
    );
    session.close().unwrap();
    serve.drain();
}

#[test]
fn empty_requests_are_rejected_without_consuming_a_slot() {
    let serve = ServeEngine::new(ServeConfig::default().workers(1));
    let session = serve.session().unwrap();
    assert!(matches!(
        session.request().submit(),
        Err(ServeError::EmptyRequest)
    ));
    assert_eq!(serve.inflight_requests(), 0);
    session.close().unwrap();
    serve.drain();
}
