//! Bob Jenkins hash functions.
//!
//! The ATM paper cites Bob Jenkins' hash ("A hash function for hash table
//! lookup") as its key generator and notes that it "is known to give a
//! collision once in 2³²", which exceeds the task counts of all evaluated
//! benchmarks. We implement the `lookup3` variant (`hashlittle2`), which
//! produces two 32-bit words that we combine into the 64-bit key stored in
//! the Task History Table (the paper stores 8 bytes per key), plus the
//! classic one-at-a-time hash used in tests and as a cheap secondary check.

/// Rotate-left helper used by the lookup3 mixing functions.
#[inline(always)]
fn rot(x: u32, k: u32) -> u32 {
    x.rotate_left(k)
}

/// The `mix` step of lookup3: reversibly mixes three 32-bit values.
#[inline(always)]
fn mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 4);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 6);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 8);
    *b = b.wrapping_add(*a);
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 16);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 19);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 4);
    *b = b.wrapping_add(*a);
}

/// The `final` step of lookup3: irreversibly mixes three 32-bit values.
#[inline(always)]
fn final_mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 14));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 11));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 25));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 16));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 4));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 14));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 24));
}

/// Reads a little-endian `u32` from up to four bytes of `data` starting at
/// `offset`, zero-padding past the end. lookup3 reads keys in 12-byte blocks;
/// this helper handles the tail without unaligned or out-of-bounds reads.
#[inline(always)]
fn read_u32_padded(data: &[u8], offset: usize) -> u32 {
    let mut word = 0u32;
    for i in 0..4 {
        if let Some(&byte) = data.get(offset + i) {
            word |= u32::from(byte) << (8 * i);
        }
    }
    word
}

/// Jenkins `hashlittle2`: hashes `data` and returns two 32-bit results.
///
/// `pc` and `pb` are the two seed values ("primary" and "secondary" initval
/// in Jenkins' reference code). Both returned words are good hash values;
/// together they form a 64-bit key with the collision behaviour the paper
/// relies on.
pub fn hashlittle2(data: &[u8], pc: u32, pb: u32) -> (u32, u32) {
    let mut a: u32 = 0xdead_beef_u32
        .wrapping_add(data.len() as u32)
        .wrapping_add(pc);
    let mut b: u32 = a;
    let mut c: u32 = a.wrapping_add(pb);

    let mut length = data.len();
    let mut offset = 0usize;

    // Process all but the last (possibly partial) 12-byte block.
    while length > 12 {
        a = a.wrapping_add(read_u32_padded(data, offset));
        b = b.wrapping_add(read_u32_padded(data, offset + 4));
        c = c.wrapping_add(read_u32_padded(data, offset + 8));
        mix(&mut a, &mut b, &mut c);
        offset += 12;
        length -= 12;
    }

    // Final block: lookup3 skips the final mix entirely for empty input.
    if length > 0 {
        a = a.wrapping_add(read_u32_padded_bounded(data, offset, length, 0));
        b = b.wrapping_add(read_u32_padded_bounded(data, offset, length, 4));
        c = c.wrapping_add(read_u32_padded_bounded(data, offset, length, 8));
        final_mix(&mut a, &mut b, &mut c);
    }

    (c, b)
}

/// Reads a little-endian `u32` from the final block, where only
/// `remaining - word_offset` bytes are valid.
#[inline(always)]
fn read_u32_padded_bounded(
    data: &[u8],
    offset: usize,
    remaining: usize,
    word_offset: usize,
) -> u32 {
    let mut word = 0u32;
    for i in 0..4 {
        let idx = word_offset + i;
        if idx < remaining {
            word |= u32::from(data[offset + idx]) << (8 * i);
        }
    }
    word
}

/// 64-bit Jenkins key: `hashlittle2` with both words combined.
///
/// This is the key stored in the Task History Table and the In-flight Key
/// Table (8 bytes per entry, as in the paper).
pub fn jenkins_hash64(data: &[u8], seed: u64) -> u64 {
    let (c, b) = hashlittle2(data, seed as u32, (seed >> 32) as u32);
    (u64::from(c) << 32) | u64::from(b)
}

/// Incremental 64-bit Jenkins hashing over scattered bytes, in constant
/// space.
///
/// The ATM key generator feeds sampled input bytes through this stream as it
/// walks the cached shuffle, instead of materialising them into a scratch
/// buffer first. lookup3 folds the *total* input length into the initial
/// state, so the stream must be constructed with the final byte count
/// upfront — key generation always knows it (it is the sampled-byte count
/// the precision dictates). The stream then consumes bytes through a single
/// 12-byte block: full blocks are `mix`ed immediately, except the last one,
/// which lookup3 routes through the `final` path. The result is bit-identical
/// to [`jenkins_hash64`] over the concatenation of everything pushed.
#[derive(Debug, Clone)]
pub struct JenkinsStream {
    a: u32,
    b: u32,
    c: u32,
    /// The current (possibly final) 12-byte lookup3 block.
    block: [u8; 12],
    /// Valid bytes in `block`.
    filled: usize,
    /// Total bytes pushed so far; never exceeds `total`.
    pushed: usize,
    /// The exact number of bytes that will be pushed, declared upfront.
    total: usize,
}

impl JenkinsStream {
    /// Creates a stream that will hash exactly `total_len` bytes with `seed`.
    ///
    /// # Panics
    /// [`finish`](Self::finish) panics if fewer than `total_len` bytes were
    /// pushed; [`push`](Self::push) panics on the byte that would exceed it.
    pub fn new(seed: u64, total_len: usize) -> Self {
        let pc = seed as u32;
        let pb = (seed >> 32) as u32;
        let a = 0xdead_beef_u32
            .wrapping_add(total_len as u32)
            .wrapping_add(pc);
        JenkinsStream {
            a,
            b: a,
            c: a.wrapping_add(pb),
            block: [0; 12],
            filled: 0,
            pushed: 0,
            total: total_len,
        }
    }

    /// Appends one byte to the stream.
    #[inline]
    pub fn push(&mut self, byte: u8) {
        debug_assert!(
            self.pushed < self.total,
            "pushed more bytes than the declared total {}",
            self.total
        );
        self.block[self.filled] = byte;
        self.filled += 1;
        self.pushed += 1;
        // A full block is mixed immediately — unless it is the last block,
        // which lookup3 sends through the `final` path instead (`while
        // length > 12`, not `>=`, in the reference loop).
        if self.filled == 12 && self.pushed < self.total {
            self.a = self.a.wrapping_add(read_u32_padded(&self.block, 0));
            self.b = self.b.wrapping_add(read_u32_padded(&self.block, 4));
            self.c = self.c.wrapping_add(read_u32_padded(&self.block, 8));
            mix(&mut self.a, &mut self.b, &mut self.c);
            self.filled = 0;
        }
    }

    /// Appends a slice of bytes to the stream.
    #[inline]
    pub fn push_slice(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.push(byte);
        }
    }

    /// Number of bytes accumulated so far.
    pub fn len(&self) -> usize {
        self.pushed
    }

    /// True when no bytes have been pushed.
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Finalises the stream into a 64-bit key.
    ///
    /// # Panics
    /// Panics if the stream received fewer bytes than the total declared at
    /// construction — the length is already folded into the hash state, so
    /// finishing early would silently produce a key no oneshot hash of any
    /// byte string matches.
    pub fn finish(&self) -> u64 {
        assert_eq!(
            self.pushed, self.total,
            "stream finished after {} of {} declared bytes",
            self.pushed, self.total
        );
        let (mut a, mut b, mut c) = (self.a, self.b, self.c);
        // Final block: lookup3 skips the final mix entirely for empty input.
        if self.filled > 0 {
            a = a.wrapping_add(read_u32_padded_bounded(&self.block, 0, self.filled, 0));
            b = b.wrapping_add(read_u32_padded_bounded(&self.block, 0, self.filled, 4));
            c = c.wrapping_add(read_u32_padded_bounded(&self.block, 0, self.filled, 8));
            final_mix(&mut a, &mut b, &mut c);
        }
        (u64::from(c) << 32) | u64::from(b)
    }
}

/// Bob Jenkins' one-at-a-time hash (32-bit).
///
/// Cheaper but weaker than lookup3; used in unit tests and as a diagnostic
/// secondary hash when auditing for Task History Table collisions.
pub fn one_at_a_time(data: &[u8]) -> u32 {
    let mut hash: u32 = 0;
    for &byte in data {
        hash = hash.wrapping_add(u32::from(byte));
        hash = hash.wrapping_add(hash << 10);
        hash ^= hash >> 6;
    }
    hash = hash.wrapping_add(hash << 3);
    hash ^= hash >> 11;
    hash = hash.wrapping_add(hash << 15);
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_matches_lookup3_reference() {
        // Reference values from Bob Jenkins' lookup3.c driver: hashing ""
        // with both initvals zero yields c = 0xdeadbeef, b = 0xdeadbeef.
        let (c, b) = hashlittle2(b"", 0, 0);
        assert_eq!(c, 0xdead_beef);
        assert_eq!(b, 0xdead_beef);
    }

    #[test]
    fn empty_input_with_seeds_matches_lookup3_reference() {
        // From lookup3.c: hashlittle2("", pc=0, pb=0xdeadbeef) -> c=0xbd5b7dde
        // and hashlittle2("", pc=0xdeadbeef, pb=0xdeadbeef) -> c=0x9c093ccd.
        let (c1, _) = hashlittle2(b"", 0, 0xdead_beef);
        assert_eq!(c1, 0xbd5b_7dde);
        let (c2, _) = hashlittle2(b"", 0xdead_beef, 0xdead_beef);
        assert_eq!(c2, 0x9c09_3ccd);
    }

    #[test]
    fn four_score_matches_lookup3_reference() {
        // From lookup3.c driver: "Four score and seven years ago" with both
        // initvals zero gives c = 0x17770551.
        let (c, _) = hashlittle2(b"Four score and seven years ago", 0, 0);
        assert_eq!(c, 0x1777_0551);
    }

    #[test]
    fn four_score_with_seed_matches_lookup3_reference() {
        // From lookup3.c driver: initval 1 gives 0xcd628161. hashlittle with
        // initval maps to hashlittle2 with pc = initval, pb = 0.
        let (c, _) = hashlittle2(b"Four score and seven years ago", 1, 0);
        assert_eq!(c, 0xcd62_8161);
    }

    #[test]
    fn hash_is_deterministic_and_seed_sensitive() {
        let data = b"approximate task memoization";
        assert_eq!(jenkins_hash64(data, 7), jenkins_hash64(data, 7));
        assert_ne!(jenkins_hash64(data, 7), jenkins_hash64(data, 8));
    }

    #[test]
    fn single_byte_flip_changes_key() {
        let mut data = vec![0u8; 1024];
        let base = jenkins_hash64(&data, 0);
        data[512] ^= 0x01;
        assert_ne!(base, jenkins_hash64(&data, 0));
    }

    #[test]
    fn stream_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut stream = JenkinsStream::new(42, data.len());
        for chunk in data.chunks(7) {
            stream.push_slice(chunk);
        }
        assert_eq!(stream.finish(), jenkins_hash64(&data, 42));
        assert_eq!(stream.len(), data.len());
        assert!(!stream.is_empty());
    }

    #[test]
    fn stream_matches_oneshot_at_every_block_boundary_and_chunking() {
        // Bit-identity across the 12-byte block machinery: every length
        // around the mix/final boundaries, pushed through every chunk size,
        // must reproduce the oneshot hash exactly.
        let data: Vec<u8> = (0..48u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        for len in 0..=data.len() {
            let oneshot = jenkins_hash64(&data[..len], 0xA5A5_5A5A_DEAD_BEEF);
            for chunk in 1..=13 {
                let mut stream = JenkinsStream::new(0xA5A5_5A5A_DEAD_BEEF, len);
                for piece in data[..len].chunks(chunk) {
                    stream.push_slice(piece);
                }
                assert_eq!(
                    stream.finish(),
                    oneshot,
                    "len {len} chunk {chunk} diverged from oneshot"
                );
            }
            // Byte-at-a-time, the path the sampled key generator takes.
            let mut stream = JenkinsStream::new(0xA5A5_5A5A_DEAD_BEEF, len);
            for &byte in &data[..len] {
                stream.push(byte);
            }
            assert_eq!(stream.finish(), oneshot, "len {len} byte-wise diverged");
        }
    }

    #[test]
    fn empty_stream_matches_empty_oneshot() {
        let stream = JenkinsStream::new(7, 0);
        assert!(stream.is_empty());
        assert_eq!(stream.finish(), jenkins_hash64(&[], 7));
    }

    #[test]
    #[should_panic(expected = "declared bytes")]
    fn finishing_short_of_the_declared_total_panics() {
        let mut stream = JenkinsStream::new(0, 3);
        stream.push(1);
        let _ = stream.finish();
    }

    #[test]
    fn one_at_a_time_known_behaviour() {
        assert_eq!(one_at_a_time(b""), 0);
        assert_ne!(one_at_a_time(b"a"), one_at_a_time(b"b"));
        assert_eq!(one_at_a_time(b"hello"), one_at_a_time(b"hello"));
    }

    #[test]
    fn block_boundary_lengths_are_all_distinct() {
        // Exercise the 12-byte block boundary handling: hash prefixes of
        // lengths 0..=40 of the same buffer and check they are all distinct.
        let data: Vec<u8> = (1..=40u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(
                seen.insert(jenkins_hash64(&data[..len], 0)),
                "collision at prefix length {len}"
            );
        }
    }
}
