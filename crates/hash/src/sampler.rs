//! Per-task-type input sampling and hash-key generation.
//!
//! An [`InputSampler`] is created the first time a task type executes and is
//! cached by the runtime (exactly as the paper describes: "we shuffle the
//! vector of indexes the first time a task type is executed and store it in
//! the runtime system"). From then on, every task instance of that type can
//! compute its key by selecting the first `N·p` shuffled byte positions of
//! its concatenated inputs and feeding them to the Jenkins hash.

use crate::jenkins::jenkins_hash64;
use crate::prng::Xoshiro256StarStar;
use crate::shuffle::{significance_ordered_indices, InputSpec};
use crate::Percentage;

/// Byte-level layout of a task type's data inputs.
///
/// Holds one [`InputSpec`] per data input, in the order the inputs are
/// declared. Task instances must present their input segments in this same
/// order and with these exact sizes (the paper's benchmarks have fixed task
/// input shapes per task type; the sampler checks this at run time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteLayout {
    specs: Vec<InputSpec>,
    /// Exclusive prefix sums of segment byte sizes, ending with the total.
    offsets: Vec<usize>,
}

impl ByteLayout {
    /// Builds a layout from per-input element counts and widths.
    pub fn new(specs: Vec<InputSpec>) -> Self {
        let mut offsets = Vec::with_capacity(specs.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for s in &specs {
            acc += s.bytes();
            offsets.push(acc);
        }
        ByteLayout { specs, offsets }
    }

    /// Convenience constructor for inputs described as `(elements, elem_width)` pairs.
    pub fn from_pairs(pairs: &[(usize, usize)]) -> Self {
        Self::new(
            pairs
                .iter()
                .map(|&(elements, elem_width)| InputSpec {
                    elements,
                    elem_width,
                })
                .collect(),
        )
    }

    /// Total number of input bytes described by the layout.
    pub fn total_bytes(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Number of data inputs.
    pub fn inputs(&self) -> usize {
        self.specs.len()
    }

    /// The per-input specifications.
    pub fn specs(&self) -> &[InputSpec] {
        &self.specs
    }

    /// Maps a flat byte index into `(segment, offset-within-segment)`.
    #[inline]
    pub fn locate(&self, flat: usize) -> (usize, usize) {
        debug_assert!(flat < self.total_bytes());
        // Binary search over the prefix sums; the number of inputs per task
        // is tiny (1-4 in all benchmarks) so partition_point is plenty fast.
        let seg = self.offsets.partition_point(|&o| o <= flat) - 1;
        (seg, flat - self.offsets[seg])
    }
}

/// The result of sampling and hashing one task instance's inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledKey {
    /// The 64-bit Jenkins key over the selected bytes.
    pub key: u64,
    /// How many input bytes were selected.
    pub selected_bytes: usize,
    /// The percentage used for the selection.
    pub p: Percentage,
}

/// Per-task-type sampler: cached shuffled index vector + key computation.
#[derive(Debug, Clone)]
pub struct InputSampler {
    layout: ByteLayout,
    /// Shuffled flat byte indexes (plain or significance-ordered).
    indices: Vec<u32>,
    type_aware: bool,
    seed: u64,
}

impl InputSampler {
    /// Builds the sampler for a task type.
    ///
    /// `type_aware` selects the §III-C significance-ordered shuffle; `seed`
    /// makes the permutation reproducible (one fixed seed per task type).
    pub fn new(layout: ByteLayout, type_aware: bool, seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::new(seed ^ 0xA7A7_5E1E_C7ED_1D0F);
        let indices = significance_ordered_indices(layout.specs(), type_aware, &mut rng);
        InputSampler {
            layout,
            indices,
            type_aware,
            seed,
        }
    }

    /// Total bytes the sampler expects per task instance.
    pub fn total_bytes(&self) -> usize {
        self.layout.total_bytes()
    }

    /// Whether the significance-ordered (type-aware) shuffle is in use.
    pub fn is_type_aware(&self) -> bool {
        self.type_aware
    }

    /// The layout this sampler was built for.
    pub fn layout(&self) -> &ByteLayout {
        &self.layout
    }

    /// Approximate memory footprint of the cached index vector, in bytes.
    ///
    /// Accounted as ATM runtime-system overhead in Table III.
    pub fn memory_bytes(&self) -> usize {
        self.indices.len() * std::mem::size_of::<u32>()
    }

    /// Computes the hash key of one task instance.
    ///
    /// `segments` are the task's data inputs as byte slices, in declaration
    /// order; their sizes must match the layout exactly.
    ///
    /// # Panics
    /// Panics if the number or sizes of the segments do not match the layout.
    pub fn key(&self, segments: &[&[u8]], p: Percentage) -> SampledKey {
        self.check_segments(segments);
        let total = self.total_bytes();
        if total == 0 {
            return SampledKey {
                key: jenkins_hash64(&[], self.seed),
                selected_bytes: 0,
                p,
            };
        }
        let selected = p.bytes_of(total);

        // Static ATM (p = 100 %): every byte is selected, so the selection
        // set is the full input and we can hash the segments contiguously —
        // this is the fast path the paper relies on for exact memoization.
        if selected == total {
            let mut buf = Vec::with_capacity(total);
            for seg in segments {
                buf.extend_from_slice(seg);
            }
            return SampledKey {
                key: jenkins_hash64(&buf, self.seed),
                selected_bytes: total,
                p,
            };
        }

        let mut buf = Vec::with_capacity(selected);
        for &flat in &self.indices[..selected] {
            let (seg, off) = self.layout.locate(flat as usize);
            buf.push(segments[seg][off]);
        }
        SampledKey {
            key: jenkins_hash64(&buf, self.seed),
            selected_bytes: selected,
            p,
        }
    }

    /// The flat byte indexes that would be selected for a given `p`
    /// (exposed for tests and for the evaluation harness).
    pub fn selected_indices(&self, p: Percentage) -> &[u32] {
        let selected = p.bytes_of(self.total_bytes());
        &self.indices[..selected]
    }

    fn check_segments(&self, segments: &[&[u8]]) {
        assert_eq!(
            segments.len(),
            self.layout.inputs(),
            "task instance presented {} input segments, layout declares {}",
            segments.len(),
            self.layout.inputs()
        );
        for (i, (seg, spec)) in segments.iter().zip(self.layout.specs()).enumerate() {
            assert_eq!(
                seg.len(),
                spec.bytes(),
                "input segment {i} has {} bytes, layout declares {}",
                seg.len(),
                spec.bytes()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32_bytes(values: &[f32]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn identical_inputs_produce_identical_keys() {
        let layout = ByteLayout::from_pairs(&[(64, 4)]);
        let sampler = InputSampler::new(layout, false, 1);
        let data = f32_bytes(&vec![1.5f32; 64]);
        let k1 = sampler.key(&[&data], Percentage::FULL);
        let k2 = sampler.key(&[&data], Percentage::FULL);
        assert_eq!(k1.key, k2.key);
        assert_eq!(k1.selected_bytes, 256);
    }

    #[test]
    fn different_inputs_produce_different_keys_at_full_p() {
        let layout = ByteLayout::from_pairs(&[(64, 4)]);
        let sampler = InputSampler::new(layout, false, 1);
        let a = f32_bytes(&vec![1.5f32; 64]);
        let mut b_vals = vec![1.5f32; 64];
        b_vals[10] = 1.5000001;
        let b = f32_bytes(&b_vals);
        assert_ne!(
            sampler.key(&[&a], Percentage::FULL).key,
            sampler.key(&[&b], Percentage::FULL).key
        );
    }

    #[test]
    fn small_p_ignores_low_order_mantissa_changes_with_type_awareness() {
        // With the type-aware shuffle and a small p, only the most
        // significant bytes are hashed, so a tiny perturbation in the low
        // mantissa bytes must not change the key — this is exactly the
        // approximation mechanism of Dynamic ATM.
        let layout = ByteLayout::from_pairs(&[(256, 4)]);
        let sampler = InputSampler::new(layout, true, 7);
        let a: Vec<f32> = (0..256).map(|i| 1.0 + i as f32).collect();
        let mut b = a.clone();
        for v in &mut b {
            // Perturb only the lowest mantissa bits.
            *v = f32::from_bits(v.to_bits() ^ 0x1);
        }
        let pa = Percentage::from_fraction(0.25);
        let ka = sampler.key(&[&f32_bytes(&a)], pa);
        let kb = sampler.key(&[&f32_bytes(&b)], pa);
        assert_eq!(
            ka.key, kb.key,
            "low-mantissa perturbation should be invisible at p=25% with type-aware selection"
        );

        // But a sign flip must always be visible, even at the smallest p,
        // because MSBs are selected first.
        let mut c = a.clone();
        for v in &mut c {
            *v = -*v;
        }
        let kc = sampler.key(&[&f32_bytes(&c)], Percentage::MIN);
        let ka_min = sampler.key(&[&f32_bytes(&a)], Percentage::MIN);
        assert_ne!(
            ka_min.key, kc.key,
            "sign flips must change the key even at p=2^-15"
        );
    }

    #[test]
    fn selected_byte_count_follows_percentage() {
        let layout = ByteLayout::from_pairs(&[(1000, 4)]);
        let sampler = InputSampler::new(layout, false, 3);
        let data = vec![0u8; 4000];
        assert_eq!(
            sampler
                .key(&[&data], Percentage::from_fraction(0.5))
                .selected_bytes,
            2000
        );
        assert_eq!(sampler.key(&[&data], Percentage::MIN).selected_bytes, 1);
        assert_eq!(sampler.key(&[&data], Percentage::FULL).selected_bytes, 4000);
    }

    #[test]
    fn multiple_segments_are_concatenated_in_order() {
        // The same bytes split differently across segments must hash
        // identically at p = 100 % (the flat concatenation is what matters).
        let layout_a = ByteLayout::from_pairs(&[(8, 1), (8, 1)]);
        let layout_b = ByteLayout::from_pairs(&[(16, 1)]);
        let sampler_a = InputSampler::new(layout_a, false, 5);
        let sampler_b = InputSampler::new(layout_b, false, 5);
        let bytes: Vec<u8> = (0..16).collect();
        let ka = sampler_a.key(&[&bytes[..8], &bytes[8..]], Percentage::FULL);
        let kb = sampler_b.key(&[&bytes], Percentage::FULL);
        assert_eq!(ka.key, kb.key);
    }

    #[test]
    #[should_panic(expected = "input segments")]
    fn wrong_segment_count_panics() {
        let layout = ByteLayout::from_pairs(&[(4, 4), (4, 4)]);
        let sampler = InputSampler::new(layout, false, 1);
        let data = vec![0u8; 16];
        let _ = sampler.key(&[&data], Percentage::FULL);
    }

    #[test]
    #[should_panic(expected = "bytes")]
    fn wrong_segment_size_panics() {
        let layout = ByteLayout::from_pairs(&[(4, 4)]);
        let sampler = InputSampler::new(layout, false, 1);
        let data = vec![0u8; 15];
        let _ = sampler.key(&[&data], Percentage::FULL);
    }

    #[test]
    fn empty_layout_is_supported() {
        let layout = ByteLayout::from_pairs(&[]);
        let sampler = InputSampler::new(layout, true, 1);
        let k = sampler.key(&[], Percentage::FULL);
        assert_eq!(k.selected_bytes, 0);
    }

    #[test]
    fn selected_indices_are_prefix_of_permutation() {
        let layout = ByteLayout::from_pairs(&[(32, 8)]);
        let sampler = InputSampler::new(layout, true, 11);
        let half = sampler.selected_indices(Percentage::from_fraction(0.5));
        assert_eq!(half.len(), 128);
        let full = sampler.selected_indices(Percentage::FULL);
        assert_eq!(full.len(), 256);
        assert_eq!(&full[..128], half);
    }

    #[test]
    fn memory_accounting_matches_index_vector() {
        let layout = ByteLayout::from_pairs(&[(100, 4)]);
        let sampler = InputSampler::new(layout, false, 2);
        assert_eq!(sampler.memory_bytes(), 400 * 4);
    }
}
