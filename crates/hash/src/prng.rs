//! Deterministic pseudo-random number generation.
//!
//! Everything random in this reproduction must be reproducible from a seed:
//! the per-task-type index shuffle (§III-B of the paper is shuffled *once*
//! and cached), the workload generators (the redundancy in the inputs is a
//! property of the workload, so it has to be stable across runs), and the
//! in-task Monte Carlo of Swaptions (task kernels must be deterministic
//! functions of their inputs for memoization to be sound, §III-E).
//!
//! We therefore ship a small, well-known generator instead of pulling the
//! `rand` crate: SplitMix64 for seeding and Xoshiro256** for the stream.

/// SplitMix64: a tiny, fast generator mainly used to expand a single `u64`
/// seed into the larger state of [`Xoshiro256StarStar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256**: the general-purpose generator used across the workspace.
///
/// Passes BigCrush; period 2²⁵⁶ − 1. Not cryptographic — it does not need to
/// be: it only drives workload generation, index shuffling and Monte Carlo
/// sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding `seed` with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the only invalid state; SplitMix64 cannot
        // produce four consecutive zeros from any seed, but guard anyway.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit value (upper bits of [`Self::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method
    /// (slightly biased for astronomically large bounds, which is fine for
    /// workload generation and shuffling of < 2³² elements).
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() requires a positive bound");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// Standard normal sample via the Box–Muller transform.
    ///
    /// Used by the HJM Monte Carlo kernel in Swaptions; one value per call
    /// (the second Box–Muller value is discarded to keep the generator state
    /// a pure function of the number of calls).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for SplitMix64 with seed 1234567 (from the
        // published reference implementation by Sebastiano Vigna).
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
        assert_eq!(g.next_u64(), 9817491932198370423);
        assert_eq!(g.next_u64(), 4593380528125082431);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256StarStar::new(99);
        let mut b = Xoshiro256StarStar::new(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256StarStar::new(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut g = Xoshiro256StarStar::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = g.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn below_respects_bound_and_covers_values() {
        let mut g = Xoshiro256StarStar::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = g.below(8);
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear in 1000 draws"
        );
    }

    #[test]
    fn range_f64_stays_in_range() {
        let mut g = Xoshiro256StarStar::new(11);
        for _ in 0..1000 {
            let v = g.range_f64(-3.5, 2.25);
            assert!((-3.5..2.25).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut g = Xoshiro256StarStar::new(2024);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = g.next_gaussian();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "gaussian mean too far from 0: {mean}");
        assert!(
            (var - 1.0).abs() < 0.05,
            "gaussian variance too far from 1: {var}"
        );
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_bound_panics() {
        let mut g = Xoshiro256StarStar::new(1);
        let _ = g.below(0);
    }
}
