//! Hashing and input-sampling substrate for Approximate Task Memoization (ATM).
//!
//! The ATM paper (Brumar et al., IPDPS 2017, §III-B/§III-C) builds its hash
//! keys from the concatenated bytes of a task's data inputs:
//!
//! 1. the input bytes are viewed as one long vector of `N` bytes,
//! 2. a vector of `N` indexes into that vector is shuffled once per task
//!    type (optionally in *type-aware* order, most-significant bytes first),
//! 3. the first `N·p` shuffled indexes (for a percentage `0 < p ≤ 1`) select
//!    the bytes that are fed to a Bob Jenkins hash function, producing an
//!    8-byte hash key stored in the Task History Table.
//!
//! This crate provides those pieces as reusable, dependency-free components:
//!
//! * [`jenkins`] — Bob Jenkins' `lookup3` hash (`hashlittle2`, combined into
//!   a 64-bit key) and the classic one-at-a-time hash.
//! * [`prng`] — a deterministic SplitMix64 / Xoshiro256** pseudo-random
//!   number generator used for the index shuffles and by the workload
//!   generators of the application suite (task kernels must be deterministic
//!   for memoization to be sound, so all randomness is explicitly seeded).
//! * [`shuffle`] — Fisher–Yates shuffling plus the significance-ordered
//!   (MSB-first) shuffle used by type-aware input selection.
//! * [`sampler`] — [`InputSampler`], the per-task-type object that owns the
//!   cached shuffled index vector and turns `(input bytes, p)` into a key.

#![warn(missing_docs)]

pub mod jenkins;
pub mod prng;
pub mod sampler;
pub mod shuffle;

pub use jenkins::{hashlittle2, jenkins_hash64, one_at_a_time, JenkinsStream};
pub use prng::{SplitMix64, Xoshiro256StarStar};
pub use sampler::{ByteLayout, InputSampler, SampledKey};
pub use shuffle::{fisher_yates, significance_ordered_indices};

/// Fraction of selected input bytes, `0 < p ≤ 1`.
///
/// The paper expresses this as a percentage; internally we keep it as a
/// fraction. `Percentage::FULL` corresponds to Static ATM (p = 100 %), the
/// training phase of Dynamic ATM starts at `Percentage::MIN` (p = 2⁻¹⁵).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Percentage(f64);

impl Percentage {
    /// The smallest percentage explored by Dynamic ATM: 2⁻¹⁵ (≈ 0.003 %).
    pub const MIN: Percentage = Percentage(1.0 / 32768.0);
    /// Full input selection (Static ATM).
    pub const FULL: Percentage = Percentage(1.0);
    /// Number of doubling steps from [`Percentage::MIN`] to [`Percentage::FULL`].
    pub const STEPS: usize = 15;

    /// Creates a percentage from a fraction in `(0, 1]`.
    ///
    /// Values are clamped into `(MIN/2, 1]` so that arithmetic on the
    /// training ladder stays well defined.
    pub fn from_fraction(f: f64) -> Self {
        assert!(
            f.is_finite() && f > 0.0,
            "percentage must be positive, got {f}"
        );
        Percentage(f.min(1.0))
    }

    /// The percentage reached after `step` doublings starting from 2⁻¹⁵.
    ///
    /// `step = 0` gives 2⁻¹⁵ and `step >= 15` gives 100 %.
    pub fn from_training_step(step: usize) -> Self {
        let exp = 15usize.saturating_sub(step);
        Percentage((1.0f64 / f64::from(1u32 << exp.min(15))).min(1.0))
    }

    /// Returns the fraction in `(0, 1]`.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// Doubles the percentage, saturating at 100 %.
    #[must_use]
    pub fn doubled(self) -> Self {
        Percentage((self.0 * 2.0).min(1.0))
    }

    /// Halves the percentage, saturating at [`Percentage::MIN`] (the bottom
    /// of the training ladder).
    #[must_use]
    pub fn halved(self) -> Self {
        Percentage((self.0 / 2.0).max(Self::MIN.0))
    }

    /// True when the full input is selected (Static ATM).
    pub fn is_full(self) -> bool {
        self.0 >= 1.0
    }

    /// True when the percentage sits at the bottom of the training ladder.
    pub fn is_min(self) -> bool {
        self.0 <= Self::MIN.0
    }

    /// Number of bytes selected out of `total` input bytes.
    ///
    /// At least one byte is always selected so that even tiny inputs produce
    /// a meaningful key.
    pub fn bytes_of(self, total: usize) -> usize {
        if total == 0 {
            return 0;
        }
        (((total as f64) * self.0).ceil() as usize).clamp(1, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentage_training_ladder_spans_min_to_full() {
        assert!(
            (Percentage::from_training_step(0).fraction() - Percentage::MIN.fraction()).abs()
                < 1e-12
        );
        assert!(Percentage::from_training_step(15).is_full());
        assert!(Percentage::from_training_step(40).is_full());
        let mut p = Percentage::MIN;
        for step in 1..=15 {
            p = p.doubled();
            assert!(
                (p.fraction() - Percentage::from_training_step(step).fraction()).abs() < 1e-12,
                "doubling chain must match the training ladder at step {step}"
            );
        }
    }

    #[test]
    fn percentage_bytes_of_selects_at_least_one_byte() {
        assert_eq!(Percentage::MIN.bytes_of(10), 1);
        assert_eq!(Percentage::FULL.bytes_of(10), 10);
        assert_eq!(Percentage::from_fraction(0.5).bytes_of(10), 5);
        assert_eq!(Percentage::FULL.bytes_of(0), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn percentage_rejects_zero() {
        let _ = Percentage::from_fraction(0.0);
    }

    #[test]
    fn percentage_clamps_above_one() {
        assert!(Percentage::from_fraction(3.0).is_full());
    }

    #[test]
    fn percentage_halving_inverts_doubling_and_saturates_at_min() {
        let p = Percentage::MIN.doubled().doubled();
        assert!((p.halved().fraction() - Percentage::MIN.doubled().fraction()).abs() < 1e-15);
        assert!(Percentage::MIN.halved().is_min());
        assert!(!Percentage::FULL.is_min());
        assert!(Percentage::MIN.is_min());
    }
}
