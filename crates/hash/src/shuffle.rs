//! Index shuffling for input-byte selection.
//!
//! §III-B of the paper: the concatenated task inputs are viewed as a vector
//! of `N` bytes; a vector of `N` indexes is shuffled **once per task type**
//! and cached in the runtime, and the first `N·p` shuffled indexes select
//! the bytes to hash.
//!
//! §III-C (type-aware input selection): bytes are not equally informative —
//! the most significant byte of a float carries the sign and most of the
//! exponent, the least significant byte only low mantissa bits. The
//! type-aware shuffle therefore shuffles the indexes of the most significant
//! bytes of every element first, then the next-most-significant bytes, and
//! so on, so that a small `p` still covers the sign/exponent of every input
//! element before touching low-order mantissa bytes.

use crate::prng::Xoshiro256StarStar;

/// In-place Fisher–Yates shuffle driven by the deterministic PRNG.
pub fn fisher_yates<T>(items: &mut [T], rng: &mut Xoshiro256StarStar) {
    let n = items.len();
    if n < 2 {
        return;
    }
    for i in (1..n).rev() {
        let j = rng.below(i + 1);
        items.swap(i, j);
    }
}

/// Description of one data input: how many elements it holds and how wide
/// each element is, in bytes. Used to rank byte significance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputSpec {
    /// Number of elements in the data input.
    pub elements: usize,
    /// Width of each element in bytes (1 for raw bytes, 4 for f32/i32, 8 for f64/i64).
    pub elem_width: usize,
}

impl InputSpec {
    /// Total number of bytes covered by this input.
    pub fn bytes(&self) -> usize {
        self.elements * self.elem_width
    }
}

/// Produces a shuffled index vector over the concatenation of `inputs`.
///
/// When `type_aware` is false this is a plain Fisher–Yates permutation of
/// `0..total_bytes`. When true, indexes are grouped by byte significance
/// (most significant byte of each element first, assuming little-endian
/// element storage, so byte `elem_width - 1` of each element ranks first),
/// each significance group is shuffled independently, and the groups are
/// concatenated from most to least significant.
pub fn significance_ordered_indices(
    inputs: &[InputSpec],
    type_aware: bool,
    rng: &mut Xoshiro256StarStar,
) -> Vec<u32> {
    let total: usize = inputs.iter().map(InputSpec::bytes).sum();
    assert!(
        total <= u32::MAX as usize,
        "task inputs larger than 4 GiB are not supported"
    );

    if !type_aware {
        let mut indices: Vec<u32> = (0..total as u32).collect();
        fisher_yates(&mut indices, rng);
        return indices;
    }

    // Group byte indexes by significance rank: rank 0 holds the most
    // significant byte of every element across all inputs, rank 1 the next,
    // and so on. Inputs with narrower elements simply stop contributing to
    // ranks beyond their width.
    let max_width = inputs
        .iter()
        .map(|s| s.elem_width)
        .max()
        .unwrap_or(1)
        .max(1);
    let mut groups: Vec<Vec<u32>> = vec![Vec::new(); max_width];

    let mut base = 0usize;
    for spec in inputs {
        let width = spec.elem_width.max(1);
        for elem in 0..spec.elements {
            let elem_base = base + elem * width;
            for (rank, group) in groups.iter_mut().enumerate().take(width) {
                // Little-endian storage: the most significant byte of an
                // element is its last byte.
                let byte_in_elem = width - 1 - rank;
                group.push((elem_base + byte_in_elem) as u32);
            }
        }
        base += spec.bytes();
    }

    let mut out = Vec::with_capacity(total);
    for group in &mut groups {
        fisher_yates(group, rng);
        out.append(group);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(indices: &[u32], total: usize) -> bool {
        if indices.len() != total {
            return false;
        }
        let mut seen = vec![false; total];
        for &i in indices {
            let i = i as usize;
            if i >= total || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        true
    }

    #[test]
    fn fisher_yates_is_a_permutation_and_seed_deterministic() {
        let mut a: Vec<u32> = (0..1000).collect();
        let mut b: Vec<u32> = (0..1000).collect();
        fisher_yates(&mut a, &mut Xoshiro256StarStar::new(5));
        fisher_yates(&mut b, &mut Xoshiro256StarStar::new(5));
        assert_eq!(a, b);
        assert!(is_permutation(&a, 1000));
        let mut c: Vec<u32> = (0..1000).collect();
        fisher_yates(&mut c, &mut Xoshiro256StarStar::new(6));
        assert_ne!(a, c, "different seeds should give different permutations");
    }

    #[test]
    fn fisher_yates_handles_trivial_slices() {
        let mut empty: Vec<u32> = vec![];
        fisher_yates(&mut empty, &mut Xoshiro256StarStar::new(1));
        let mut one = vec![42u32];
        fisher_yates(&mut one, &mut Xoshiro256StarStar::new(1));
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn plain_shuffle_covers_all_bytes() {
        let inputs = [
            InputSpec {
                elements: 16,
                elem_width: 4,
            },
            InputSpec {
                elements: 8,
                elem_width: 8,
            },
        ];
        let total: usize = inputs.iter().map(InputSpec::bytes).sum();
        let idx = significance_ordered_indices(&inputs, false, &mut Xoshiro256StarStar::new(3));
        assert!(is_permutation(&idx, total));
    }

    #[test]
    fn type_aware_shuffle_covers_all_bytes() {
        let inputs = [
            InputSpec {
                elements: 5,
                elem_width: 4,
            },
            InputSpec {
                elements: 3,
                elem_width: 8,
            },
        ];
        let total: usize = inputs.iter().map(InputSpec::bytes).sum();
        let idx = significance_ordered_indices(&inputs, true, &mut Xoshiro256StarStar::new(3));
        assert!(is_permutation(&idx, total));
    }

    #[test]
    fn type_aware_shuffle_ranks_msbs_first() {
        // Two inputs of 4-byte elements: the first `elements_total` selected
        // indexes must all be MSB positions (byte 3 of each element).
        let inputs = [
            InputSpec {
                elements: 10,
                elem_width: 4,
            },
            InputSpec {
                elements: 6,
                elem_width: 4,
            },
        ];
        let idx = significance_ordered_indices(&inputs, true, &mut Xoshiro256StarStar::new(9));
        let elements_total = 16;
        for &i in idx.iter().take(elements_total) {
            assert_eq!(i % 4, 3, "index {i} in the first rank group is not an MSB");
        }
        // And the next group must be the second-most-significant bytes.
        for &i in idx.iter().skip(elements_total).take(elements_total) {
            assert_eq!(i % 4, 2, "index {i} in the second rank group is not byte 2");
        }
    }

    #[test]
    fn type_aware_shuffle_mixed_widths_orders_by_rank() {
        // One f64 input (8-byte elements) and one f32 input (4-byte
        // elements): rank 0 has one byte per element from both inputs;
        // ranks 4..8 only contain bytes from the f64 input.
        let inputs = [
            InputSpec {
                elements: 4,
                elem_width: 8,
            },
            InputSpec {
                elements: 4,
                elem_width: 4,
            },
        ];
        let idx = significance_ordered_indices(&inputs, true, &mut Xoshiro256StarStar::new(1));
        // Rank group 0 size = 8 elements total.
        let rank0: Vec<u32> = idx.iter().copied().take(8).collect();
        for &i in &rank0 {
            let i = i as usize;
            if i < 32 {
                assert_eq!(i % 8, 7, "f64 MSB expected");
            } else {
                assert_eq!((i - 32) % 4, 3, "f32 MSB expected");
            }
        }
        // The last 4 rank groups (ranks 4..7) can only contain f64 bytes.
        let tail: Vec<u32> = idx.iter().copied().skip(idx.len() - 16).collect();
        for &i in &tail {
            assert!(
                (i as usize) < 32,
                "low-significance ranks must come from the 8-byte input only"
            );
        }
    }

    #[test]
    fn byte_width_one_treats_every_byte_as_msb() {
        let inputs = [InputSpec {
            elements: 12,
            elem_width: 1,
        }];
        let idx = significance_ordered_indices(&inputs, true, &mut Xoshiro256StarStar::new(4));
        assert!(is_permutation(&idx, 12));
    }
}
