//! Property-based tests for the hashing and sampling substrate.

use atm_hash::shuffle::InputSpec;
use atm_hash::{
    fisher_yates, jenkins_hash64, significance_ordered_indices, ByteLayout, InputSampler,
    Percentage, Xoshiro256StarStar,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The hash is a pure function of (bytes, seed).
    #[test]
    fn hash_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512), seed in any::<u64>()) {
        prop_assert_eq!(jenkins_hash64(&data, seed), jenkins_hash64(&data, seed));
    }

    /// Appending a byte changes the hash (no trivial prefix collisions).
    #[test]
    fn hash_changes_when_extended(data in proptest::collection::vec(any::<u8>(), 0..256), extra in any::<u8>()) {
        let base = jenkins_hash64(&data, 0);
        let mut longer = data.clone();
        longer.push(extra);
        prop_assert_ne!(base, jenkins_hash64(&longer, 0));
    }

    /// Fisher–Yates always produces a permutation of its input.
    #[test]
    fn shuffle_is_permutation(len in 0usize..2000, seed in any::<u64>()) {
        let mut v: Vec<u32> = (0..len as u32).collect();
        fisher_yates(&mut v, &mut Xoshiro256StarStar::new(seed));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = (0..len as u32).collect();
        prop_assert_eq!(sorted, expected);
    }

    /// The significance-ordered index vector is always a permutation of all
    /// byte positions, for any mix of input element widths.
    #[test]
    fn significance_order_is_permutation(
        spec in proptest::collection::vec((1usize..64, prop_oneof![Just(1usize), Just(4), Just(8)]), 1..5),
        type_aware in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let specs: Vec<InputSpec> = spec.iter().map(|&(elements, elem_width)| InputSpec { elements, elem_width }).collect();
        let total: usize = specs.iter().map(InputSpec::bytes).sum();
        let idx = significance_ordered_indices(&specs, type_aware, &mut Xoshiro256StarStar::new(seed));
        prop_assert_eq!(idx.len(), total);
        let mut seen = vec![false; total];
        for &i in &idx {
            prop_assert!(!std::mem::replace(&mut seen[i as usize], true), "duplicate index {}", i);
        }
    }

    /// Equal inputs hash equal and the selected byte count respects p, for
    /// any p on the training ladder.
    #[test]
    fn sampler_key_is_stable_for_equal_inputs(
        elements in 1usize..256,
        step in 0usize..16,
        type_aware in any::<bool>(),
        fill in any::<u32>(),
    ) {
        let layout = ByteLayout::from_pairs(&[(elements, 4)]);
        let sampler = InputSampler::new(layout, type_aware, 99);
        let data: Vec<u8> = std::iter::repeat(fill.to_le_bytes()).take(elements).flatten().collect();
        let p = Percentage::from_training_step(step);
        let k1 = sampler.key(&[&data], p);
        let k2 = sampler.key(&[&data], p);
        prop_assert_eq!(k1.key, k2.key);
        prop_assert_eq!(k1.selected_bytes, p.bytes_of(elements * 4));
    }

    /// At p = 100 % any single-byte difference must change the key
    /// (this is the exactness guarantee behind Static ATM's 100 % correctness).
    #[test]
    fn full_p_detects_any_single_byte_change(
        data in proptest::collection::vec(any::<u8>(), 1..512),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let layout = ByteLayout::from_pairs(&[(data.len(), 1)]);
        let sampler = InputSampler::new(layout, false, 5);
        let mut other = data.clone();
        let pos = pos_seed % data.len();
        other[pos] ^= flip;
        let ka = sampler.key(&[&data], Percentage::FULL);
        let kb = sampler.key(&[&other], Percentage::FULL);
        prop_assert_ne!(ka.key, kb.key);
    }

    /// Doubling p never decreases the number of selected bytes, and the
    /// selected index set grows monotonically (prefix property).
    #[test]
    fn selection_grows_monotonically_with_p(elements in 1usize..200, type_aware in any::<bool>()) {
        let layout = ByteLayout::from_pairs(&[(elements, 8)]);
        let sampler = InputSampler::new(layout, type_aware, 17);
        let mut prev_len = 0usize;
        let mut p = Percentage::MIN;
        for _ in 0..=Percentage::STEPS {
            let sel = sampler.selected_indices(p);
            prop_assert!(sel.len() >= prev_len);
            prev_len = sel.len();
            p = p.doubled();
        }
        prop_assert_eq!(prev_len, elements * 8);
    }
}
