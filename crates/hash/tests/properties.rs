//! Property-based tests for the hashing and sampling substrate.
//!
//! Cases are generated with the crate's own deterministic PRNG
//! ([`Xoshiro256StarStar`]) instead of an external property-testing
//! framework: each property runs over a fixed number of seeded random
//! cases, so failures are reproducible from the case index alone.

use atm_hash::shuffle::InputSpec;
use atm_hash::{
    fisher_yates, jenkins_hash64, significance_ordered_indices, ByteLayout, InputSampler,
    Percentage, Xoshiro256StarStar,
};

const CASES: usize = 128;

fn random_bytes(rng: &mut Xoshiro256StarStar, max_len: usize, min_len: usize) -> Vec<u8> {
    let len = min_len + rng.below(max_len.saturating_sub(min_len).max(1));
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// The hash is a pure function of (bytes, seed).
#[test]
fn hash_is_deterministic() {
    let mut rng = Xoshiro256StarStar::new(0xA11CE);
    for case in 0..CASES {
        let data = random_bytes(&mut rng, 512, 0);
        let seed = rng.next_u64();
        assert_eq!(
            jenkins_hash64(&data, seed),
            jenkins_hash64(&data, seed),
            "case {case}: hash must be deterministic"
        );
    }
}

/// Appending a byte changes the hash (no trivial prefix collisions).
#[test]
fn hash_changes_when_extended() {
    let mut rng = Xoshiro256StarStar::new(0xB0B);
    for case in 0..CASES {
        let data = random_bytes(&mut rng, 256, 0);
        let extra = rng.next_u64() as u8;
        let base = jenkins_hash64(&data, 0);
        let mut longer = data.clone();
        longer.push(extra);
        assert_ne!(
            base,
            jenkins_hash64(&longer, 0),
            "case {case}: prefix collision"
        );
    }
}

/// Fisher–Yates always produces a permutation of its input.
#[test]
fn shuffle_is_permutation() {
    let mut rng = Xoshiro256StarStar::new(0x5_u64);
    for case in 0..CASES {
        let len = rng.below(2000);
        let seed = rng.next_u64();
        let mut v: Vec<u32> = (0..len as u32).collect();
        fisher_yates(&mut v, &mut Xoshiro256StarStar::new(seed));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let expected: Vec<u32> = (0..len as u32).collect();
        assert_eq!(
            sorted, expected,
            "case {case}: shuffle is not a permutation"
        );
    }
}

/// The significance-ordered index vector is always a permutation of all
/// byte positions, for any mix of input element widths.
#[test]
fn significance_order_is_permutation() {
    let mut rng = Xoshiro256StarStar::new(0x516);
    let widths = [1usize, 4, 8];
    for case in 0..CASES {
        let inputs = 1 + rng.below(4);
        let specs: Vec<InputSpec> = (0..inputs)
            .map(|_| InputSpec {
                elements: 1 + rng.below(63),
                elem_width: widths[rng.below(widths.len())],
            })
            .collect();
        let type_aware = rng.below(2) == 0;
        let seed = rng.next_u64();
        let total: usize = specs.iter().map(InputSpec::bytes).sum();
        let idx =
            significance_ordered_indices(&specs, type_aware, &mut Xoshiro256StarStar::new(seed));
        assert_eq!(idx.len(), total, "case {case}: wrong index count");
        let mut seen = vec![false; total];
        for &i in &idx {
            assert!(
                !std::mem::replace(&mut seen[i as usize], true),
                "case {case}: duplicate index {i}"
            );
        }
    }
}

/// Equal inputs hash equal and the selected byte count respects p, for
/// any p on the training ladder.
#[test]
fn sampler_key_is_stable_for_equal_inputs() {
    let mut rng = Xoshiro256StarStar::new(0x7EA);
    for case in 0..CASES {
        let elements = 1 + rng.below(255);
        let step = rng.below(16);
        let type_aware = rng.below(2) == 0;
        let fill = rng.next_u32();
        let layout = ByteLayout::from_pairs(&[(elements, 4)]);
        let sampler = InputSampler::new(layout, type_aware, 99);
        let data: Vec<u8> = std::iter::repeat_n(fill.to_le_bytes(), elements)
            .flatten()
            .collect();
        let p = Percentage::from_training_step(step);
        let k1 = sampler.key(&[&data], p);
        let k2 = sampler.key(&[&data], p);
        assert_eq!(k1.key, k2.key, "case {case}: key not stable");
        assert_eq!(
            k1.selected_bytes,
            p.bytes_of(elements * 4),
            "case {case}: wrong byte count"
        );
    }
}

/// At p = 100 % any single-byte difference must change the key
/// (this is the exactness guarantee behind Static ATM's 100 % correctness).
#[test]
fn full_p_detects_any_single_byte_change() {
    let mut rng = Xoshiro256StarStar::new(0xF11);
    for case in 0..CASES {
        let data = random_bytes(&mut rng, 512, 1);
        let pos = rng.below(data.len());
        let flip = 1 + (rng.next_u64() % 255) as u8;
        let layout = ByteLayout::from_pairs(&[(data.len(), 1)]);
        let sampler = InputSampler::new(layout, false, 5);
        let mut other = data.clone();
        other[pos] ^= flip;
        let ka = sampler.key(&[&data], Percentage::FULL);
        let kb = sampler.key(&[&other], Percentage::FULL);
        assert_ne!(
            ka.key, kb.key,
            "case {case}: single-byte change missed at full p"
        );
    }
}

/// Doubling p never decreases the number of selected bytes, and the
/// selected index set grows monotonically (prefix property).
#[test]
fn selection_grows_monotonically_with_p() {
    let mut rng = Xoshiro256StarStar::new(0x6_u64);
    for case in 0..CASES {
        let elements = 1 + rng.below(199);
        let type_aware = rng.below(2) == 0;
        let layout = ByteLayout::from_pairs(&[(elements, 8)]);
        let sampler = InputSampler::new(layout, type_aware, 17);
        let mut prev_len = 0usize;
        let mut p = Percentage::MIN;
        for _ in 0..=Percentage::STEPS {
            let sel = sampler.selected_indices(p);
            assert!(sel.len() >= prev_len, "case {case}: selection shrank");
            prev_len = sel.len();
            p = p.doubled();
        }
        assert_eq!(
            prev_len,
            elements * 8,
            "case {case}: full p must select everything"
        );
    }
}
