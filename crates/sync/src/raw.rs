//! The always-`std`-backed primitives behind the crate's public API.
//!
//! In a production build (`cfg(not(atm_check))`) the crate root re-exports
//! these types verbatim, so they compile down to plain `std::sync` locks.
//! Under `--cfg atm_check` the crate root instead re-exports the
//! instrumented model types from [`crate::check::sync`]; this module stays
//! available because the checker *itself* needs real, uninstrumented locks
//! for its own coordination, and because harness code that runs outside a
//! model (test `main`s, reporting) still wants ordinary locking.
//!
//! Poisoning is deliberately ignored: a panicking task kernel must not
//! wedge every other worker on a poisoned region lock.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock. `lock()` returns the guard directly and ignores
/// poisoning, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

/// RAII guard of a [`Mutex`].
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take the
/// `std` guard by value (the `std` API consumes it) and put it back; it is
/// `Some` at all times outside of that exchange.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard is always present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard is always present outside Condvar::wait")
    }
}

/// A condition variable usable with [`MutexGuard`] held by `&mut`, like
/// `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guarded lock and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard
            .inner
            .take()
            .expect("guard is always present outside Condvar::wait");
        guard.inner = Some(
            self.0
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wakes one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every thread blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A resettable binary event (the building block of eventcount-style
/// per-thread parking).
///
/// The flag is *sticky*: a [`Event::signal`] delivered while no thread is
/// waiting is remembered and satisfies the next [`Event::wait`] immediately.
/// Protocols that reuse an event (a worker parking repeatedly) clear stale
/// signals with [`Event::reset`] *before* publishing themselves as asleep,
/// so a signal can never be lost between the announcement and the wait.
#[derive(Debug, Default)]
pub struct Event {
    signaled: Mutex<bool>,
    condvar: Condvar,
}

impl Event {
    /// Creates an unsignaled event.
    pub const fn new() -> Self {
        Event {
            signaled: Mutex::new(false),
            condvar: Condvar::new(),
        }
    }

    /// Clears a pending signal (if any), so the next [`Event::wait`] blocks
    /// until a signal arrives after this call.
    pub fn reset(&self) {
        *self.signaled.lock() = false;
    }

    /// Signals the event, waking the waiter (or satisfying the next wait).
    pub fn signal(&self) {
        let mut signaled = self.signaled.lock();
        *signaled = true;
        drop(signaled);
        self.condvar.notify_one();
    }

    /// Blocks until the event is signaled, consuming the signal.
    pub fn wait(&self) {
        let mut signaled = self.signaled.lock();
        while !*signaled {
            self.condvar.wait(&mut signaled);
        }
        *signaled = false;
    }

    /// Whether a signal is currently pending (diagnostics/tests).
    pub fn is_signaled(&self) -> bool {
        *self.signaled.lock()
    }
}

/// A reader-writer lock. `read()`/`write()` return guards directly and
/// ignore poisoning, like `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

/// RAII shared-read guard of a [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive-write guard of a [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_and_write() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*waiter;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        assert!(handle.join().unwrap());
    }

    #[test]
    fn event_signal_before_wait_is_sticky() {
        let e = Event::new();
        assert!(!e.is_signaled());
        e.signal();
        assert!(e.is_signaled());
        e.wait(); // returns immediately, consuming the signal
        assert!(!e.is_signaled());
    }

    #[test]
    fn event_reset_clears_a_stale_signal() {
        let e = Event::new();
        e.signal();
        e.reset();
        assert!(!e.is_signaled());
    }

    #[test]
    fn event_wakes_a_blocked_waiter() {
        let e = Arc::new(Event::new());
        let waiter = Arc::clone(&e);
        let handle = std::thread::spawn(move || {
            waiter.wait();
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        e.signal();
        assert!(handle.join().unwrap());
    }

    #[test]
    fn poisoned_locks_are_recovered() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert_eq!(*m.lock(), 7, "a poisoned mutex must still be usable");

        let l = Arc::new(RwLock::new(3));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the rwlock");
        })
        .join();
        assert_eq!(*l.read(), 3, "a poisoned rwlock must still be usable");
    }
}
