//! Small, dense, process-wide thread ordinals.
//!
//! Several hot paths want to spread per-thread state across a fixed array of
//! cache-padded shards (striped statistics counters, hazard-slot hints)
//! without threading a worker index through every call site. [`thread_ordinal`]
//! gives each OS thread a small integer, assigned on first use from a global
//! counter and cached in a thread-local, so `ordinal % SHARDS` is a stable,
//! collision-light shard index for the lifetime of the thread.
//!
//! The counter deliberately uses `std` atomics even under `--cfg atm_check`:
//! ordinal assignment is not part of any checked protocol, it is an identity,
//! and instrumenting it would only add meaningless scheduling points.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_ORDINAL: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static ORDINAL: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Returns this thread's process-wide ordinal: `0` for the first thread that
/// asks, `1` for the second, and so on. Stable for the thread's lifetime;
/// ordinals of dead threads are not recycled.
pub fn thread_ordinal() -> usize {
    ORDINAL.with(|slot| {
        let mut ordinal = slot.get();
        if ordinal == usize::MAX {
            ordinal = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
            slot.set(ordinal);
        }
        ordinal
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinal_is_stable_within_a_thread() {
        assert_eq!(thread_ordinal(), thread_ordinal());
    }

    #[test]
    fn ordinals_differ_across_threads() {
        let mine = thread_ordinal();
        let theirs = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(mine, theirs);
    }
}
