//! Minimal synchronisation primitives with a `parking_lot`-style API, plus
//! `atm-check`, an in-tree deterministic concurrency model checker.
//!
//! The runtime and the ATM engine were written against `parking_lot`'s
//! ergonomic locking API (`lock()` returns the guard directly, no poisoning
//! to unwrap, `Condvar::wait` takes the guard by `&mut`). This crate provides
//! the same surface on top of `std::sync` so the workspace has no external
//! dependencies.
//!
//! # Two builds, one API
//!
//! * **Production** (`cfg(not(atm_check))`, the default): [`Mutex`],
//!   [`RwLock`], [`Condvar`], [`Event`] and the [`atomic`] re-exports are
//!   thin zero-cost wrappers over `std::sync` — exactly the types in
//!   [`raw`].
//! * **Checking** (`RUSTFLAGS='--cfg atm_check'`): the same names resolve to
//!   the *instrumented* types in [`check::sync`]. Every lock, atomic and
//!   [`Event`] operation becomes a scheduling point of the cooperative
//!   model scheduler in [`check`], which explores thread interleavings
//!   deterministically, tracks happens-before with vector clocks to flag
//!   data races from too-weak `Ordering`s, and builds a lock-order graph to
//!   flag potential deadlocks.
//!
//! The checker module itself ([`check`]) is compiled in **both** builds, so
//! the model-based protocol tests under `tests/model/` run as part of the
//! ordinary test suite; `--cfg atm_check` is only needed to run *production*
//! code (e.g. the real `TaskGraph`) under the instrumented scheduler.
//! See `CONCURRENCY.md` at the repository root for the protocol inventory
//! and a guide to writing models.

// The checker's claims are only as good as its own soundness: no `unsafe`
// anywhere in this crate, enforced at compile time.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod check;
pub mod raw;
pub mod thread_id;

pub use thread_id::thread_ordinal;

#[cfg(not(atm_check))]
pub use raw::{Condvar, Event, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(atm_check)]
pub use check::sync::{
    Condvar, Event, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
