//! Vector clocks for happens-before tracking.
//!
//! Each model thread `t` owns a clock whose component `t` counts `t`'s own
//! instrumented operations. Synchronisation operations *join* clocks: an
//! acquire joins the release clock stored at the location into the acquiring
//! thread's clock. Two accesses are concurrent — and a pair of conflicting
//! plain accesses is a data race — exactly when neither clock dominates the
//! relevant component of the other.

/// A grow-on-demand vector clock. Component `i` is logical time of model
/// thread `i`; absent components read as `0`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock (happens-before everything).
    pub const fn new() -> Self {
        VClock(Vec::new())
    }

    fn ensure(&mut self, index: usize) {
        if self.0.len() <= index {
            self.0.resize(index + 1, 0);
        }
    }

    /// Component `index` of the clock (`0` if never set).
    pub fn get(&self, index: usize) -> u32 {
        self.0.get(index).copied().unwrap_or(0)
    }

    /// Advances component `index` by one (a local step of thread `index`).
    pub fn tick(&mut self, index: usize) {
        self.ensure(index);
        self.0[index] += 1;
    }

    /// Component-wise maximum: afterwards `self` dominates both inputs.
    pub fn join(&mut self, other: &VClock) {
        self.ensure(other.0.len().saturating_sub(1));
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Raises component `index` to at least `value` (records a per-thread
    /// access epoch).
    pub fn join_component(&mut self, index: usize, value: u32) {
        self.ensure(index);
        if self.0[index] < value {
            self.0[index] = value;
        }
    }

    /// Resets every component to zero (used when a relaxed store severs the
    /// release chain attached to an atomic location).
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Overwrites `self` with a copy of `other`.
    pub fn assign(&mut self, other: &VClock) {
        self.0.clear();
        self.0.extend_from_slice(&other.0);
    }

    /// Whether every component of `other` is `<=` the matching component of
    /// `self` — i.e. everything `other` knows about happened before `self`.
    pub fn dominates(&self, other: &VClock) -> bool {
        for (i, &v) in other.0.iter().enumerate() {
            if v > self.get(i) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_dominate() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.tick(0);
        b.tick(1);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        let mut c = a.clone();
        c.join(&b);
        assert!(c.dominates(&a));
        assert!(c.dominates(&b));
        assert_eq!(c.get(0), 1);
        assert_eq!(c.get(1), 1);
        c.clear();
        assert!(VClock::new().dominates(&c));
    }

    #[test]
    fn assign_copies() {
        let mut a = VClock::new();
        a.tick(2);
        let mut b = VClock::new();
        b.assign(&a);
        assert_eq!(a, b);
    }
}
