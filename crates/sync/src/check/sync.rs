//! Instrumented synchronisation primitives for model checking.
//!
//! Each type here mirrors a production primitive (`Mutex`, `RwLock`,
//! `Condvar`, `Event`, the `atomic` integers) with the same API, plus
//! [`Data`], an instrumented *plain* cell used by models to give the race
//! detector something to bite on. On a model thread every operation:
//!
//! 1. yields to the model scheduler (a scheduling point),
//! 2. performs happens-before bookkeeping against the vector clocks,
//! 3. performs the real operation on an underlying `std` primitive.
//!
//! Called from a non-model thread, every type degrades to its plain `raw`
//! behaviour, so production code compiled under `--cfg atm_check` still
//! works outside the checker.
//!
//! # Happens-before model
//!
//! Atomic values are sequentially consistent (the underlying operation
//! always uses `SeqCst`), but the *happens-before* edges honour the
//! `Ordering` the caller passed, FastTrack-style: a `Release` store
//! attaches the writer's clock to the location, an `Acquire` load joins the
//! attached clock into the reader, a `Relaxed` store severs the attached
//! clock, and a `Relaxed` RMW preserves it (release-sequence continuation)
//! without contributing the RMW thread's own clock. Too-weak orderings
//! therefore fail to publish writes, and a subsequent [`Data`] access on
//! the consumer side is flagged as a data race. Weak-memory *value*
//! speculation (a stale `Relaxed` load) is out of scope, as in loom's core
//! model.

use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::OnceLock;

use super::clock::VClock;
use super::exec::{current, BlockedOn, ExecCtx, FailureKind};
use crate::raw;

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

struct LockMeta {
    holder: Option<usize>,
    /// Release clock of the last unlock; joined by the next acquirer.
    sync: VClock,
}

/// Instrumented mutual-exclusion lock (model counterpart of
/// [`crate::raw::Mutex`]).
pub struct Mutex<T: ?Sized> {
    id: OnceLock<u64>,
    meta: raw::Mutex<LockMeta>,
    inner: raw::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            id: OnceLock::new(),
            meta: raw::Mutex::new(LockMeta {
                holder: None,
                sync: VClock::new(),
            }),
            inner: raw::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn ensure_id(&self, ctx: &ExecCtx) -> u64 {
        *self.id.get_or_init(|| ctx.new_resource_id())
    }

    /// Acquires the lock. On a model thread this is a scheduling point; the
    /// thread blocks in the *model* (never in the OS) while another model
    /// thread holds the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some(ctx) = current() {
            let id = self.ensure_id(&ctx);
            ctx.op_point();
            loop {
                let mut meta = self.meta.lock();
                if meta.holder.is_none() {
                    meta.holder = Some(ctx.index);
                    ctx.join_clock(&meta.sync);
                    ctx.tick();
                    drop(meta);
                    ctx.lock_acquired(id);
                    break;
                }
                drop(meta);
                ctx.block_on(BlockedOn::Lock(id));
            }
            MutexGuard {
                lock: self,
                inner: Some(self.inner.lock()),
                model: true,
            }
        } else {
            MutexGuard {
                lock: self,
                inner: Some(self.inner.lock()),
                model: false,
            }
        }
    }
}

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard of a model [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// `None` only transiently inside [`Condvar::wait`].
    inner: Option<raw::MutexGuard<'a, T>>,
    /// Whether model bookkeeping applied at acquisition.
    model: bool,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard is always present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard is always present outside Condvar::wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None; // release the real lock first
        if self.model {
            if let Some(ctx) = current() {
                release_mutex(self.lock, &ctx);
            }
        }
    }
}

impl<T: ?Sized> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutexGuard").finish_non_exhaustive()
    }
}

/// Model-releases `lock` on behalf of `ctx`: clears the holder, publishes
/// the releaser's clock, and unblocks lock waiters.
fn release_mutex<T: ?Sized>(lock: &Mutex<T>, ctx: &ExecCtx) {
    let id = lock.ensure_id(ctx);
    ctx.tick();
    let clock = ctx.clock();
    {
        let mut meta = lock.meta.lock();
        meta.holder = None;
        meta.sync.assign(&clock);
    }
    ctx.lock_released(id);
    ctx.unblock_where(move |on| on == BlockedOn::Lock(id));
}

/// Model-acquires `lock` on behalf of `ctx` (used by [`Condvar::wait`] to
/// re-acquire after waking).
fn acquire_mutex<T: ?Sized>(lock: &Mutex<T>, ctx: &ExecCtx) {
    let id = lock.ensure_id(ctx);
    loop {
        let mut meta = lock.meta.lock();
        if meta.holder.is_none() {
            meta.holder = Some(ctx.index);
            ctx.join_clock(&meta.sync);
            ctx.tick();
            drop(meta);
            ctx.lock_acquired(id);
            return;
        }
        drop(meta);
        ctx.block_on(BlockedOn::Lock(id));
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Instrumented condition variable (model counterpart of
/// [`crate::raw::Condvar`]).
///
/// Wakeups are deterministic: `notify_one` wakes the longest-waiting model
/// thread, and the model never delivers spurious wakeups (a documented
/// divergence from the OS primitive — protocols must not *rely* on spurious
/// wakeups, which none of ours do).
pub struct Condvar {
    id: OnceLock<u64>,
    /// Model threads waiting, in arrival order.
    waiters: raw::Mutex<Vec<usize>>,
    /// Fallback for non-model threads.
    raw_cv: raw::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            id: OnceLock::new(),
            waiters: raw::Mutex::new(Vec::new()),
            raw_cv: raw::Condvar::new(),
        }
    }

    fn ensure_id(&self, ctx: &ExecCtx) -> u64 {
        *self.id.get_or_init(|| ctx.new_resource_id())
    }

    /// Atomically (w.r.t. the model) releases the guarded lock and blocks
    /// until notified, then re-acquires the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some(ctx) = current() {
            if guard.model {
                let cv_id = self.ensure_id(&ctx);
                ctx.op_point();
                // Register as a waiter and release the mutex without an
                // intervening scheduling point: the release and the wait
                // are one atomic step, exactly like the OS primitive.
                self.waiters.lock().push(ctx.index);
                guard.inner = None;
                release_mutex(guard.lock, &ctx);
                ctx.block_on(BlockedOn::Condvar(cv_id));
                acquire_mutex(guard.lock, &ctx);
                guard.inner = Some(guard.lock.inner.lock());
                return;
            }
        }
        let raw_guard = guard
            .inner
            .as_mut()
            .expect("guard is always present outside Condvar::wait");
        self.raw_cv.wait(raw_guard);
    }

    /// Wakes the longest-waiting thread (deterministic in the model).
    pub fn notify_one(&self) {
        if let Some(ctx) = current() {
            let cv_id = self.ensure_id(&ctx);
            ctx.op_point();
            ctx.tick();
            let mut waiters = self.waiters.lock();
            if !waiters.is_empty() {
                let w = waiters.remove(0);
                drop(waiters);
                ctx.unblock_thread(w, BlockedOn::Condvar(cv_id));
            }
        }
        self.raw_cv.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        if let Some(ctx) = current() {
            let cv_id = self.ensure_id(&ctx);
            ctx.op_point();
            ctx.tick();
            self.waiters.lock().clear();
            ctx.unblock_where(move |on| on == BlockedOn::Condvar(cv_id));
        }
        self.raw_cv.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

/// Instrumented resettable binary event (model counterpart of
/// [`crate::raw::Event`]); built from the model [`Mutex`] and [`Condvar`],
/// so each of its operations contributes the same scheduling points the
/// production `Event` would under instrumentation.
#[derive(Debug, Default)]
pub struct Event {
    signaled: Mutex<bool>,
    condvar: Condvar,
}

impl Event {
    /// Creates an unsignaled event.
    pub const fn new() -> Self {
        Event {
            signaled: Mutex::new(false),
            condvar: Condvar::new(),
        }
    }

    /// Clears a pending signal (if any).
    pub fn reset(&self) {
        *self.signaled.lock() = false;
    }

    /// Signals the event, waking the waiter (or satisfying the next wait).
    pub fn signal(&self) {
        let mut signaled = self.signaled.lock();
        *signaled = true;
        drop(signaled);
        self.condvar.notify_one();
    }

    /// Blocks until the event is signaled, consuming the signal.
    pub fn wait(&self) {
        let mut signaled = self.signaled.lock();
        while !*signaled {
            self.condvar.wait(&mut signaled);
        }
        *signaled = false;
    }

    /// Whether a signal is currently pending (diagnostics/tests).
    pub fn is_signaled(&self) -> bool {
        *self.signaled.lock()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

struct RwMeta {
    readers: Vec<usize>,
    writer: Option<usize>,
    sync: VClock,
}

/// Instrumented reader-writer lock (model counterpart of
/// [`crate::raw::RwLock`]).
pub struct RwLock<T: ?Sized> {
    id: OnceLock<u64>,
    meta: raw::Mutex<RwMeta>,
    inner: raw::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            id: OnceLock::new(),
            meta: raw::Mutex::new(RwMeta {
                readers: Vec::new(),
                writer: None,
                sync: VClock::new(),
            }),
            inner: raw::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn ensure_id(&self, ctx: &ExecCtx) -> u64 {
        *self.id.get_or_init(|| ctx.new_resource_id())
    }

    /// Acquires shared read access (a model scheduling point).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Some(ctx) = current() {
            let id = self.ensure_id(&ctx);
            ctx.op_point();
            loop {
                let mut meta = self.meta.lock();
                if meta.writer.is_none() {
                    meta.readers.push(ctx.index);
                    ctx.join_clock(&meta.sync);
                    ctx.tick();
                    drop(meta);
                    ctx.lock_acquired(id);
                    break;
                }
                drop(meta);
                ctx.block_on(BlockedOn::Lock(id));
            }
            RwLockReadGuard {
                lock: self,
                inner: Some(self.inner.read()),
                model: true,
            }
        } else {
            RwLockReadGuard {
                lock: self,
                inner: Some(self.inner.read()),
                model: false,
            }
        }
    }

    /// Acquires exclusive write access (a model scheduling point).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Some(ctx) = current() {
            let id = self.ensure_id(&ctx);
            ctx.op_point();
            loop {
                let mut meta = self.meta.lock();
                if meta.writer.is_none() && meta.readers.is_empty() {
                    meta.writer = Some(ctx.index);
                    ctx.join_clock(&meta.sync);
                    ctx.tick();
                    drop(meta);
                    ctx.lock_acquired(id);
                    break;
                }
                drop(meta);
                ctx.block_on(BlockedOn::Lock(id));
            }
            RwLockWriteGuard {
                lock: self,
                inner: Some(self.inner.write()),
                model: true,
            }
        } else {
            RwLockWriteGuard {
                lock: self,
                inner: Some(self.inner.write()),
                model: false,
            }
        }
    }
}

impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

fn release_rw<T: ?Sized>(lock: &RwLock<T>, ctx: &ExecCtx, writer: bool) {
    let id = lock.ensure_id(ctx);
    ctx.tick();
    let clock = ctx.clock();
    {
        let mut meta = lock.meta.lock();
        if writer {
            meta.writer = None;
        } else if let Some(pos) = meta.readers.iter().position(|&r| r == ctx.index) {
            meta.readers.remove(pos);
        }
        meta.sync.join(&clock);
    }
    ctx.lock_released(id);
    ctx.unblock_where(move |on| on == BlockedOn::Lock(id));
}

/// RAII shared-read guard of a model [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<raw::RwLockReadGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("read guard present")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.model {
            if let Some(ctx) = current() {
                release_rw(self.lock, &ctx, false);
            }
        }
    }
}

impl<T: ?Sized> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLockReadGuard").finish_non_exhaustive()
    }
}

/// RAII exclusive-write guard of a model [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<raw::RwLockWriteGuard<'a, T>>,
    model: bool,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("write guard present")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("write guard present")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.model {
            if let Some(ctx) = current() {
                release_rw(self.lock, &ctx, true);
            }
        }
    }
}

impl<T: ?Sized> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLockWriteGuard").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Data — instrumented plain cell for race detection
// ---------------------------------------------------------------------------

struct DataMeta {
    /// Epoch of the last write: `(thread, clock-component-at-write)`.
    write: Option<(usize, u32)>,
    write_site: Option<&'static Location<'static>>,
    /// Per-thread read epochs since the last write.
    reads: VClock,
    read_site: Option<&'static Location<'static>>,
}

/// An instrumented **non-atomic** cell. Models use `Data` for the payload a
/// protocol is supposed to protect: the checker flags any pair of
/// conflicting accesses not ordered by happens-before as a
/// [`FailureKind::DataRace`], which is how too-weak `Ordering`s on the
/// protocol's atomics are detected. (The value itself is stored under an
/// internal lock, so a racy model cannot corrupt the checker.)
pub struct Data<T> {
    meta: raw::Mutex<DataMeta>,
    cell: raw::Mutex<T>,
}

impl<T> Data<T> {
    /// Creates a cell holding `value`.
    pub const fn new(value: T) -> Self {
        Data {
            meta: raw::Mutex::new(DataMeta {
                write: None,
                write_site: None,
                reads: VClock::new(),
                read_site: None,
            }),
            cell: raw::Mutex::new(value),
        }
    }

    /// Consumes the cell and returns the value.
    pub fn into_inner(self) -> T {
        self.cell.into_inner()
    }

    fn check_read(&self, ctx: &ExecCtx, site: &'static Location<'static>) {
        ctx.op_point();
        let clock = ctx.clock();
        let mut meta = self.meta.lock();
        if let Some((wt, wc)) = meta.write {
            if clock.get(wt) < wc {
                let wsite = meta.write_site.map(loc_str).unwrap_or_default();
                drop(meta);
                ctx.fail(
                    FailureKind::DataRace,
                    format!(
                        "read at {} races with unsynchronised write at {wsite} (by thread {wt})",
                        loc_str(site)
                    ),
                );
            }
        }
        ctx.tick();
        let clock = ctx.clock();
        meta.reads.join_component(ctx.index, clock.get(ctx.index));
        meta.read_site = Some(site);
    }

    fn check_write(&self, ctx: &ExecCtx, site: &'static Location<'static>) {
        ctx.op_point();
        let clock = ctx.clock();
        let mut meta = self.meta.lock();
        if let Some((wt, wc)) = meta.write {
            if clock.get(wt) < wc {
                let wsite = meta.write_site.map(loc_str).unwrap_or_default();
                drop(meta);
                ctx.fail(
                    FailureKind::DataRace,
                    format!(
                        "write at {} races with unsynchronised write at {wsite} (by thread {wt})",
                        loc_str(site)
                    ),
                );
            }
        }
        if !clock.dominates(&meta.reads) {
            let rsite = meta.read_site.map(loc_str).unwrap_or_default();
            drop(meta);
            ctx.fail(
                FailureKind::DataRace,
                format!(
                    "write at {} races with unsynchronised read at {rsite}",
                    loc_str(site)
                ),
            );
        }
        ctx.tick();
        let clock = ctx.clock();
        meta.write = Some((ctx.index, clock.get(ctx.index)));
        meta.write_site = Some(site);
        meta.reads.clear();
        meta.read_site = None;
    }

    /// Reads through `f` (a model *read* access).
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let site = Location::caller();
        if let Some(ctx) = current() {
            self.check_read(&ctx, site);
        }
        f(&self.cell.lock())
    }

    /// Mutates through `f` (a model *write* access).
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let site = Location::caller();
        if let Some(ctx) = current() {
            self.check_write(&ctx, site);
        }
        f(&mut self.cell.lock())
    }
}

impl<T: Copy> Data<T> {
    /// Reads the value (a model *read* access).
    #[track_caller]
    pub fn get(&self) -> T {
        let site = Location::caller();
        if let Some(ctx) = current() {
            self.check_read(&ctx, site);
        }
        *self.cell.lock()
    }

    /// Overwrites the value (a model *write* access).
    #[track_caller]
    pub fn set(&self, value: T) {
        let site = Location::caller();
        if let Some(ctx) = current() {
            self.check_write(&ctx, site);
        }
        *self.cell.lock() = value;
    }
}

impl<T> std::fmt::Debug for Data<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Data").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Data<T> {
    fn default() -> Self {
        Data::new(T::default())
    }
}

fn loc_str(loc: &'static Location<'static>) -> String {
    format!("{}:{}:{}", loc.file(), loc.line(), loc.column())
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Shared acquire-side bookkeeping for an atomic op.
fn atomic_acquire(ctx: &ExecCtx, sync: &raw::Mutex<VClock>, order: Ordering) {
    if is_acquire(order) {
        let s = sync.lock();
        ctx.join_clock(&s);
    }
}

/// Shared release-side bookkeeping for a *store* (replaces or severs the
/// location's release clock).
fn atomic_store_release(ctx: &ExecCtx, sync: &raw::Mutex<VClock>, order: Ordering) {
    ctx.tick();
    let mut s = sync.lock();
    if is_release(order) {
        let clock = ctx.clock();
        s.assign(&clock);
    } else {
        s.clear();
    }
}

/// Shared release-side bookkeeping for an *RMW* (joins into the release
/// clock on release orderings, preserves it otherwise — the C++ release
/// sequence).
fn atomic_rmw_release(ctx: &ExecCtx, sync: &raw::Mutex<VClock>, order: Ordering) {
    ctx.tick();
    if is_release(order) {
        let clock = ctx.clock();
        sync.lock().join(&clock);
    }
}

macro_rules! model_atomic {
    ($(#[$doc:meta])* $Name:ident, $Raw:ty, $ty:ty) => {
        $(#[$doc])*
        pub struct $Name {
            sync: raw::Mutex<VClock>,
            inner: $Raw,
        }

        impl $Name {
            /// Creates an atomic holding `value`.
            pub const fn new(value: $ty) -> Self {
                $Name {
                    sync: raw::Mutex::new(VClock::new()),
                    inner: <$Raw>::new(value),
                }
            }

            /// Consumes the atomic and returns the value.
            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }

            /// Loads the value. On a model thread this is a scheduling
            /// point; an `Acquire`-or-stronger ordering joins the
            /// location's release clock into the caller.
            pub fn load(&self, order: Ordering) -> $ty {
                if let Some(ctx) = current() {
                    ctx.op_point();
                    atomic_acquire(&ctx, &self.sync, order);
                    ctx.tick();
                    self.inner.load(Ordering::SeqCst)
                } else {
                    self.inner.load(order)
                }
            }

            /// Stores `value`. A `Release`-or-stronger ordering publishes
            /// the caller's clock at the location; a relaxed store severs
            /// any previously-published clock.
            pub fn store(&self, value: $ty, order: Ordering) {
                if let Some(ctx) = current() {
                    ctx.op_point();
                    atomic_store_release(&ctx, &self.sync, order);
                    self.inner.store(value, Ordering::SeqCst);
                } else {
                    self.inner.store(value, order);
                }
            }

            /// Swaps in `value`, returning the previous value (an RMW:
            /// participates in the location's release sequence).
            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                if let Some(ctx) = current() {
                    ctx.op_point();
                    atomic_acquire(&ctx, &self.sync, order);
                    let prev = self.inner.swap(value, Ordering::SeqCst);
                    atomic_rmw_release(&ctx, &self.sync, order);
                    prev
                } else {
                    self.inner.swap(value, order)
                }
            }

            /// Compare-and-exchange; orderings are honoured for
            /// happens-before tracking on the success/failure paths
            /// respectively.
            pub fn compare_exchange(
                &self,
                current_val: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                if let Some(ctx) = current() {
                    ctx.op_point();
                    let result = self
                        .inner
                        .compare_exchange(current_val, new, Ordering::SeqCst, Ordering::SeqCst);
                    match result {
                        Ok(_) => {
                            atomic_acquire(&ctx, &self.sync, success);
                            atomic_rmw_release(&ctx, &self.sync, success);
                        }
                        Err(_) => {
                            atomic_acquire(&ctx, &self.sync, failure);
                            ctx.tick();
                        }
                    }
                    result
                } else {
                    self.inner.compare_exchange(current_val, new, success, failure)
                }
            }

            /// Like [`Self::compare_exchange`]; the model never fails
            /// spuriously.
            pub fn compare_exchange_weak(
                &self,
                current_val: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current_val, new, success, failure)
            }
        }

        impl std::fmt::Debug for $Name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($Name))
                    .field(&self.inner.load(Ordering::SeqCst))
                    .finish()
            }
        }

        impl Default for $Name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }
    };
}

macro_rules! model_atomic_arith {
    ($Name:ident, $ty:ty) => {
        impl $Name {
            /// Adds `value`, returning the previous value (an RMW).
            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                if let Some(ctx) = current() {
                    ctx.op_point();
                    atomic_acquire(&ctx, &self.sync, order);
                    let prev = self.inner.fetch_add(value, Ordering::SeqCst);
                    atomic_rmw_release(&ctx, &self.sync, order);
                    prev
                } else {
                    self.inner.fetch_add(value, order)
                }
            }

            /// Subtracts `value`, returning the previous value (an RMW).
            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                if let Some(ctx) = current() {
                    ctx.op_point();
                    atomic_acquire(&ctx, &self.sync, order);
                    let prev = self.inner.fetch_sub(value, Ordering::SeqCst);
                    atomic_rmw_release(&ctx, &self.sync, order);
                    prev
                } else {
                    self.inner.fetch_sub(value, order)
                }
            }

            /// Component-wise maximum, returning the previous value (an RMW).
            pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                if let Some(ctx) = current() {
                    ctx.op_point();
                    atomic_acquire(&ctx, &self.sync, order);
                    let prev = self.inner.fetch_max(value, Ordering::SeqCst);
                    atomic_rmw_release(&ctx, &self.sync, order);
                    prev
                } else {
                    self.inner.fetch_max(value, order)
                }
            }
        }
    };
}

model_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicUsize`].
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
model_atomic_arith!(AtomicUsize, usize);

model_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU64`].
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);
model_atomic_arith!(AtomicU64, u64);

model_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU32`].
    AtomicU32,
    std::sync::atomic::AtomicU32,
    u32
);
model_atomic_arith!(AtomicU32, u32);

model_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU8`].
    AtomicU8,
    std::sync::atomic::AtomicU8,
    u8
);
model_atomic_arith!(AtomicU8, u8);

model_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicBool`].
    AtomicBool,
    std::sync::atomic::AtomicBool,
    bool
);

impl AtomicBool {
    /// Logical-or, returning the previous value (an RMW).
    pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
        if let Some(ctx) = current() {
            ctx.op_point();
            atomic_acquire(&ctx, &self.sync, order);
            let prev = self.inner.fetch_or(value, Ordering::SeqCst);
            atomic_rmw_release(&ctx, &self.sync, order);
            prev
        } else {
            self.inner.fetch_or(value, order)
        }
    }

    /// Logical-and, returning the previous value (an RMW).
    pub fn fetch_and(&self, value: bool, order: Ordering) -> bool {
        if let Some(ctx) = current() {
            ctx.op_point();
            atomic_acquire(&ctx, &self.sync, order);
            let prev = self.inner.fetch_and(value, Ordering::SeqCst);
            atomic_rmw_release(&ctx, &self.sync, order);
            prev
        } else {
            self.inner.fetch_and(value, order)
        }
    }
}
