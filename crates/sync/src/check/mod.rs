//! `atm-check`: a deterministic concurrency model checker.
//!
//! The checker runs a *model* — a closure that spawns a handful of
//! [`thread`] model threads touching [`sync`] instrumented primitives —
//! many times, each time under a different thread interleaving, and reports
//! the first schedule that panics, deadlocks, races, or acquires locks in
//! cyclic order. Execution is loom/shuttle-style: real OS threads run one
//! at a time under a token passed by the scheduler, and the token can only
//! move at instrumented operations, so every explored interleaving is
//! reproducible from its recorded decision list.
//!
//! Two exploration strategies:
//!
//! * [`Checker::exhaustive`] — bounded-exhaustive DFS over scheduling
//!   decisions. For small models this proves every interleaving (the
//!   report says [`Report::complete`]); larger models explore up to the
//!   schedule budget.
//! * [`Checker::random`] — seeded PCT-style randomized exploration: each
//!   iteration assigns random priorities to threads and demotes the
//!   running thread's priority at a few random change points. Good at
//!   shaking out rare orderings in models too big to enumerate.
//!
//! ```
//! use atm_sync::check::{sync::AtomicUsize, thread, Checker};
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! let report = Checker::exhaustive().check(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = thread::spawn(move || n2.fetch_add(1, Ordering::SeqCst));
//!     n.fetch_add(1, Ordering::SeqCst);
//!     t.join();
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! report.assert_passed();
//! assert!(report.complete);
//! ```

pub mod clock;
mod exec;
pub mod sync;
pub mod thread;

use std::sync::Arc;

pub use exec::{Failure, FailureKind, MAX_THREADS};

use exec::{enter_model_thread, install_quiet_hook, Execution, Phase};

/// One recorded scheduling decision: at a point with `enabled` runnable
/// threads, position `chosen` (in ascending thread-id order) ran next.
/// Decision points with a single runnable thread are not recorded — there
/// is nothing to explore there.
#[derive(Debug, Clone, Copy)]
struct Decision {
    enabled: usize,
    chosen: usize,
}

/// How the checker explores the schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Bounded-exhaustive depth-first search over scheduling decisions.
    Exhaustive,
    /// Seeded PCT-style randomized exploration: `iterations` schedules,
    /// each with fresh random thread priorities and a few priority-change
    /// points.
    Random {
        /// Seed of the deterministic PRNG (same seed ⇒ same schedules).
        seed: u64,
        /// Number of randomized schedules to run.
        iterations: usize,
    },
}

/// Outcome of a [`Checker::check`] run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules: usize,
    /// `true` iff the exhaustive strategy proved *every* interleaving
    /// within budget (random exploration never sets this).
    pub complete: bool,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Whether no explored schedule failed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// Panics with a replayable description of the failing schedule, if
    /// any schedule failed.
    #[track_caller]
    pub fn assert_passed(&self) {
        if let Some(failure) = &self.failure {
            panic!(
                "atm-check found a failing schedule after exploring {} schedule(s):\n{failure}",
                self.schedules
            );
        }
    }

    /// The kind of the recorded failure, if any (convenience for tests).
    pub fn failure_kind(&self) -> Option<FailureKind> {
        self.failure.as_ref().map(|f| f.kind)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.failure {
            Some(failure) => write!(f, "FAILED after {} schedule(s): {failure}", self.schedules),
            None if self.complete => {
                write!(
                    f,
                    "passed: all {} schedule(s) explored exhaustively",
                    self.schedules
                )
            }
            None => write!(
                f,
                "passed: {} schedule(s) explored (bounded)",
                self.schedules
            ),
        }
    }
}

/// Deterministic splitmix64 PRNG (the checker must not depend on external
/// crates or on ambient randomness).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Configures and runs model explorations. See the [module docs](self) for
/// an overview and `CONCURRENCY.md` for the modelling guide.
#[derive(Debug, Clone)]
pub struct Checker {
    strategy: Strategy,
    max_schedules: usize,
    max_steps: u64,
}

impl Checker {
    /// A bounded-exhaustive DFS checker (default budget: 10 000 schedules,
    /// 20 000 instrumented steps per schedule).
    pub fn exhaustive() -> Self {
        Checker {
            strategy: Strategy::Exhaustive,
            max_schedules: 10_000,
            max_steps: 20_000,
        }
    }

    /// A seeded randomized (PCT-style) checker running `iterations`
    /// schedules.
    pub fn random(seed: u64, iterations: usize) -> Self {
        Checker {
            strategy: Strategy::Random { seed, iterations },
            max_schedules: iterations,
            max_steps: 20_000,
        }
    }

    /// Caps the number of schedules the exhaustive strategy may run.
    pub fn max_schedules(mut self, budget: usize) -> Self {
        self.max_schedules = budget;
        self
    }

    /// Caps instrumented operations per schedule (livelock guard).
    pub fn max_steps(mut self, budget: u64) -> Self {
        self.max_steps = budget;
        self
    }

    /// Explores `model` under the configured strategy and returns what was
    /// found. The model closure is re-run once per schedule, so it must
    /// build its entire world (including its threads) from scratch each
    /// call.
    pub fn check<F>(&self, model: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_quiet_hook();
        let model = Arc::new(model);
        match self.strategy {
            Strategy::Exhaustive => self.check_exhaustive(&model),
            Strategy::Random { seed, iterations } => self.check_random(&model, seed, iterations),
        }
    }

    /// Replays a single recorded schedule (from [`Failure::schedule`])
    /// against `model`; useful for debugging a failure under a debugger or
    /// with extra logging.
    pub fn replay<F>(&self, model: F, schedule: &[usize]) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_quiet_hook();
        let model = Arc::new(model);
        let (decisions, failure) = self.run_once(&model, schedule, &mut |_, _| 0);
        Report {
            schedules: 1,
            complete: false,
            failure: failure.map(|f| finish_failure(f, &decisions, 1)),
        }
    }

    fn check_exhaustive<F>(&self, model: &Arc<F>) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        loop {
            let (decisions, failure) = self.run_once(model, &prefix, &mut |_, _| 0);
            schedules += 1;
            if let Some(failure) = failure {
                return Report {
                    schedules,
                    complete: false,
                    failure: Some(finish_failure(failure, &decisions, schedules)),
                };
            }
            // Backtrack to the deepest decision with an untried alternative.
            let mut stack = decisions;
            while let Some(last) = stack.last() {
                if last.chosen + 1 < last.enabled {
                    break;
                }
                stack.pop();
            }
            if stack.is_empty() {
                return Report {
                    schedules,
                    complete: true,
                    failure: None,
                };
            }
            if schedules >= self.max_schedules {
                return Report {
                    schedules,
                    complete: false,
                    failure: None,
                };
            }
            prefix = stack.iter().map(|d| d.chosen).collect();
            *prefix.last_mut().expect("non-empty") += 1;
        }
    }

    fn check_random<F>(&self, model: &Arc<F>, seed: u64, iterations: usize) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let mut schedules = 0usize;
        for i in 0..iterations {
            let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
            let mut priorities = [0u64; MAX_THREADS];
            for p in priorities.iter_mut() {
                // Keep random priorities high so demotions always rank below.
                *p = (rng.next() | 1) << 16;
            }
            let mut demotions = 0u64;
            let mut change_budget = 3u32;
            let mut last: Option<usize> = None;
            let mut policy = move |_idx: usize, enabled: &[usize]| -> usize {
                if change_budget > 0 && rng.next().is_multiple_of(8) {
                    if let Some(t) = last {
                        demotions += 1;
                        priorities[t] = demotions; // below every initial priority
                        change_budget -= 1;
                    }
                }
                let t = enabled
                    .iter()
                    .copied()
                    .max_by_key(|&t| priorities[t])
                    .expect("enabled set is non-empty");
                last = Some(t);
                enabled.iter().position(|&e| e == t).expect("t ∈ enabled")
            };
            let (decisions, failure) = self.run_once(model, &[], &mut policy);
            schedules += 1;
            if let Some(failure) = failure {
                return Report {
                    schedules,
                    complete: false,
                    failure: Some(finish_failure(failure, &decisions, schedules)),
                };
            }
        }
        Report {
            schedules,
            complete: false,
            failure: None,
        }
    }

    /// Runs one schedule: decisions up to `prefix.len()` follow `prefix`,
    /// later ones ask `policy`. Returns the recorded decisions and the
    /// failure, if the schedule failed.
    fn run_once<F>(
        &self,
        model: &Arc<F>,
        prefix: &[usize],
        policy: &mut dyn FnMut(usize, &[usize]) -> usize,
    ) -> (Vec<Decision>, Option<Failure>)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let exec = Arc::new(Execution::new(self.max_steps));
        let root = exec.register_thread(None);
        debug_assert_eq!(root, 0);
        {
            let texec = Arc::clone(&exec);
            let tmodel = Arc::clone(model);
            std::thread::Builder::new()
                .name("atm-check-0".to_string())
                .spawn(move || enter_model_thread(texec, 0, move || (tmodel)()))
                .expect("failed to spawn model root thread");
        }

        let mut decisions: Vec<Decision> = Vec::new();
        let mut multi = 0usize;
        loop {
            let mut ctl = exec.ctl.lock();
            while ctl.granted.is_some() {
                exec.cv.wait(&mut ctl);
            }
            if ctl.cancelled || ctl.failure.is_some() {
                ctl.cancelled = true;
                exec.cv.notify_all();
                break;
            }
            let mut enabled: Vec<usize> = ctl
                .phases
                .iter()
                .enumerate()
                .filter_map(|(i, p)| (*p == Phase::Ready).then_some(i))
                .collect();
            if enabled.is_empty() {
                // Only yielded threads left: let the spinners run again.
                for i in 0..ctl.phases.len() {
                    if ctl.phases[i] == Phase::Yielded {
                        ctl.phases[i] = Phase::Ready;
                        enabled.push(i);
                    }
                }
            }
            if enabled.is_empty() {
                if ctl.phases.iter().all(|p| *p == Phase::Finished) {
                    break;
                }
                let blocked: Vec<String> = ctl
                    .phases
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| match p {
                        Phase::Blocked(on) => Some(format!("thread {i} blocked on {on:?}")),
                        _ => None,
                    })
                    .collect();
                ctl.failure = Some(Failure {
                    kind: FailureKind::Deadlock,
                    message: format!("no runnable threads: {}", blocked.join("; ")),
                    schedule: Vec::new(),
                    schedule_index: 0,
                });
                ctl.cancelled = true;
                exec.cv.notify_all();
                break;
            }
            let pos = if enabled.len() == 1 {
                0
            } else {
                let p = if multi < prefix.len() {
                    prefix[multi].min(enabled.len() - 1)
                } else {
                    policy(multi, &enabled).min(enabled.len() - 1)
                };
                decisions.push(Decision {
                    enabled: enabled.len(),
                    chosen: p,
                });
                multi += 1;
                p
            };
            let chosen = enabled[pos];
            ctl.phases[chosen] = Phase::Running;
            ctl.granted = Some(chosen);
            exec.cv.notify_all();
        }

        // Wind down: wait for every real OS thread to exit before the next
        // schedule reuses the process.
        let mut ctl = exec.ctl.lock();
        while ctl.live_real > 0 {
            exec.cv.wait(&mut ctl);
        }
        let failure = ctl.failure.take();
        (decisions, failure)
    }
}

fn finish_failure(mut failure: Failure, decisions: &[Decision], schedule_index: usize) -> Failure {
    failure.schedule = decisions.iter().map(|d| d.chosen).collect();
    failure.schedule_index = schedule_index;
    failure
}

#[cfg(test)]
mod tests {
    use super::sync::{AtomicUsize, Condvar, Data, Event, Mutex};
    use super::{thread, Checker, FailureKind};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn trivial_single_thread_model_is_complete_in_one_schedule() {
        let report = Checker::exhaustive().check(|| {
            let m = Mutex::new(1);
            *m.lock() += 1;
            assert_eq!(*m.lock(), 2);
        });
        report.assert_passed();
        assert!(report.complete);
        assert_eq!(report.schedules, 1);
    }

    #[test]
    fn two_independent_threads_enumerate_both_orders() {
        let report = Checker::exhaustive().check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || a2.store(1, Ordering::SeqCst));
            a.load(Ordering::SeqCst); // either 0 or 1 depending on order
            t.join();
            assert_eq!(a.load(Ordering::SeqCst), 1);
        });
        report.assert_passed();
        assert!(report.complete);
        assert!(
            report.schedules >= 2,
            "expected ≥ 2 schedules, got {}",
            report.schedules
        );
    }

    #[test]
    fn mutex_protected_counter_passes_exhaustively() {
        let report = Checker::exhaustive().check(|| {
            let n = Arc::new(Mutex::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || *n.lock() += 1)
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*n.lock(), 2);
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn unsynchronised_data_race_is_found() {
        let report = Checker::exhaustive().check(|| {
            let d = Arc::new(Data::new(0u32));
            let d2 = Arc::clone(&d);
            let t = thread::spawn(move || d2.set(1));
            let _ = d.get(); // no happens-before with the child's write
            t.join();
        });
        assert_eq!(report.failure_kind(), Some(FailureKind::DataRace));
    }

    #[test]
    fn release_acquire_publication_is_race_free() {
        let report = Checker::exhaustive().check(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            let data = Arc::new(Data::new(0u32));
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = thread::spawn(move || {
                d2.set(42);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.get(), 42);
            }
            t.join();
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn relaxed_publication_is_flagged_as_a_race() {
        let report = Checker::exhaustive().check(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            let data = Arc::new(Data::new(0u32));
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = thread::spawn(move || {
                d2.set(42);
                f2.store(1, Ordering::Relaxed); // too weak: severs the clock
            });
            if flag.load(Ordering::Acquire) == 1 {
                let _ = data.get();
            }
            t.join();
        });
        assert_eq!(report.failure_kind(), Some(FailureKind::DataRace));
    }

    #[test]
    fn ab_ba_lock_order_is_flagged() {
        let report = Checker::exhaustive().check(|| {
            let a = Arc::new(Mutex::new(0));
            let b = Arc::new(Mutex::new(0));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_ga, _gb));
            t.join();
        });
        assert!(
            matches!(
                report.failure_kind(),
                Some(FailureKind::Deadlock | FailureKind::LockOrderCycle)
            ),
            "expected deadlock or lock-order cycle, got {:?}",
            report.failure
        );
    }

    #[test]
    fn guarded_condvar_handshake_passes_exhaustively() {
        // The flag is written under the lock and checked under the same
        // lock hold that the wait atomically releases, so the notify can
        // never be lost: every interleaving must complete.
        let report = Checker::exhaustive().check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (lock, cv) = &*p2;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
                assert!(*ready);
            });
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
            t.join();
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn event_signal_reset_race_is_the_sticky_flag_test() {
        // Event is sticky: signal before wait must satisfy the wait in
        // every schedule.
        let report = Checker::exhaustive().check(|| {
            let e = Arc::new(Event::new());
            let e2 = Arc::clone(&e);
            let t = thread::spawn(move || e2.signal());
            e.wait();
            t.join();
        });
        report.assert_passed();
        assert!(report.complete);
    }

    #[test]
    fn actual_deadlock_is_reported_with_blocked_threads() {
        let report = Checker::exhaustive().check(|| {
            let e = Arc::new(Event::new());
            e.wait(); // nobody will ever signal
        });
        assert_eq!(report.failure_kind(), Some(FailureKind::Deadlock));
        let failure = report.failure.unwrap();
        assert!(
            failure.message.contains("blocked"),
            "message: {}",
            failure.message
        );
    }

    #[test]
    fn random_strategy_is_deterministic_per_seed() {
        let model = || {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join();
            assert_eq!(n.load(Ordering::SeqCst), 2);
        };
        let a = Checker::random(7, 20).check(model);
        let b = Checker::random(7, 20).check(model);
        a.assert_passed();
        b.assert_passed();
        assert_eq!(a.schedules, b.schedules);
    }

    #[test]
    fn random_strategy_finds_a_seeded_assertion_failure() {
        // The assertion only fails when the child runs between the two
        // parent operations; PCT must find it within the iteration budget.
        let report = Checker::random(1, 200).check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || n2.store(1, Ordering::SeqCst));
            let before = n.load(Ordering::SeqCst);
            let after = n.load(Ordering::SeqCst);
            t.join();
            assert_eq!(before, after, "child interleaved between the loads");
        });
        assert_eq!(report.failure_kind(), Some(FailureKind::Panic));
        assert!(!report.failure.unwrap().schedule.is_empty());
    }

    #[test]
    fn replay_reproduces_a_recorded_failure() {
        let model = || {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || n2.store(1, Ordering::SeqCst));
            assert_eq!(n.load(Ordering::SeqCst), 0, "child ran first");
            t.join();
        };
        let checker = Checker::exhaustive();
        let report = checker.check(model);
        let failure = report
            .failure
            .expect("exhaustive search finds the failing order");
        let replayed = checker.replay(model, &failure.schedule);
        assert_eq!(replayed.failure_kind(), Some(FailureKind::Panic));
    }
}
