//! Spawning and joining model threads.
//!
//! Model closures create concurrency with [`spawn`], which mirrors
//! `std::thread::spawn` but registers the child with the model scheduler:
//! the child becomes schedulable at the next decision point, runs only when
//! granted the token, and propagates its vector clock to whoever joins it
//! (so everything the child did happens-before the join's return).
//!
//! [`spawn`] may only be called from inside a model (a closure being run by
//! [`crate::check::Checker`]); production code keeps using real
//! `std::thread` — the checker models *protocols*, not thread pools.

use std::sync::Arc;

use super::exec::{current, enter_model_thread, BlockedOn, Cancelled, Phase};
use crate::raw;

/// Handle to a spawned model thread; join it to recover the closure's
/// return value.
pub struct JoinHandle<T> {
    child: usize,
    result: Arc<raw::Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (in the model) until the child finishes and returns its
    /// result. A child panic aborts the whole execution and is reported by
    /// the checker, so `join` only returns for cleanly-finished children.
    pub fn join(self) -> T {
        let ctx = current().expect("JoinHandle::join called outside a model execution");
        ctx.op_point();
        let finished = {
            let ctl = ctx.exec.ctl.lock();
            ctl.phases[self.child] == Phase::Finished
        };
        if !finished {
            ctx.block_on(BlockedOn::Join(self.child));
        } else {
            // Child already finished: still join its final clock.
            let mut ctl = ctx.exec.ctl.lock();
            let child_clock = ctl.clocks[self.child].clone();
            let me = ctx.index;
            ctl.clocks[me].join(&child_clock);
        }
        match self.result.lock().take() {
            Some(value) => value,
            // The child unwound (panic or cancellation): this execution is
            // being torn down, so unwind the joiner too.
            None => std::panic::panic_any(Cancelled),
        }
    }

    /// The child's model thread index (0 is the root closure).
    pub fn thread_index(&self) -> usize {
        self.child
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("child", &self.child)
            .finish()
    }
}

/// Cedes the processor. Inside a model this parks the caller until no other
/// thread is runnable — the correct encoding of a spin-retry loop (a model
/// that spins without yielding exhausts the checker's step budget).
/// Outside a model it is a plain `std::thread::yield_now`.
pub fn yield_now() {
    match current() {
        Some(ctx) => ctx.yield_now(),
        None => std::thread::yield_now(),
    }
}

/// Spawns a model thread running `f`. Must be called from inside a model
/// execution; the spawn itself is a scheduling point, so the checker
/// explores both "child runs first" and "parent continues" orders.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let ctx = current().expect("check::thread::spawn called outside a model execution");
    let at_limit = ctx.exec.ctl.lock().phases.len() >= super::exec::MAX_THREADS;
    if at_limit {
        ctx.fail(
            super::exec::FailureKind::TooManyThreads,
            format!(
                "model tried to exceed the {} model-thread limit",
                super::exec::MAX_THREADS
            ),
        );
    }
    let child = ctx.exec.register_thread(Some(ctx.index));
    let result = Arc::new(raw::Mutex::new(None));
    let result_slot = Arc::clone(&result);
    let exec = Arc::clone(&ctx.exec);
    std::thread::Builder::new()
        .name(format!("atm-check-{child}"))
        .spawn(move || {
            enter_model_thread(Arc::clone(&exec), child, move || {
                let value = f();
                *result_slot.lock() = Some(value);
            });
        })
        .expect("failed to spawn model thread");
    // Make the new child visible as a scheduling alternative immediately.
    ctx.op_point();
    JoinHandle { child, result }
}
