//! One model execution: real OS threads driven one-at-a-time by a token.
//!
//! The checker runs the model closure on a dedicated "model thread 0"; model
//! threads spawned via [`crate::check::thread::spawn`] register themselves
//! here. At every instrumented operation the running thread *yields*: it
//! hands the token back to the scheduler (on the checker's thread), which
//! records a scheduling decision and grants the token to one runnable
//! thread. Because threads only lose the token at instrumented points, any
//! uninstrumented work between two points executes atomically with respect
//! to the model — exactly the loom/shuttle execution model.
//!
//! Cancellation (after a failure, or when winding down a deadlocked
//! execution) unwinds every parked model thread with a private panic
//! payload ([`Cancelled`]) that the thread wrapper swallows.

use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use super::clock::VClock;
use crate::raw;

/// Upper bound on model threads per execution (keeps PCT priority tables and
/// schedule encodings small; models are meant to be tiny).
pub const MAX_THREADS: usize = 16;

/// What a blocked model thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockedOn {
    /// A model mutex or rwlock, by resource id.
    Lock(u64),
    /// A model condition variable, by resource id.
    Condvar(u64),
    /// Another model thread's termination.
    Join(usize),
}

/// Lifecycle of one model thread within an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Eligible to be granted the token.
    Ready,
    /// Voluntarily ceded the processor ([`crate::check::thread::yield_now`]):
    /// schedulable again only once no `Ready` thread exists, which lets
    /// spin-retry loops make progress without livelocking the explorer.
    Yielded,
    /// Currently holds the token.
    Running,
    /// Waiting on a resource; not schedulable until unblocked.
    Blocked(BlockedOn),
    /// The thread body returned (or unwound).
    Finished,
}

/// Why an explored execution failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure in the model, or a bug
    /// reproduced in production code driven by the model).
    Panic,
    /// No thread was runnable but some were blocked: an actual deadlock in
    /// this schedule.
    Deadlock,
    /// Two conflicting plain accesses to a [`crate::check::sync::Data`]
    /// cell were not ordered by happens-before.
    DataRace,
    /// Two locks were acquired in cyclic order across the execution — a
    /// potential deadlock even if this schedule completed.
    LockOrderCycle,
    /// One execution exceeded the per-schedule step budget (almost always a
    /// model that livelocks, e.g. a spin loop the scheduler keeps picking).
    StepBudget,
    /// The model spawned more than [`MAX_THREADS`] threads.
    TooManyThreads,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::Panic => "panic",
            FailureKind::Deadlock => "deadlock",
            FailureKind::DataRace => "data race",
            FailureKind::LockOrderCycle => "lock-order cycle",
            FailureKind::StepBudget => "step budget exhausted",
            FailureKind::TooManyThreads => "too many model threads",
        };
        f.write_str(s)
    }
}

/// A failing schedule found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Human-readable description (panic message, race location, ...).
    pub message: String,
    /// The scheduling decisions of the failing execution: for each decision
    /// point with more than one runnable thread, the position chosen within
    /// the ascending list of runnable thread ids. Replayable via
    /// [`crate::check::Checker::replay`].
    pub schedule: Vec<usize>,
    /// How many schedules had been explored when this one failed (1-based).
    pub schedule_index: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at schedule #{}: {}\n  failing schedule (decision positions): {:?}",
            self.kind, self.schedule_index, self.message, self.schedule
        )
    }
}

/// Panic payload used to unwind model threads when an execution is torn
/// down; never reported as a model failure.
pub(crate) struct Cancelled;

pub(crate) struct Control {
    pub phases: Vec<Phase>,
    /// Which thread currently holds the token (`None` while the scheduler
    /// is choosing).
    pub granted: Option<usize>,
    pub clocks: Vec<VClock>,
    /// Lock ids currently held, per thread (for lock-order edges).
    pub held: Vec<Vec<u64>>,
    /// Acquired-while-holding edges `(held, acquired)` seen this execution.
    pub lock_edges: Vec<(u64, u64)>,
    /// Allocator for model resource ids (locks, condvars).
    pub next_resource: u64,
    /// Instrumented operations executed this execution.
    pub steps: u64,
    pub failure: Option<Failure>,
    pub cancelled: bool,
    /// Real OS threads that have registered and not yet exited.
    pub live_real: usize,
}

pub(crate) struct Execution {
    pub ctl: raw::Mutex<Control>,
    pub cv: raw::Condvar,
    pub max_steps: u64,
}

impl Execution {
    pub fn new(max_steps: u64) -> Self {
        Execution {
            ctl: raw::Mutex::new(Control {
                phases: Vec::new(),
                granted: None,
                clocks: Vec::new(),
                held: Vec::new(),
                lock_edges: Vec::new(),
                next_resource: 0,
                steps: 0,
                failure: None,
                cancelled: false,
                live_real: 0,
            }),
            cv: raw::Condvar::new(),
            max_steps,
        }
    }

    /// Registers a model thread and returns its index. The first
    /// registration (the root closure) happens before any thread runs;
    /// later ones happen from inside `check::thread::spawn` while the
    /// parent holds the token.
    pub fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut ctl = self.ctl.lock();
        let index = ctl.phases.len();
        let mut clock = match parent {
            Some(p) => {
                ctl.clocks[p].tick(p);
                ctl.clocks[p].clone()
            }
            None => VClock::new(),
        };
        clock.tick(index);
        ctl.phases.push(Phase::Ready);
        ctl.clocks.push(clock);
        ctl.held.push(Vec::new());
        ctl.live_real += 1;
        index
    }
}

thread_local! {
    static CURRENT: RefCell<Option<ExecCtx>> = const { RefCell::new(None) };
}

/// Handle a model thread keeps to the execution it belongs to.
#[derive(Clone)]
pub(crate) struct ExecCtx {
    pub exec: Arc<Execution>,
    pub index: usize,
}

/// The calling thread's model context, if it is a model thread.
pub(crate) fn current() -> Option<ExecCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

impl ExecCtx {
    fn wait_for_grant(&self, mut ctl: raw::MutexGuard<'_, Control>) {
        loop {
            if ctl.cancelled {
                drop(ctl);
                panic::panic_any(Cancelled);
            }
            if ctl.granted == Some(self.index) {
                return;
            }
            self.exec.cv.wait(&mut ctl);
        }
    }

    /// Scheduling point before every instrumented operation: hand the token
    /// back and wait to be granted it again.
    pub fn op_point(&self) {
        let mut ctl = self.exec.ctl.lock();
        ctl.steps += 1;
        if ctl.steps > self.exec.max_steps {
            let steps = ctl.steps;
            drop(ctl);
            self.fail(
                FailureKind::StepBudget,
                format!(
                    "execution exceeded {steps} instrumented steps (livelock or runaway loop?)"
                ),
            );
        }
        ctl.phases[self.index] = Phase::Ready;
        ctl.granted = None;
        self.exec.cv.notify_all();
        self.wait_for_grant(ctl);
    }

    /// A cooperative yield: the caller becomes schedulable again only when
    /// no other thread is `Ready` (the model analogue of
    /// `std::thread::yield_now` in a spin-retry loop).
    pub fn yield_now(&self) {
        let mut ctl = self.exec.ctl.lock();
        ctl.steps += 1;
        if ctl.steps > self.exec.max_steps {
            let steps = ctl.steps;
            drop(ctl);
            self.fail(
                FailureKind::StepBudget,
                format!(
                    "execution exceeded {steps} instrumented steps (livelock or runaway loop?)"
                ),
            );
        }
        ctl.phases[self.index] = Phase::Yielded;
        ctl.granted = None;
        self.exec.cv.notify_all();
        self.wait_for_grant(ctl);
    }

    /// Blocks the calling thread on `on` and yields; returns once the
    /// scheduler grants the token again (after some other thread unblocked
    /// it).
    pub fn block_on(&self, on: BlockedOn) {
        let mut ctl = self.exec.ctl.lock();
        ctl.phases[self.index] = Phase::Blocked(on);
        ctl.granted = None;
        self.exec.cv.notify_all();
        self.wait_for_grant(ctl);
    }

    /// Moves every thread blocked on a resource matching `pred` back to
    /// `Ready`. Called by the running thread while it holds the token.
    pub fn unblock_where(&self, pred: impl Fn(BlockedOn) -> bool) {
        let mut ctl = self.exec.ctl.lock();
        for t in 0..ctl.phases.len() {
            if let Phase::Blocked(on) = ctl.phases[t] {
                if pred(on) {
                    ctl.phases[t] = Phase::Ready;
                }
            }
        }
    }

    /// Moves thread `who` back to `Ready` if it is blocked on exactly `on`
    /// (targeted wakeup for `Condvar::notify_one`).
    pub fn unblock_thread(&self, who: usize, on: BlockedOn) {
        let mut ctl = self.exec.ctl.lock();
        if ctl.phases[who] == Phase::Blocked(on) {
            ctl.phases[who] = Phase::Ready;
        }
    }

    /// Records a failure (first one wins), cancels the execution and
    /// unwinds the calling thread.
    pub fn fail(&self, kind: FailureKind, message: String) -> ! {
        let mut ctl = self.exec.ctl.lock();
        if ctl.failure.is_none() {
            ctl.failure = Some(Failure {
                kind,
                message,
                schedule: Vec::new(),
                schedule_index: 0,
            });
        }
        ctl.cancelled = true;
        self.exec.cv.notify_all();
        drop(ctl);
        panic::panic_any(Cancelled);
    }

    /// Advances the caller's component of its own vector clock.
    pub fn tick(&self) {
        let mut ctl = self.exec.ctl.lock();
        let i = self.index;
        ctl.clocks[i].tick(i);
    }

    /// Snapshot of the caller's vector clock.
    pub fn clock(&self) -> VClock {
        self.exec.ctl.lock().clocks[self.index].clone()
    }

    /// Joins `other` (a release clock read from a location) into the
    /// caller's clock: an acquire edge.
    pub fn join_clock(&self, other: &VClock) {
        let mut ctl = self.exec.ctl.lock();
        let i = self.index;
        ctl.clocks[i].join(other);
    }

    /// Allocates a fresh model resource id (first-use order, deterministic
    /// per schedule).
    pub fn new_resource_id(&self) -> u64 {
        let mut ctl = self.exec.ctl.lock();
        let id = ctl.next_resource;
        ctl.next_resource += 1;
        id
    }

    /// Records `id` as acquired by the caller: adds lock-order edges from
    /// every lock already held and reports a [`FailureKind::LockOrderCycle`]
    /// if an edge closes a cycle.
    pub fn lock_acquired(&self, id: u64) {
        let mut ctl = self.exec.ctl.lock();
        let held = ctl.held[self.index].clone();
        for &h in &held {
            if h != id && !ctl.lock_edges.contains(&(h, id)) {
                ctl.lock_edges.push((h, id));
            }
        }
        ctl.held[self.index].push(id);
        // Cycle check: can we get from `id` back to any held lock?
        for &h in &held {
            if h != id && reaches(&ctl.lock_edges, id, h) {
                drop(ctl);
                self.fail(
                    FailureKind::LockOrderCycle,
                    format!(
                        "lock #{id} acquired while holding lock #{h}, but an execution also \
                         orders #{id} before #{h} (ids are in first-use order)"
                    ),
                );
            }
        }
    }

    /// Removes `id` from the caller's held set.
    pub fn lock_released(&self, id: u64) {
        let mut ctl = self.exec.ctl.lock();
        if let Some(pos) = ctl.held[self.index].iter().rposition(|&h| h == id) {
            ctl.held[self.index].remove(pos);
        }
    }
}

/// Is `to` reachable from `from` over directed `edges`?
fn reaches(edges: &[(u64, u64)], from: u64, to: u64) -> bool {
    let mut stack = vec![from];
    let mut seen = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        for &(a, b) in edges {
            if a == n && !seen.contains(&b) {
                seen.push(b);
                stack.push(b);
            }
        }
    }
    false
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// [`Cancelled`] unwinds and intentionally-explored model panics, so
/// negative tests don't spray backtraces; delegates everything else to the
/// previously-installed hook.
pub(crate) fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<Cancelled>() {
                return;
            }
            // Model threads report panics through the Failure machinery.
            if current().is_some() {
                return;
            }
            previous(info);
        }));
    });
}

/// Body wrapper for every real OS thread backing a model thread.
pub(crate) fn enter_model_thread(exec: Arc<Execution>, index: usize, body: impl FnOnce()) {
    let ctx = ExecCtx {
        exec: Arc::clone(&exec),
        index,
    };
    CURRENT.with(|c| *c.borrow_mut() = Some(ctx.clone()));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        // Wait for the scheduler's first grant before touching anything.
        let ctl = ctx.exec.ctl.lock();
        ctx.wait_for_grant(ctl);
        body();
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    let mut ctl = exec.ctl.lock();
    match result {
        Ok(()) => {}
        Err(payload) if payload.is::<Cancelled>() => {}
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "model thread panicked (non-string payload)".to_string());
            if ctl.failure.is_none() {
                ctl.failure = Some(Failure {
                    kind: FailureKind::Panic,
                    message: format!("model thread {index} panicked: {message}"),
                    schedule: Vec::new(),
                    schedule_index: 0,
                });
            }
            ctl.cancelled = true;
        }
    }
    ctl.phases[index] = Phase::Finished;
    // Propagate this thread's final clock to joiners and wake them.
    let final_clock = ctl.clocks[index].clone();
    for t in 0..ctl.phases.len() {
        if ctl.phases[t] == Phase::Blocked(BlockedOn::Join(index)) {
            ctl.clocks[t].join(&final_clock);
            ctl.phases[t] = Phase::Ready;
        }
    }
    if ctl.granted == Some(index) {
        ctl.granted = None;
    }
    ctl.live_real -= 1;
    exec.cv.notify_all();
}
