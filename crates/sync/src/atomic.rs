//! Atomic integer and boolean types, routed through the model checker.
//!
//! Production code imports atomics from here instead of `std::sync::atomic`
//! (the repository lint `cargo run -p xtask -- lint-sync` enforces this).
//! In a normal build these are *re-exports* of the `std` types — zero cost,
//! zero behavioural difference. Under `--cfg atm_check` the same names
//! resolve to the instrumented atomics in [`crate::check::sync`], whose
//! every operation is a scheduling point of the model checker and feeds the
//! vector-clock happens-before analysis.
//!
//! [`Ordering`] is always the `std` enum: the instrumented types interpret
//! it for happens-before tracking rather than defining their own.

#[cfg(not(atm_check))]
pub use std::sync::atomic::{
    fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
};

#[cfg(atm_check)]
pub use crate::check::sync::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize};
// `AtomicPtr` has no instrumented twin: pointer-width payloads cannot be
// modelled by the checker's value-tracking cells, and under the checker an
// uninstrumented operation is simply atomic (it is not a scheduling point).
// Protocols built on it get their scheduling points from the instrumented
// version/lock operations around it — see `CONCURRENCY.md` protocol 6.
#[cfg(atm_check)]
pub use std::sync::atomic::{fence, AtomicPtr, Ordering};
