//! Output snapshots: the task outputs stored in the Task History Table.
//!
//! The paper stores a *compressed* (hashed) representation of the task
//! inputs but has to keep the **full outputs** in the THT so that a future
//! task with a matching key can have its outputs provided without executing
//! (`copyOuts()` in Figure 1). An [`OutputSnapshot`] is one write access of a
//! completed task: which region, which element range, and a copy of the data.

use atm_runtime::{Access, DataStore, RegionData, RegionId};
use std::ops::Range;

/// A copy of one task output (one `Out`/`InOut` access) at task completion.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSnapshot {
    /// The region the output lives in.
    pub region: RegionId,
    /// Element range covered by the access.
    pub elem_range: Range<usize>,
    /// The copied data (exactly `elem_range.len()` elements).
    pub data: RegionData,
}

impl OutputSnapshot {
    /// Captures the current contents of the output covered by `access`.
    ///
    /// # Panics
    /// Panics if `access` is not a write access.
    pub fn capture(store: &DataStore, access: &Access) -> Self {
        assert!(
            access.mode.is_write(),
            "output snapshots are only taken of write accesses"
        );
        let elem_range = elem_range_of(store, access);
        let region = store.read(access.region);
        let guard = region.lock();
        OutputSnapshot {
            region: access.region,
            elem_range: elem_range.clone(),
            data: guard.slice_elems(elem_range),
        }
    }

    /// Captures all write accesses of a task, in declaration order.
    pub fn capture_all(store: &DataStore, accesses: &[Access]) -> Vec<OutputSnapshot> {
        accesses
            .iter()
            .filter(|a| a.mode.is_write())
            .map(|a| Self::capture(store, a))
            .collect()
    }

    /// Writes the snapshot back into its own region/range. This is how a
    /// THT hit provides the outputs of the *same* blocks again.
    pub fn apply(&self, store: &DataStore) {
        let region = store.write(self.region);
        let mut guard = region.lock();
        guard.write_elems(self.elem_range.clone(), &self.data);
    }

    /// Writes the snapshot into *another* task's output access (same task
    /// type, so same shape). This is the `copyOuts()` used when the matching
    /// THT entry was produced by a task operating on different regions, and
    /// the postponed copy-out of the In-flight Key Table.
    ///
    /// # Panics
    /// Panics if the destination access covers a different number of elements.
    pub fn apply_to(&self, store: &DataStore, access: &Access) {
        assert!(
            access.mode.is_write(),
            "cannot copy outputs into a read-only access"
        );
        let dst_range = elem_range_of(store, access);
        assert_eq!(
            dst_range.len(),
            self.elem_range.len(),
            "output shape mismatch: snapshot has {} elements, destination access covers {}",
            self.elem_range.len(),
            dst_range.len()
        );
        let region = store.write(access.region);
        let mut guard = region.lock();
        guard.write_elems(dst_range, &self.data);
    }

    /// Size of the stored data in bytes (THT memory accounting, Table III).
    pub fn size_bytes(&self) -> usize {
        self.data.size_bytes()
    }

    /// The stored output as `f64` values (for the Chebyshev comparison of
    /// the Dynamic ATM training phase).
    pub fn as_f64_vec(&self) -> Vec<f64> {
        self.data.to_f64_vec()
    }
}

/// Applies a set of snapshots to the corresponding write accesses of another
/// task (pairing snapshots and write accesses in declaration order).
///
/// # Panics
/// Panics if the number of write accesses differs from the number of snapshots.
pub fn apply_snapshots_to(store: &DataStore, snapshots: &[OutputSnapshot], accesses: &[Access]) {
    let writes: Vec<&Access> = accesses.iter().filter(|a| a.mode.is_write()).collect();
    assert_eq!(
        writes.len(),
        snapshots.len(),
        "task declares {} outputs but the history entry holds {}",
        writes.len(),
        snapshots.len()
    );
    for (snapshot, access) in snapshots.iter().zip(writes) {
        snapshot.apply_to(store, access);
    }
}

/// Captures the current contents of a task's outputs as flat `f64` values
/// (concatenating all write accesses). Used as the "correct" side of the
/// training-phase Chebyshev comparison.
pub fn outputs_as_f64(store: &DataStore, accesses: &[Access]) -> Vec<f64> {
    let mut out = Vec::new();
    for access in accesses.iter().filter(|a| a.mode.is_write()) {
        let elem_range = elem_range_of(store, access);
        let region = store.read(access.region);
        let guard = region.lock();
        out.extend(guard.slice_elems(elem_range).to_f64_vec());
    }
    out
}

/// Element range covered by an access (whole region when unranged).
pub fn elem_range_of(store: &DataStore, access: &Access) -> Range<usize> {
    let width = access.elem.width();
    match &access.range {
        Some(r) => (r.start / width)..(r.end / width),
        None => {
            let region = store.read(access.region);
            let len = region.lock().len();
            0..len
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_and_apply_round_trip() {
        let store = DataStore::new();
        let r = store
            .register_typed("r", vec![1.0f32, 2.0, 3.0, 4.0])
            .unwrap();
        let access = Access::write(&r).with_range(4..12);
        let snap = OutputSnapshot::capture(&store, &access);
        assert_eq!(snap.elem_range, 1..3);
        assert_eq!(snap.data.as_f32(), &[2.0, 3.0]);
        assert_eq!(snap.size_bytes(), 8);

        // Clobber the region, then re-apply the snapshot.
        store
            .write(r)
            .lock()
            .as_f32_mut()
            .copy_from_slice(&[9.0; 4]);
        snap.apply(&store);
        assert_eq!(store.read(r).lock().as_f32(), &[9.0, 2.0, 3.0, 9.0]);
    }

    #[test]
    fn apply_to_copies_into_a_different_region() {
        let store = DataStore::new();
        let src = store.register_typed("src", vec![1.0f64, 2.0]).unwrap();
        let dst = store.register_zeros::<f64>("dst", 2).unwrap();
        let snap = OutputSnapshot::capture(&store, &Access::write(&src));
        snap.apply_to(&store, &Access::write(&dst));
        assert_eq!(store.read(dst).lock().as_f64(), &[1.0, 2.0]);
    }

    #[test]
    fn capture_all_and_apply_snapshots_to_pair_by_order() {
        let store = DataStore::new();
        let in_r = store.register_typed("in", vec![5.0f32]).unwrap();
        let out_a = store.register_typed("a", vec![1.0f32, 2.0]).unwrap();
        let out_b = store.register_typed("b", vec![7i32]).unwrap();
        let accesses = vec![
            Access::read(&in_r),
            Access::write(&out_a),
            Access::write(&out_b),
        ];
        let snaps = OutputSnapshot::capture_all(&store, &accesses);
        assert_eq!(snaps.len(), 2);

        let dst_a = store.register_zeros::<f32>("da", 2).unwrap();
        let dst_b = store.register_zeros::<i32>("db", 1).unwrap();
        let dst_accesses = vec![
            Access::read(&in_r),
            Access::write(&dst_a),
            Access::write(&dst_b),
        ];
        apply_snapshots_to(&store, &snaps, &dst_accesses);
        assert_eq!(store.read(dst_a).lock().as_f32(), &[1.0, 2.0]);
        assert_eq!(store.read(dst_b).lock().as_i32(), &[7]);
    }

    #[test]
    fn outputs_as_f64_concatenates_write_accesses() {
        let store = DataStore::new();
        let a = store.register_typed("a", vec![1.0f32, 2.0]).unwrap();
        let b = store.register_typed("b", vec![3i32]).unwrap();
        let accesses = vec![Access::write(&a), Access::read(&a), Access::read_write(&b)];
        assert_eq!(outputs_as_f64(&store, &accesses), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn apply_to_with_wrong_shape_panics() {
        let store = DataStore::new();
        let src = store.register_typed("src", vec![1.0f64, 2.0]).unwrap();
        let dst = store.register_zeros::<f64>("dst", 1).unwrap();
        let snap = OutputSnapshot::capture(&store, &Access::write(&src));
        snap.apply_to(&store, &Access::write(&dst));
    }

    #[test]
    #[should_panic(expected = "write accesses")]
    fn capturing_a_read_access_panics() {
        let store = DataStore::new();
        let r = store.register_typed("r", vec![1.0f32]).unwrap();
        let _ = OutputSnapshot::capture(&store, &Access::read(&r));
    }
}
