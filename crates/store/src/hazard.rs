//! Deferred reclamation for the store's lock-free read path.
//!
//! The seqlock buckets of [`crate::store::MemoStore`] publish each entry's
//! outputs as an `Arc` whose strong count has been transferred into a raw
//! pointer held in an `AtomicPtr` (CONCURRENCY.md, protocol 6). A reader that
//! has seqlock-validated a slot still needs one more guarantee before it may
//! touch that pointer's reference count: that a concurrent replacement has
//! not already dropped the last strong count and freed the allocation. That
//! guarantee is a **hazard pointer**:
//!
//! * Before validating, the reader publishes the pointer it intends to
//!   dereference in one of the registry's cache-padded [`HazardSlot`]s
//!   (`SeqCst` store), then re-reads the slot version (`SeqCst` load). If the
//!   version still matches, the publication is ordered *before* the writer's
//!   odd version bump in the sequentially consistent total order — so the
//!   writer's post-unpublish hazard scan is guaranteed to observe it.
//! * A writer that unpublishes a pointer calls [`HazardRegistry::retire`]:
//!   it scans every hazard slot (`SeqCst` loads); a protected pointer is
//!   parked in the limbo list *still holding its strong count* (so the
//!   allocation — and its address — stay alive, which also rules out ABA),
//!   an unprotected one is released immediately. Each retire also drains
//!   limbo entries whose protection has since disappeared.
//!
//! A pointer can never become protected *after* it has been unpublished:
//! readers only learn pointers from the slots themselves, and an unpublished
//! pointer is no longer in any slot. Protection of a limbo entry therefore
//! only ever disappears, and the list drains.
//!
//! This module is the **only** `unsafe` code in the crate: the raw-`Arc`
//! strong-count transfers (`Arc::into_raw` at publish time lives in
//! `store.rs`, every matching `increment_strong_count` / `from_raw` lives
//! here or in `Drop`/export paths that hold the bucket writer lock) and the
//! `Send` assertion on [`Retired`]. Everything else in the crate is safe
//! code over these primitives.

use crate::snapshot::OutputSnapshot;
use atm_sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use atm_sync::{thread_ordinal, Mutex};
use std::ptr;
use std::sync::Arc;

/// The payload type every hazard in this registry protects.
pub(crate) type Outputs = Vec<OutputSnapshot>;

/// Number of hazard slots per registry. Readers hash to a start slot by
/// thread ordinal, so with a handful of worker threads each claim is one
/// uncontended CAS on a thread-private cache line.
const SLOTS: usize = 64;

/// One cache-padded hazard slot: a claim flag plus the pointer the claiming
/// reader is about to dereference.
#[repr(align(128))]
#[derive(Debug, Default)]
struct HazardSlot {
    /// 0 = free, 1 = claimed by a reader.
    claimed: AtomicU64,
    /// The protected pointer (null = none published yet).
    protected: AtomicPtr<Outputs>,
}

/// A retired pointer parked in limbo: it still owns one strong count, so the
/// allocation stays alive (and its address cannot be recycled) until the
/// protecting reader moves on.
#[derive(Debug)]
struct Retired(*mut Outputs);

// SAFETY: `Retired` carries exactly one strong count of an
// `Arc<Vec<OutputSnapshot>>`, whose payload is `Send + Sync`; moving the
// raw pointer between threads is moving that (sendable) ownership.
unsafe impl Send for Retired {}

/// Per-store hazard-pointer registry.
///
/// Owned by the [`MemoStore`](crate::store::MemoStore) it serves: readers
/// borrow the store for the whole lookup, so by the time the store (and with
/// it this registry) is dropped, no hazard can still be published — which is
/// what makes [`HazardRegistry::drain_all`] sound.
#[derive(Debug)]
pub(crate) struct HazardRegistry {
    slots: Box<[HazardSlot]>,
    limbo: Mutex<Vec<Retired>>,
}

impl HazardRegistry {
    /// Creates an empty registry.
    pub(crate) fn new() -> Self {
        HazardRegistry {
            slots: (0..SLOTS).map(|_| HazardSlot::default()).collect(),
            limbo: Mutex::new(Vec::new()),
        }
    }

    /// Claims a hazard slot for the calling reader, scanning from the
    /// thread's hint slot. Returns `None` when every slot is claimed (more
    /// than [`SLOTS`] concurrent readers); the caller falls back to a locked
    /// read, which needs no hazard.
    pub(crate) fn claim(&self) -> Option<HazardGuard<'_>> {
        let start = thread_ordinal() % SLOTS;
        for i in 0..SLOTS {
            let slot = &self.slots[(start + i) % SLOTS];
            if slot
                .claimed
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Some(HazardGuard { slot });
            }
        }
        None
    }

    /// Retires a pointer a writer has just unpublished, transferring its one
    /// remaining slot-owned strong count to the registry. Released
    /// immediately unless a reader currently protects it, in which case it is
    /// parked in limbo; previously parked pointers whose protection has
    /// disappeared are released on the way.
    pub(crate) fn retire(&self, ptr: *mut Outputs) {
        debug_assert!(!ptr.is_null(), "retired a null pointer");
        let mut limbo = self.limbo.lock();
        limbo.push(Retired(ptr));
        limbo.retain(|r| {
            if self.is_protected(r.0) {
                true
            } else {
                // SAFETY: `r.0` owns exactly one strong count (transferred by
                // the retiring writer or parked by an earlier retire), and no
                // reader protects it: a validated reader published its hazard
                // before the writer's version bump (SC total order), so the
                // scan that parked the pointer saw it, and a reader clears
                // its hazard only after its own `increment_strong_count`
                // (release/acquire via the SeqCst hazard store/load).
                unsafe { drop(Arc::from_raw(r.0)) };
                false
            }
        });
    }

    /// True while any hazard slot publishes `ptr`.
    fn is_protected(&self, ptr: *mut Outputs) -> bool {
        self.slots
            .iter()
            .any(|s| ptr::eq(s.protected.load(Ordering::SeqCst), ptr))
    }

    /// Releases every parked pointer unconditionally.
    ///
    /// Sound only with exclusive access (`&mut`, i.e. store drop): no reader
    /// can borrow the store concurrently, so no hazard is published.
    pub(crate) fn drain_all(&mut self) {
        let mut limbo = self.limbo.lock();
        for r in limbo.drain(..) {
            // SAFETY: each parked pointer owns one strong count; exclusive
            // access means no reader protects it.
            unsafe { drop(Arc::from_raw(r.0)) };
        }
    }

    /// Number of pointers currently parked in limbo (diagnostics/tests).
    #[cfg(test)]
    pub(crate) fn limbo_len(&self) -> usize {
        self.limbo.lock().len()
    }
}

/// An exclusively claimed hazard slot. Dropping the guard clears the
/// published pointer and releases the slot.
#[derive(Debug)]
pub(crate) struct HazardGuard<'a> {
    slot: &'a HazardSlot,
}

impl HazardGuard<'_> {
    /// Publishes `ptr` as protected. Must happen *before* the validating
    /// version re-read (protocol 6 step R3).
    pub(crate) fn protect(&self, ptr: *mut Outputs) {
        self.slot.protected.store(ptr, Ordering::SeqCst);
    }
}

impl Drop for HazardGuard<'_> {
    fn drop(&mut self) {
        self.slot.protected.store(ptr::null_mut(), Ordering::SeqCst);
        self.slot.claimed.store(0, Ordering::Release);
    }
}

/// Clones the `Arc` behind a pointer that is protected (or otherwise pinned,
/// e.g. by the bucket writer lock).
///
/// # Safety
/// `ptr` must have come from `Arc::into_raw` and the caller must guarantee
/// the allocation's strong count cannot reach zero for the duration of the
/// call: either a published hazard validated against the slot's seqlock
/// version, or the bucket writer lock (which excludes the only code that
/// releases slot-owned counts).
pub(crate) unsafe fn clone_protected(ptr: *mut Outputs) -> Arc<Outputs> {
    // SAFETY: forwarded caller contract; increment-then-reconstruct leaves
    // the slot's own strong count in place.
    unsafe {
        Arc::increment_strong_count(ptr);
        Arc::from_raw(ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(values: Vec<OutputSnapshot>) -> (*mut Outputs, std::sync::Weak<Outputs>) {
        let arc = Arc::new(values);
        let weak = Arc::downgrade(&arc);
        (Arc::into_raw(arc) as *mut Outputs, weak)
    }

    #[test]
    fn unprotected_retire_frees_immediately() {
        let registry = HazardRegistry::new();
        let (ptr, weak) = raw(Vec::new());
        registry.retire(ptr);
        assert!(weak.upgrade().is_none(), "nothing protected the pointer");
        assert_eq!(registry.limbo_len(), 0);
    }

    #[test]
    fn protected_retire_parks_until_the_hazard_clears() {
        let registry = HazardRegistry::new();
        let (ptr, weak) = raw(Vec::new());
        let guard = registry.claim().unwrap();
        guard.protect(ptr);
        registry.retire(ptr);
        assert!(
            weak.upgrade().is_some(),
            "protected pointer must stay alive"
        );
        assert_eq!(registry.limbo_len(), 1);
        drop(guard);
        // The next retire drains the now-unprotected limbo entry.
        let (other, other_weak) = raw(Vec::new());
        registry.retire(other);
        assert!(weak.upgrade().is_none());
        assert!(other_weak.upgrade().is_none());
        assert_eq!(registry.limbo_len(), 0);
    }

    #[test]
    fn drain_all_releases_parked_pointers() {
        let mut registry = HazardRegistry::new();
        let (ptr, weak) = raw(Vec::new());
        let guard = registry.claim().unwrap();
        guard.protect(ptr);
        registry.retire(ptr);
        drop(guard);
        registry.drain_all();
        assert!(weak.upgrade().is_none());
    }

    #[test]
    fn claim_exhaustion_returns_none() {
        let registry = HazardRegistry::new();
        let guards: Vec<_> = (0..64).map(|_| registry.claim().unwrap()).collect();
        assert!(registry.claim().is_none(), "65th claim must fail over");
        drop(guards);
        assert!(registry.claim().is_some(), "released slots are reusable");
    }
}
