//! Eviction policies for the [`MemoStore`](crate::MemoStore).
//!
//! The paper's THT evicts first-in-first-out inside each bucket — the right
//! baseline for a benchmark harness, but at production scale the memo table
//! is a managed cache and *what* gets evicted is a policy decision. The
//! store therefore asks an [`EvictionPolicy`] to pick the victim whenever an
//! entry must go, both for the per-bucket associativity cap and for the
//! global byte budget. Three policies ship with the crate:
//!
//! * [`Fifo`] — evict the oldest entry (the paper-faithful default; with an
//!   unlimited budget this reproduces the THT of §III-A bit for bit);
//! * [`Lru`] — evict the least recently *hit* entry;
//! * [`CostAware`] — evict the entry with the lowest benefit density, where
//!   benefit is the measured kernel nanoseconds a hit saves and density is
//!   benefit per resident byte. Fed from the engine's per-type kernel
//!   timing, this keeps expensive-to-recompute, cheap-to-store entries
//!   under memory pressure.

/// Everything a policy may consider about one eviction candidate.
///
/// Sequence numbers come from the store's logical clock: every insertion and
/// every hit ticks it, so `inserted_seq` orders entries by age and
/// `last_used_seq` by recency of use (an entry that was never hit keeps its
/// insertion stamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Bytes the entry is charged against the budget.
    pub bytes: usize,
    /// Logical clock value at insertion.
    pub inserted_seq: u64,
    /// Logical clock value of the most recent hit (or insertion).
    pub last_used_seq: u64,
    /// Estimated kernel nanoseconds one hit on this entry saves.
    pub benefit_ns: u64,
}

impl Candidate {
    /// Benefit density: saved kernel nanoseconds per resident byte.
    pub fn benefit_per_byte(&self) -> f64 {
        self.benefit_ns as f64 / self.bytes.max(1) as f64
    }
}

/// Picks which entry to evict when the store must free space.
///
/// `victim` receives a non-empty candidate list and returns the index of the
/// entry to evict. Out-of-range indices are clamped by the store.
pub trait EvictionPolicy: Send + Sync + std::fmt::Debug {
    /// Short policy name used in reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Index of the candidate to evict. `candidates` is never empty.
    fn victim(&self, candidates: &[Candidate]) -> usize;

    /// Whether the policy reads [`Candidate::last_used_seq`]. When false
    /// (the default) the store skips the per-hit recency bookkeeping — an
    /// atomic clock tick plus a store on a shared cache line — keeping the
    /// paper-faithful FIFO lookup path as cheap as the original THT's.
    fn uses_recency(&self) -> bool {
        false
    }
}

/// Selects the candidate minimising `key(c)`; ties go to the oldest entry.
fn argmin_by<K: PartialOrd>(candidates: &[Candidate], key: impl Fn(&Candidate) -> K) -> usize {
    let mut best = 0usize;
    for (i, c) in candidates.iter().enumerate().skip(1) {
        let kb = key(&candidates[best]);
        let kc = key(c);
        if kc < kb || (kc == kb && c.inserted_seq < candidates[best].inserted_seq) {
            best = i;
        }
    }
    best
}

/// First-in-first-out: evict the entry inserted longest ago.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fifo;

impl EvictionPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn victim(&self, candidates: &[Candidate]) -> usize {
        argmin_by(candidates, |c| c.inserted_seq)
    }
}

/// Least-recently-used: evict the entry whose last hit is longest ago.
#[derive(Debug, Default, Clone, Copy)]
pub struct Lru;

impl EvictionPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn victim(&self, candidates: &[Candidate]) -> usize {
        argmin_by(candidates, |c| c.last_used_seq)
    }

    fn uses_recency(&self) -> bool {
        true
    }
}

/// Cost-aware: evict the entry with the lowest saved-nanoseconds-per-byte.
#[derive(Debug, Default, Clone, Copy)]
pub struct CostAware;

impl EvictionPolicy for CostAware {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn victim(&self, candidates: &[Candidate]) -> usize {
        argmin_by(candidates, |c| c.benefit_per_byte())
    }
}

/// The built-in policies, as a plain-data configuration value.
///
/// [`crate::StoreConfig`] (and the engine's `AtmConfig` above it) stay
/// `Copy`-able plain data; the store instantiates the boxed
/// [`EvictionPolicy`] from this tag at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// [`Fifo`] (the paper-faithful default).
    #[default]
    Fifo,
    /// [`Lru`].
    Lru,
    /// [`CostAware`].
    CostAware,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyKind::Fifo => Box::new(Fifo),
            PolicyKind::Lru => Box::new(Lru),
            PolicyKind::CostAware => Box::new(CostAware),
        }
    }

    /// Short name, matching [`EvictionPolicy::name`].
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo",
            PolicyKind::Lru => "lru",
            PolicyKind::CostAware => "cost-aware",
        }
    }

    /// All built-in policies (for sweeps in the evaluation harness).
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Fifo, PolicyKind::Lru, PolicyKind::CostAware];
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(bytes: usize, inserted: u64, used: u64, benefit: u64) -> Candidate {
        Candidate {
            bytes,
            inserted_seq: inserted,
            last_used_seq: used,
            benefit_ns: benefit,
        }
    }

    #[test]
    fn fifo_picks_the_oldest() {
        let c = [
            candidate(10, 5, 9, 100),
            candidate(10, 2, 8, 100),
            candidate(10, 7, 1, 100),
        ];
        assert_eq!(Fifo.victim(&c), 1);
    }

    #[test]
    fn lru_picks_the_least_recently_used() {
        let c = [
            candidate(10, 5, 9, 100),
            candidate(10, 2, 8, 100),
            candidate(10, 7, 1, 100),
        ];
        assert_eq!(Lru.victim(&c), 2);
    }

    #[test]
    fn cost_aware_picks_the_lowest_benefit_density() {
        let c = [
            candidate(10, 0, 0, 1_000),    // 100 ns/byte
            candidate(1_000, 1, 1, 1_000), // 1 ns/byte  <- victim
            candidate(10, 2, 2, 10_000),   // 1000 ns/byte
        ];
        assert_eq!(CostAware.victim(&c), 1);
    }

    #[test]
    fn ties_break_towards_the_oldest_entry() {
        let c = [candidate(10, 9, 3, 50), candidate(10, 1, 3, 50)];
        assert_eq!(Lru.victim(&c), 1);
        assert_eq!(CostAware.victim(&c), 1);
    }

    #[test]
    fn kinds_build_matching_policies() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.build().name(), kind.name());
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(PolicyKind::default(), PolicyKind::Fifo);
    }

    #[test]
    fn only_lru_needs_recency_bookkeeping() {
        assert!(!Fifo.uses_recency());
        assert!(Lru.uses_recency());
        assert!(!CostAware.uses_recency());
    }
}
