//! Versioned, checksummed binary snapshots of a [`MemoStore`].
//!
//! A run that starts with an empty memo table pays the full execution cost
//! of every task at least once; at production scale the table's contents are
//! the product, so they must survive the process. [`MemoStore::save_to`]
//! serialises every resident entry into a self-describing, dependency-free
//! binary file and [`MemoStore::load_from`] / [`MemoStore::absorb_from`]
//! rebuild them, letting a run *warm-start* from a previous run's table.
//!
//! ## Format (version 1, all integers little-endian)
//!
//! ```text
//! [0..8)   magic  b"ATMSTORE"
//! [8..12)  format version (u32)
//! [12..20) entry count (u64)
//! then per entry:
//!   task_type (u32)  hash (u64)  p_bits (u64)  producer (u64)
//!   benefit_ns (u64)  output count (u32)
//!   then per output:
//!     region (u32)  range_start (u64)  elem count (u64)  elem tag (u8)
//!     payload (elem count × elem width bytes, little-endian)
//! trailer:
//!   checksum (u64): FNV-1a 64 over every preceding byte
//! ```
//!
//! Decoding validates the magic, the version, every length against the
//! remaining buffer and finally the checksum; any mismatch is a
//! [`PersistError`], never a panic or a silently wrong table.
//!
//! Warm-start caveat: hash keys embed the task-type id and the key-seed, so
//! a snapshot is only meaningful to a run that registers its task types in
//! the same order and uses the same `key_seed` — the natural situation for
//! repeated runs of one application.

use crate::snapshot::OutputSnapshot;
use crate::store::{ExportedEntry, MemoStore, StoreConfig};
use atm_runtime::{ElemType, RegionData, RegionId, TaskId, TaskTypeId};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"ATMSTORE";
const VERSION: u32 = 1;

/// Error decoding or transferring a store snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// File could not be read or written.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file uses a format version this build does not understand.
    UnsupportedVersion(u32),
    /// The file ends before the declared contents.
    Truncated,
    /// The checksum over the contents does not match the trailer.
    ChecksumMismatch {
        /// Checksum recomputed over the file contents.
        computed: u64,
        /// Checksum stored in the trailer.
        stored: u64,
    },
    /// A structurally invalid field (bad element tag, impossible length…).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(err) => write!(f, "snapshot I/O error: {err}"),
            PersistError::BadMagic => write!(f, "not a memo-store snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            PersistError::Truncated => write!(f, "snapshot is truncated"),
            PersistError::ChecksumMismatch { computed, stored } => write!(
                f,
                "snapshot checksum mismatch (computed {computed:#018x}, stored {stored:#018x})"
            ),
            PersistError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(err: std::io::Error) -> Self {
        PersistError::Io(err)
    }
}

/// Incremental FNV-1a 64 state — tiny, dependency-free, and plenty for
/// integrity checking (this guards against corruption, not adversaries).
/// Feeding bytes in any chunking produces the same digest, which is what
/// lets [`MemoStore::save_to`] stream a checkpoint while computing the same
/// trailer as the in-memory encoder.
struct Fnv1a64(u64);

impl Fnv1a64 {
    fn new() -> Self {
        Fnv1a64(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// FNV-1a 64 over a byte slice.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut state = Fnv1a64::new();
    state.update(bytes);
    state.0
}

/// Writer adapter folding every written byte into a running FNV-1a
/// checksum, so the streamed and the in-memory serialisations produce
/// byte-identical snapshots.
struct ChecksumWriter<W: std::io::Write> {
    inner: W,
    hash: Fnv1a64,
}

impl<W: std::io::Write> ChecksumWriter<W> {
    fn new(inner: W) -> Self {
        ChecksumWriter {
            inner,
            hash: Fnv1a64::new(),
        }
    }

    fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }

    /// Appends the checksum trailer (not itself checksummed) and returns
    /// the underlying writer for flushing.
    fn finish(mut self) -> std::io::Result<W> {
        let checksum = self.hash.0;
        self.inner.write_all(&checksum.to_le_bytes())?;
        Ok(self.inner)
    }
}

fn elem_tag(elem: ElemType) -> u8 {
    match elem {
        ElemType::F32 => 0,
        ElemType::F64 => 1,
        ElemType::I32 => 2,
        ElemType::I64 => 3,
        ElemType::U8 => 4,
    }
}

fn elem_from_tag(tag: u8) -> Option<ElemType> {
    match tag {
        0 => Some(ElemType::F32),
        1 => Some(ElemType::F64),
        2 => Some(ElemType::I32),
        3 => Some(ElemType::I64),
        4 => Some(ElemType::U8),
        _ => None,
    }
}

fn decode_region_data(elem: ElemType, bytes: &[u8]) -> RegionData {
    fn chunks<const W: usize>(bytes: &[u8]) -> impl Iterator<Item = [u8; W]> + '_ {
        bytes.chunks_exact(W).map(|c| c.try_into().expect("exact"))
    }
    match elem {
        ElemType::F32 => RegionData::F32(chunks::<4>(bytes).map(f32::from_le_bytes).collect()),
        ElemType::F64 => RegionData::F64(chunks::<8>(bytes).map(f64::from_le_bytes).collect()),
        ElemType::I32 => RegionData::I32(chunks::<4>(bytes).map(i32::from_le_bytes).collect()),
        ElemType::I64 => RegionData::I64(chunks::<8>(bytes).map(i64::from_le_bytes).collect()),
        ElemType::U8 => RegionData::U8(bytes.to_vec()),
    }
}

/// Sequential reader with explicit truncation checks.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.at.checked_add(n).ok_or(PersistError::Truncated)?;
        if end > self.bytes.len() {
            return Err(PersistError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// Writes the version-1 snapshot body (everything but the checksum
/// trailer) through a checksumming writer. One output's payload is
/// materialised at a time, so a streamed checkpoint never holds the whole
/// table as bytes.
fn write_snapshot<W: std::io::Write>(
    w: &mut ChecksumWriter<W>,
    entries: &[ExportedEntry],
) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(entries.len() as u64).to_le_bytes())?;
    for entry in entries {
        w.write_all(&(entry.key.task_type.index() as u32).to_le_bytes())?;
        w.write_all(&entry.key.hash.to_le_bytes())?;
        w.write_all(&entry.key.p_bits.to_le_bytes())?;
        w.write_all(&(entry.producer.raw()).to_le_bytes())?;
        w.write_all(&entry.benefit_ns.to_le_bytes())?;
        w.write_all(&(entry.outputs.len() as u32).to_le_bytes())?;
        for snapshot in entry.outputs.iter() {
            w.write_all(&(snapshot.region.index() as u32).to_le_bytes())?;
            w.write_all(&(snapshot.elem_range.start as u64).to_le_bytes())?;
            w.write_all(&(snapshot.data.len() as u64).to_le_bytes())?;
            w.write_all(&[elem_tag(snapshot.data.elem_type())])?;
            w.write_all(&snapshot.data.to_bytes())?;
        }
    }
    Ok(())
}

/// Encodes entries into the version-1 snapshot byte layout.
fn encode_entries(entries: &[ExportedEntry]) -> Vec<u8> {
    let mut w = ChecksumWriter::new(Vec::new());
    write_snapshot(&mut w, entries).expect("writing to a Vec cannot fail");
    w.finish().expect("writing to a Vec cannot fail")
}

/// Decodes a version-1 snapshot, validating structure and checksum.
fn decode_entries(bytes: &[u8]) -> Result<Vec<ExportedEntry>, PersistError> {
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 {
        return Err(PersistError::Truncated);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    let computed = fnv1a64(body);
    if computed != stored {
        return Err(PersistError::ChecksumMismatch { computed, stored });
    }

    let mut r = Reader {
        bytes: body,
        at: MAGIC.len(),
    };
    let version = r.u32()?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let count = r.u64()?;
    let mut entries = Vec::new();
    for _ in 0..count {
        let task_type = TaskTypeId::from_raw(r.u32()?);
        let hash = r.u64()?;
        let p_bits = r.u64()?;
        let producer = TaskId::from_raw(r.u64()?);
        let benefit_ns = r.u64()?;
        let n_outputs = r.u32()?;
        let mut outputs = Vec::new();
        for _ in 0..n_outputs {
            let region = RegionId::from_raw(r.u32()?);
            let range_start = usize::try_from(r.u64()?)
                .map_err(|_| PersistError::Corrupt("output range start overflows usize"))?;
            let n_elems = usize::try_from(r.u64()?)
                .map_err(|_| PersistError::Corrupt("output length overflows usize"))?;
            let elem =
                elem_from_tag(r.u8()?).ok_or(PersistError::Corrupt("unknown element-type tag"))?;
            let payload_len = n_elems
                .checked_mul(elem.width())
                .ok_or(PersistError::Corrupt("output payload overflows usize"))?;
            let payload = r.take(payload_len)?;
            let range_end = range_start
                .checked_add(n_elems)
                .ok_or(PersistError::Corrupt("output range end overflows usize"))?;
            outputs.push(OutputSnapshot {
                region,
                elem_range: range_start..range_end,
                data: decode_region_data(elem, payload),
            });
        }
        entries.push(ExportedEntry {
            key: crate::EntryKey {
                task_type,
                hash,
                p_bits,
            },
            producer,
            benefit_ns,
            outputs: Arc::new(outputs),
        });
    }
    if r.at != body.len() {
        return Err(PersistError::Corrupt("trailing bytes after the last entry"));
    }
    Ok(entries)
}

impl MemoStore {
    /// Serialises every resident entry into the snapshot byte format.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        encode_entries(&self.export())
    }

    /// Writes the snapshot to `path` (see the module docs for the format).
    ///
    /// Checkpointing is safe under traffic: the snapshot point is
    /// [`MemoStore::export`], which clones each bucket's view (entry
    /// metadata plus `Arc`-shared outputs) under that bucket's read lock
    /// alone and releases it before moving on — no bucket lock is held
    /// while bytes are produced. The entries then *stream* through a
    /// buffered writer with an incremental checksum, so the process never
    /// materialises the whole table as a second byte buffer the way
    /// [`MemoStore::to_snapshot_bytes`] does. Inserts and evictions that
    /// land mid-export appear in the next checkpoint.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        use std::io::Write as _;
        let entries = self.export();
        let file = std::fs::File::create(path)?;
        let mut w = ChecksumWriter::new(std::io::BufWriter::new(file));
        write_snapshot(&mut w, &entries)?;
        w.finish()?.flush()?;
        Ok(())
    }

    /// Inserts every entry of an in-memory snapshot into this store, going
    /// through the normal admission/eviction path. Returns the number of
    /// entries admitted.
    ///
    /// Entries are inserted in **ascending benefit density** (saved kernel
    /// nanoseconds per charged byte), so under a tight byte budget the most
    /// valuable entries arrive last and survive every built-in policy:
    /// cost-aware eviction discards low-density entries by definition, and
    /// the age-based policies (FIFO, LRU) evict the oldest/stalest — which
    /// this ordering makes the least valuable. A warm start through a small
    /// budget therefore keeps the best entries deterministically instead of
    /// whatever the snapshot's file order happened to favour.
    pub fn absorb_snapshot_bytes(&self, bytes: &[u8]) -> Result<usize, PersistError> {
        let mut entries = decode_entries(bytes)?;
        let density = |e: &ExportedEntry| {
            e.benefit_ns as f64 / crate::store::entry_charge_bytes(&e.outputs).max(1) as f64
        };
        entries.sort_by(|a, b| {
            density(a)
                .partial_cmp(&density(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                // Deterministic tie-break: snapshot keys are unique.
                .then_with(|| {
                    (a.key.task_type, a.key.hash, a.key.p_bits).cmp(&(
                        b.key.task_type,
                        b.key.hash,
                        b.key.p_bits,
                    ))
                })
        });
        let mut admitted = 0usize;
        for entry in entries {
            let outcome = self.insert(entry.key, entry.producer, entry.outputs, entry.benefit_ns);
            if outcome.is_resident() {
                admitted += 1;
            }
        }
        Ok(admitted)
    }

    /// Reads a snapshot file and inserts its entries into this store.
    /// Returns the number of entries admitted.
    pub fn absorb_from(&self, path: impl AsRef<Path>) -> Result<usize, PersistError> {
        let bytes = std::fs::read(path)?;
        self.absorb_snapshot_bytes(&bytes)
    }

    /// Builds a fresh store with `config` warm-started from a snapshot file.
    pub fn load_from(
        path: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<MemoStore, PersistError> {
        let store = MemoStore::new(config);
        store.absorb_from(path)?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_runtime::{Access, AccessMode, DataStore};

    // The loop below spans all five element types, which the typed access
    // constructors cannot do generically; build the accesses literally.
    fn untyped_write(id: RegionId, elem: ElemType) -> Access {
        Access {
            region: id,
            range: None,
            mode: AccessMode::Out,
            elem,
        }
    }

    fn sample_store() -> (DataStore, MemoStore) {
        let data = DataStore::new();
        let store = MemoStore::new(StoreConfig::default());
        let regions: Vec<RegionData> = vec![
            RegionData::F32(vec![1.5, -2.5, 3.0]),
            RegionData::F64(vec![0.25; 8]),
            RegionData::I32(vec![7, -9]),
            RegionData::I64(vec![1 << 40]),
            RegionData::U8(vec![0xAB, 0xCD]),
        ];
        for (i, contents) in regions.into_iter().enumerate() {
            let elem = contents.elem_type();
            let id = data.try_register(format!("r{i}"), contents).unwrap();
            let snap = OutputSnapshot::capture(&data, &untyped_write(id, elem));
            store.insert(
                crate::EntryKey::new(TaskTypeId::from_raw(i as u32), 0x1000 + i as u64, 1.0),
                TaskId::from_raw(i as u64),
                Arc::new(vec![snap]),
                i as u64 * 100,
            );
        }
        (data, store)
    }

    #[test]
    fn snapshot_round_trips_every_entry() {
        let (_data, store) = sample_store();
        let bytes = store.to_snapshot_bytes();
        let loaded = MemoStore::new(StoreConfig::default());
        let admitted = loaded.absorb_snapshot_bytes(&bytes).unwrap();
        assert_eq!(admitted, store.len());
        for entry in store.export() {
            let hit = loaded
                .lookup(&entry.key)
                .expect("every saved key must hit after a reload");
            assert_eq!(hit.producer, entry.producer);
            assert_eq!(hit.benefit_ns, entry.benefit_ns);
            assert_eq!(*hit.outputs, *entry.outputs);
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let (_data, store) = sample_store();
        let mut bytes = store.to_snapshot_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode_entries(&bytes),
            Err(PersistError::BadMagic)
        ));

        let mut versioned = store.to_snapshot_bytes();
        versioned[8] = 99; // version field
                           // Recompute the checksum so the version check (not the checksum)
                           // fires.
        let body_len = versioned.len() - 8;
        let checksum = fnv1a64(&versioned[..body_len]);
        versioned[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode_entries(&versioned),
            Err(PersistError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_rejected() {
        let (_data, store) = sample_store();
        let bytes = store.to_snapshot_bytes();
        for cut in [0, 4, MAGIC.len() + 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_entries(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn save_and_load_via_the_filesystem() {
        let (_data, store) = sample_store();
        let path = std::env::temp_dir().join(format!("atm-store-test-{}.bin", std::process::id()));
        store.save_to(&path).unwrap();
        let loaded = MemoStore::load_from(&path, StoreConfig::default()).unwrap();
        assert_eq!(loaded.len(), store.len());
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            MemoStore::load_from(&path, StoreConfig::default()),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn streamed_checkpoint_matches_the_in_memory_encoding_byte_for_byte() {
        let (_data, store) = sample_store();
        let path =
            std::env::temp_dir().join(format!("atm-store-stream-test-{}.bin", std::process::id()));
        store.save_to(&path).unwrap();
        let streamed = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(streamed, store.to_snapshot_bytes());
    }

    #[test]
    fn checkpoint_under_concurrent_inserts_stays_consistent() {
        // A writer thread keeps inserting while the main thread checkpoints
        // repeatedly. Every checkpoint must load back cleanly (structure and
        // checksum intact) with a plausible entry count — entries that land
        // mid-export simply appear in a later checkpoint.
        let data = DataStore::new();
        let store = MemoStore::new(StoreConfig::default());
        let r = data.register_zeros::<f32>("traffic", 4).unwrap();
        let snap = Arc::new(vec![OutputSnapshot::capture(&data, &Access::write(&r))]);
        let path =
            std::env::temp_dir().join(format!("atm-store-traffic-test-{}.bin", std::process::id()));
        let total = 400usize;
        std::thread::scope(|scope| {
            let store = &store;
            let writer = scope.spawn(move || {
                for i in 0..total {
                    store.insert(
                        crate::EntryKey::new(TaskTypeId::from_raw(0), i as u64, 1.0),
                        TaskId::from_raw(i as u64),
                        Arc::clone(&snap),
                        100,
                    );
                }
            });
            let mut last_seen = 0usize;
            while !writer.is_finished() {
                store.save_to(&path).unwrap();
                let loaded = MemoStore::load_from(&path, StoreConfig::default()).unwrap();
                assert!(
                    loaded.len() >= last_seen && loaded.len() <= total,
                    "checkpoint count went backwards or overshot: {} then {}",
                    last_seen,
                    loaded.len()
                );
                last_seen = loaded.len();
            }
            writer.join().unwrap();
        });
        // The final quiescent checkpoint carries everything.
        store.save_to(&path).unwrap();
        let loaded = MemoStore::load_from(&path, StoreConfig::default()).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.len(), total);
    }

    #[test]
    fn loading_through_a_tight_budget_respects_admission() {
        let (_data, store) = sample_store();
        let bytes = store.to_snapshot_bytes();
        let tight = MemoStore::new(
            StoreConfig::default()
                .with_byte_budget(1)
                .with_max_entry_fraction(1.0),
        );
        let admitted = tight.absorb_snapshot_bytes(&bytes).unwrap();
        assert_eq!(admitted, 0, "nothing fits a 1-byte budget");
        assert_eq!(tight.counters().rejected_admissions as usize, store.len());
    }

    /// Budget-aware warm start: entries are absorbed in ascending benefit
    /// density, so a tight budget keeps the most valuable entries no matter
    /// how unfavourably the snapshot file orders them — and regardless of
    /// the eviction policy.
    #[test]
    fn tight_budget_warm_start_keeps_the_best_entries() {
        use crate::policy::PolicyKind;

        let data = DataStore::new();
        let source = MemoStore::new(StoreConfig::default());
        // One high-benefit entry inserted FIRST (worst case for FIFO under
        // a budget), followed by several same-sized low-benefit entries.
        let payload = |tag: usize| {
            let id = data
                .try_register(format!("p{tag}"), RegionData::F32(vec![tag as f32; 64]))
                .unwrap();
            Arc::new(vec![OutputSnapshot::capture(
                &data,
                &untyped_write(id, ElemType::F32),
            )])
        };
        let key = |hash: u64| crate::EntryKey::new(TaskTypeId::from_raw(0), hash, 1.0);
        source.insert(key(0), TaskId::from_raw(0), payload(0), 1_000_000);
        for i in 1..8u64 {
            source.insert(key(i), TaskId::from_raw(i), payload(i as usize), 10);
        }
        let bytes = source.to_snapshot_bytes();

        // A budget that holds only a couple of entries.
        let one_entry_bytes = crate::store::entry_charge_bytes(&payload(100));
        let budget = one_entry_bytes * 2 + one_entry_bytes / 2;
        for policy in PolicyKind::ALL {
            let tight = MemoStore::new(
                StoreConfig::default()
                    .with_byte_budget(budget)
                    .with_policy(policy),
            );
            tight.absorb_snapshot_bytes(&bytes).unwrap();
            assert!(
                tight.lookup(&key(0)).is_some(),
                "{policy}: the high-benefit entry must survive a tight-budget warm start"
            );
            assert!(
                tight.memory_bytes() <= budget,
                "{policy}: the budget must hold after the warm start"
            );
        }
    }
}
