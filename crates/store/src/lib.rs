//! # atm-store — the memo store behind the ATM Task History Table
//!
//! The paper's THT (§III-A, Figure 1) is an in-memory `2^N`-bucket, `M`-way
//! FIFO cache that is rebuilt from scratch on every run and can only bound
//! memory per bucket. This crate turns that benchmark-harness structure into
//! a managed subsystem the rest of the workspace builds on:
//!
//! * [`MemoStore`] — a lock-sharded table with a **global byte budget**
//!   enforced across shards (the paper's `(N, M)` geometry is one
//!   configuration of [`StoreConfig`]);
//! * [`EvictionPolicy`] — pluggable eviction: [`policy::Fifo`]
//!   (paper-faithful default), [`policy::Lru`], and [`policy::CostAware`]
//!   (benefit = measured kernel nanoseconds saved per stored byte);
//! * **admission control** — entries whose charge exceeds a configurable
//!   fraction of the budget are refused;
//! * **persistence** ([`persist`]) — a versioned, checksummed,
//!   dependency-free binary snapshot format ([`MemoStore::save_to`] /
//!   [`MemoStore::load_from`]) so a run can warm-start from a previous
//!   run's table;
//! * [`snapshot::OutputSnapshot`] — the copied task outputs the store
//!   holds (moved here from `atm-core` so the store owns its value type).
//!
//! ```
//! use atm_store::{EntryKey, MemoStore, PolicyKind, StoreConfig};
//! use atm_store::snapshot::OutputSnapshot;
//! use atm_runtime::{Access, DataStore, TaskId, TaskTypeId};
//! use std::sync::Arc;
//!
//! let data = DataStore::new();
//! let region = data.register_typed("out", vec![1.0f64, 2.0]).unwrap();
//! let outputs = Arc::new(vec![OutputSnapshot::capture(&data, &Access::write(&region))]);
//!
//! let store = MemoStore::new(
//!     StoreConfig::default()
//!         .with_byte_budget(64 * 1024)
//!         .with_policy(PolicyKind::CostAware),
//! );
//! let key = EntryKey::new(TaskTypeId::from_raw(0), 0xFEED, 1.0);
//! store.insert(key, TaskId::from_raw(0), outputs, 12_000);
//! assert!(store.lookup(&key).is_some());
//! assert_eq!(store.counters().hits, 1);
//! ```

#![warn(missing_docs)]

mod hazard;
pub mod persist;
pub mod policy;
pub mod snapshot;
pub mod store;

pub use persist::PersistError;
pub use policy::{Candidate, CostAware, EvictionPolicy, Fifo, Lru, PolicyKind};
pub use snapshot::OutputSnapshot;
pub use store::{
    entry_charge_bytes, EntryKey, ExportedEntry, InsertOutcome, MemoHit, MemoStore, StoreConfig,
    StoreCountersSnapshot,
};
