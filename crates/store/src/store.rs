//! The budgeted, policy-driven memo store.
//!
//! [`MemoStore`] generalises the paper's Task History Table (§III-A,
//! Figure 1): a power-of-two array of lock-sharded buckets, each holding up
//! to `ways` entries. On top of the paper's geometry it adds what a
//! production memo table needs:
//!
//! * a **global byte budget** enforced across all shards — the THT could
//!   only bound memory per bucket, which bounds nothing when the key
//!   distribution is skewed;
//! * **pluggable eviction** behind the [`EvictionPolicy`] trait (FIFO is the
//!   paper-faithful default; see [`crate::policy`]);
//! * **admission control** — entries whose charge exceeds a configurable
//!   fraction of the budget are refused outright, so one huge output cannot
//!   flush the whole table;
//! * **persistence** — see [`crate::persist`] for the versioned, checksummed
//!   snapshot format behind [`MemoStore::save_to`] / [`MemoStore::load_from`].
//!
//! Configured with [`PolicyKind::Fifo`] and no budget, the store behaves bit
//! for bit like the original THT: same bucket indexing (low `N` bits of the
//! hash), same per-bucket FIFO eviction, same newest-entry-wins lookup.

use crate::policy::{Candidate, EvictionPolicy, PolicyKind};
use crate::snapshot::OutputSnapshot;
use atm_obs::{DecisionRecord, LatencyMetric, MemoDecision, Observability};
use atm_runtime::{TaskId, TaskTypeId};
use atm_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use atm_sync::RwLock;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// The lookup key of a memo entry.
///
/// Besides the Jenkins hash of the sampled inputs, an entry is only valid
/// for the same task type and the same selection percentage (the paper
/// extends the THT to store `p` together with the hash key because `p`
/// affects key generation, §III-D). `p` is stored as its raw bit pattern so
/// the struct stays `Eq`/hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryKey {
    /// The task type that produced the entry.
    pub task_type: TaskTypeId,
    /// The Jenkins hash of the sampled inputs.
    pub hash: u64,
    /// Bit pattern of the selection percentage used for the hash.
    pub p_bits: u64,
}

impl EntryKey {
    /// Builds a key from a task type, hash and percentage fraction.
    pub fn new(task_type: TaskTypeId, hash: u64, p: f64) -> Self {
        EntryKey {
            task_type,
            hash,
            p_bits: p.to_bits(),
        }
    }
}

/// Sizing and policy of a [`MemoStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Number of index bits: the store has `2^bucket_bits` lock-sharded
    /// buckets. The paper reports that N = 8 avoids lock contention (§IV-B).
    pub bucket_bits: u32,
    /// Maximum number of entries per bucket (the paper's associativity `M`).
    pub ways: usize,
    /// Global budget on resident bytes across all buckets. `None` disables
    /// budget enforcement (the paper's configuration).
    pub byte_budget: Option<usize>,
    /// Admission control: an entry whose charge exceeds this fraction of the
    /// byte budget is refused. Ignored when no budget is set.
    pub max_entry_fraction: f64,
    /// Eviction policy used for both the per-bucket `ways` cap and the
    /// global budget.
    pub policy: PolicyKind,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            bucket_bits: 8,
            ways: 128,
            byte_budget: None,
            max_entry_fraction: 1.0,
            policy: PolicyKind::Fifo,
        }
    }
}

impl StoreConfig {
    /// Paper-faithful configuration from the THT geometry alone.
    pub fn paper(bucket_bits: u32, ways: usize) -> Self {
        StoreConfig {
            bucket_bits,
            ways,
            ..Default::default()
        }
    }

    /// Sets the global byte budget.
    #[must_use]
    pub fn with_byte_budget(mut self, budget: usize) -> Self {
        self.byte_budget = Some(budget);
        self
    }

    /// Sets the admission fraction.
    #[must_use]
    pub fn with_max_entry_fraction(mut self, fraction: f64) -> Self {
        self.max_entry_fraction = fraction;
        self
    }

    /// Sets the eviction policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }
}

/// One stored entry (internal representation).
#[derive(Debug)]
struct StoredEntry {
    key: EntryKey,
    producer: TaskId,
    outputs: Arc<Vec<OutputSnapshot>>,
    /// Bytes charged against the budget (metadata + container + payload).
    charged_bytes: usize,
    /// Logical clock at insertion.
    inserted_seq: u64,
    /// Logical clock of the latest hit; updated under the bucket's *read*
    /// lock, hence atomic.
    last_used_seq: AtomicU64,
    /// Estimated kernel nanoseconds one hit on this entry saves.
    benefit_ns: u64,
}

impl StoredEntry {
    fn candidate(&self) -> Candidate {
        Candidate {
            bytes: self.charged_bytes,
            inserted_seq: self.inserted_seq,
            last_used_seq: self.last_used_seq.load(Ordering::Relaxed),
            benefit_ns: self.benefit_ns,
        }
    }
}

/// A successful lookup.
#[derive(Debug, Clone)]
pub struct MemoHit {
    /// The task that produced the stored outputs.
    pub producer: TaskId,
    /// The stored outputs.
    pub outputs: Arc<Vec<OutputSnapshot>>,
    /// The benefit estimate the entry was stored with.
    pub benefit_ns: u64,
}

/// One entry as exported for persistence or diagnostics.
#[derive(Debug, Clone)]
pub struct ExportedEntry {
    /// The lookup key.
    pub key: EntryKey,
    /// The task that produced the outputs.
    pub producer: TaskId,
    /// The benefit estimate.
    pub benefit_ns: u64,
    /// The stored outputs.
    pub outputs: Arc<Vec<OutputSnapshot>>,
}

/// What [`MemoStore::insert`] did with the offered entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Stored as a new entry.
    Inserted,
    /// An entry with the same key existed and was replaced in place (the
    /// old entry's bytes were released first — no double counting).
    Replaced,
    /// Stored, but the policy immediately chose it as the bucket's eviction
    /// victim (every other entry was more valuable): the entry is *not*
    /// resident and a lookup will miss. Counted as one insertion plus one
    /// eviction. The global byte budget can likewise evict a just-inserted
    /// entry; that case is not distinguished by this variant.
    Evicted,
    /// Refused by admission control (charge above the configured fraction
    /// of the byte budget).
    Rejected,
}

impl InsertOutcome {
    /// True when the entry is resident after the call (a lookup can hit).
    pub fn is_resident(self) -> bool {
        matches!(self, InsertOutcome::Inserted | InsertOutcome::Replaced)
    }
}

/// Point-in-time copy of the store counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCountersSnapshot {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Entries stored (including replacements).
    pub insertions: u64,
    /// Entries evicted (ways cap or byte budget).
    pub evictions: u64,
    /// Entries refused by admission control.
    pub rejected_admissions: u64,
    /// Estimated kernel nanoseconds saved by hits that actually replaced an
    /// execution (reported via [`MemoStore::note_saved`]).
    pub saved_ns: u64,
    /// Bytes currently charged against the budget.
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

/// How many non-empty buckets a budget eviction samples before asking the
/// policy for a victim. Sampling (rather than scanning every bucket) keeps
/// eviction cost independent of the table size, the same trade-off
/// production caches make.
const EVICTION_SAMPLE_BUCKETS: usize = 8;

/// Bytes an entry is charged for, including the container overhead the THT
/// of the paper under-counted: the `Arc` pointer and reference counts, the
/// `Vec` header, and one `OutputSnapshot` struct (region id, element range,
/// `RegionData` header) per output — not just the payload bytes.
pub fn entry_charge_bytes(outputs: &[OutputSnapshot]) -> usize {
    use std::mem::size_of;
    // Entry metadata: key, producer, charge, sequence numbers, benefit.
    let meta = size_of::<EntryKey>() + size_of::<TaskId>() + 4 * size_of::<u64>();
    // The shared container: the Arc pointer held by the entry, the strong
    // and weak reference counts in the Arc allocation, and the Vec header.
    let container = 3 * size_of::<usize>() + size_of::<Vec<OutputSnapshot>>();
    let payload: usize = outputs
        .iter()
        .map(|s| size_of::<OutputSnapshot>() + s.size_bytes())
        .sum();
    meta + container + payload
}

/// The sharded, budgeted memo store.
#[derive(Debug)]
pub struct MemoStore {
    buckets: Vec<RwLock<VecDeque<StoredEntry>>>,
    config: StoreConfig,
    policy: Box<dyn EvictionPolicy>,
    /// Logical clock ticked on every insertion and hit.
    clock: AtomicU64,
    /// Rotating start bucket for budget evictions.
    evict_cursor: AtomicUsize,
    resident_bytes: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    rejected_admissions: AtomicU64,
    saved_ns: AtomicU64,
    /// Observability handle (attached post-construction, see
    /// [`MemoStore::set_observability`]). Store-side decision events are
    /// stamped on `obs_origin`'s clock — monotonic, but not aligned with
    /// any runtime tracer timeline.
    obs: Option<Arc<Observability>>,
    obs_origin: Instant,
}

impl MemoStore {
    /// Creates an empty store with the built-in policy named in `config`.
    pub fn new(config: StoreConfig) -> Self {
        Self::with_policy(config, config.policy.build())
    }

    /// Creates an empty store with a caller-provided eviction policy.
    pub fn with_policy(config: StoreConfig, policy: Box<dyn EvictionPolicy>) -> Self {
        assert!(
            config.bucket_bits <= 20,
            "more than 2^20 buckets is never useful"
        );
        assert!(config.ways >= 1, "each bucket needs at least one way");
        assert!(
            config.max_entry_fraction > 0.0 && config.max_entry_fraction <= 1.0,
            "max_entry_fraction must be in (0, 1]"
        );
        let buckets = (0..(1usize << config.bucket_bits))
            .map(|_| RwLock::new(VecDeque::new()))
            .collect();
        MemoStore {
            buckets,
            config,
            policy,
            clock: AtomicU64::new(0),
            evict_cursor: AtomicUsize::new(0),
            resident_bytes: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected_admissions: AtomicU64::new(0),
            saved_ns: AtomicU64::new(0),
            obs: None,
            obs_origin: Instant::now(),
        }
    }

    /// Attaches an observability handle: insert/evict latencies land in its
    /// histograms and admission-denied/eviction decisions in its decision
    /// stream (sharded by bucket index, since the store does not know which
    /// worker is calling).
    pub fn set_observability(&mut self, obs: Arc<Observability>) {
        self.obs = Some(obs);
    }

    /// The attached handle, but only when it records.
    #[inline]
    fn obs_on(&self) -> Option<&Observability> {
        match &self.obs {
            Some(obs) if obs.is_enabled() => Some(obs),
            _ => None,
        }
    }

    /// Event timestamp on the store's own monotonic clock.
    fn obs_ns(&self) -> u64 {
        u64::try_from(self.obs_origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn record_eviction(
        &self,
        obs: &Observability,
        shard: usize,
        key: &EntryKey,
        producer: TaskId,
        bytes: usize,
    ) {
        obs.record_decision(
            shard,
            DecisionRecord {
                task_type: key.task_type.index() as u32,
                task_id: producer.raw(),
                decision: MemoDecision::Eviction,
                metric_value: bytes as f64,
                tau: 0.0,
                p: f64::from_bits(key.p_bits),
                t_ns: self.obs_ns(),
            },
        );
    }

    /// The store configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The active eviction policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Number of buckets (`2^bucket_bits`).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, key: &EntryKey) -> usize {
        // Index with the lower N bits of the hash, as in Figure 1.
        (key.hash as usize) & (self.buckets.len() - 1)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up an entry with exactly this key. Takes the bucket's read
    /// lock, so concurrent lookups proceed in parallel. A hit refreshes the
    /// entry's recency stamp (LRU bookkeeping).
    ///
    /// A hit does *not* accrue `saved_ns`: the caller may still execute the
    /// task (dynamic-ATM training, output-shape mismatch), so it reports
    /// genuinely avoided work separately via [`MemoStore::note_saved`].
    pub fn lookup(&self, key: &EntryKey) -> Option<MemoHit> {
        let track_recency = self.policy.uses_recency();
        let bucket = self.buckets[self.bucket_of(key)].read();
        let found = bucket.iter().rev().find(|e| e.key == *key).map(|e| {
            if track_recency {
                e.last_used_seq.store(self.tick(), Ordering::Relaxed);
            }
            MemoHit {
                producer: e.producer,
                outputs: Arc::clone(&e.outputs),
                benefit_ns: e.benefit_ns,
            }
        });
        drop(bucket);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records that a hit actually replaced an execution, crediting the
    /// entry's benefit estimate to the `saved_ns` counter. Called by the
    /// engine only when the kernel was genuinely skipped — a training-phase
    /// or shape-mismatched hit executes anyway and saves nothing.
    pub fn note_saved(&self, benefit_ns: u64) {
        self.saved_ns.fetch_add(benefit_ns, Ordering::Relaxed);
    }

    /// Stores the outputs of a completed task.
    ///
    /// `benefit_ns` is the caller's estimate of the kernel nanoseconds one
    /// hit on this entry saves (the ATM engine feeds its measured per-type
    /// kernel time); it drives the [`CostAware`](crate::policy::CostAware)
    /// policy and the `saved_ns` counter.
    ///
    /// An entry with the same key is replaced in place (its bytes are
    /// released first, so nothing is double-counted). When the bucket
    /// exceeds `ways` or the store exceeds its byte budget, the policy
    /// picks victims until both bounds hold again.
    pub fn insert(
        &self,
        key: EntryKey,
        producer: TaskId,
        outputs: Arc<Vec<OutputSnapshot>>,
        benefit_ns: u64,
    ) -> InsertOutcome {
        let observing = self.obs_on().is_some();
        let insert_start = observing.then(Instant::now);
        let shard = self.bucket_of(&key);
        let charged = entry_charge_bytes(&outputs);
        if let Some(budget) = self.config.byte_budget {
            let cap = (budget as f64 * self.config.max_entry_fraction) as usize;
            if charged > cap {
                self.rejected_admissions.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = self.obs_on() {
                    obs.record_decision(
                        shard,
                        DecisionRecord {
                            task_type: key.task_type.index() as u32,
                            task_id: producer.raw(),
                            decision: MemoDecision::AdmissionDenied,
                            metric_value: charged as f64,
                            tau: 0.0,
                            p: f64::from_bits(key.p_bits),
                            t_ns: self.obs_ns(),
                        },
                    );
                    if let Some(start) = insert_start {
                        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        obs.record_latency(LatencyMetric::StoreInsert, shard, ns);
                    }
                }
                return InsertOutcome::Rejected;
            }
        }
        let seq = self.tick();
        let entry = StoredEntry {
            key,
            producer,
            outputs,
            charged_bytes: charged,
            inserted_seq: seq,
            last_used_seq: AtomicU64::new(seq),
            benefit_ns,
        };

        // Count the bytes *before* the entry becomes visible: a concurrent
        // budget eviction may remove the entry (and subtract its charge)
        // the moment the bucket lock drops, and the counter must never
        // see a subtraction for bytes that were not yet added (usize
        // wrap-around would read as "over budget" and flush the store).
        self.resident_bytes.fetch_add(charged, Ordering::Relaxed);
        let mut freed = 0usize;
        let mut evicted = 0u64;
        let mut self_evicted = false;
        let mut evicted_entries: Vec<(EntryKey, TaskId, usize)> = Vec::new();
        let mut bucket = self.buckets[shard].write();
        let replaced = if let Some(pos) = bucket.iter().position(|e| e.key == key) {
            freed += bucket[pos].charged_bytes;
            bucket[pos] = entry;
            true
        } else {
            bucket.push_back(entry);
            while bucket.len() > self.config.ways {
                let candidates: Vec<Candidate> =
                    bucket.iter().map(StoredEntry::candidate).collect();
                let victim = self.policy.victim(&candidates).min(bucket.len() - 1);
                if let Some(old) = bucket.remove(victim) {
                    freed += old.charged_bytes;
                    evicted += 1;
                    // The new entry can itself be the least valuable of the
                    // full bucket; report that honestly instead of claiming
                    // a resident insertion.
                    self_evicted |= old.inserted_seq == seq;
                    if observing {
                        evicted_entries.push((old.key, old.producer, old.charged_bytes));
                    }
                }
            }
            false
        };
        drop(bucket);

        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        // `freed` covers only entries that were visible in the bucket, so
        // their charges are already in the counter.
        self.resident_bytes.fetch_sub(freed, Ordering::Relaxed);
        self.enforce_budget();
        if let Some(obs) = self.obs_on() {
            for (ekey, eproducer, ebytes) in &evicted_entries {
                self.record_eviction(obs, shard, ekey, *eproducer, *ebytes);
            }
            if let Some(start) = insert_start {
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                obs.record_latency(LatencyMetric::StoreInsert, shard, ns);
            }
        }
        if replaced {
            InsertOutcome::Replaced
        } else if self_evicted {
            InsertOutcome::Evicted
        } else {
            InsertOutcome::Inserted
        }
    }

    /// Evicts entries (policy-chosen, sampled across shards) until the
    /// resident bytes fit the budget again.
    fn enforce_budget(&self) {
        let Some(budget) = self.config.byte_budget else {
            return;
        };
        // Each round gathers one candidate sample and evicts as many
        // victims from it as the deficit needs, so reclaiming N entries
        // costs O(N + sample) instead of N full re-samples. Bounded
        // fruitless rounds guard against pathological races (e.g. the
        // counter transiently includes an entry another thread has charged
        // but not yet published).
        let mut fruitless = 0;
        while self.resident_bytes.load(Ordering::Relaxed) > budget && fruitless < 8 {
            let round_start = self.obs_on().map(|_| Instant::now());
            if self.evict_round(budget) {
                fruitless = 0;
                if let (Some(obs), Some(start)) = (self.obs_on(), round_start) {
                    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    obs.record_latency(LatencyMetric::StoreEvict, 0, ns);
                }
            } else {
                fruitless += 1;
            }
        }
    }

    /// Samples up to [`EVICTION_SAMPLE_BUCKETS`] non-empty buckets starting
    /// at a rotating cursor, then evicts policy-chosen victims from that
    /// sample until the budget holds or the sample is exhausted. Returns
    /// true when at least one entry was removed.
    fn evict_round(&self, budget: usize) -> bool {
        let n = self.buckets.len();
        let start = self.evict_cursor.fetch_add(1, Ordering::Relaxed) % n;
        let mut gathered: Vec<(usize, EntryKey, Candidate)> = Vec::new();
        let mut sampled = 0usize;
        for step in 0..n {
            let b = (start + step) % n;
            let bucket = self.buckets[b].read();
            if bucket.is_empty() {
                continue;
            }
            for e in bucket.iter() {
                gathered.push((b, e.key, e.candidate()));
            }
            sampled += 1;
            if sampled >= EVICTION_SAMPLE_BUCKETS {
                break;
            }
        }

        let mut evicted_any = false;
        while !gathered.is_empty() && self.resident_bytes.load(Ordering::Relaxed) > budget {
            let candidates: Vec<Candidate> = gathered.iter().map(|g| g.2).collect();
            let idx = self.policy.victim(&candidates).min(candidates.len() - 1);
            let (b, key, cand) = gathered.swap_remove(idx);
            let mut bucket = self.buckets[b].write();
            let pos = bucket
                .iter()
                .position(|e| e.key == key && e.inserted_seq == cand.inserted_seq);
            // A raced-away victim just drops out of the sample.
            if let Some(pos) = pos {
                let removed = bucket.remove(pos).expect("position is in range");
                drop(bucket);
                self.resident_bytes
                    .fetch_sub(removed.charged_bytes, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evicted_any = true;
                if let Some(obs) = self.obs_on() {
                    self.record_eviction(
                        obs,
                        b,
                        &removed.key,
                        removed.producer,
                        removed.charged_bytes,
                    );
                }
            }
        }
        evicted_any
    }

    /// Total number of stored entries (diagnostic; takes every bucket lock).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.read().len()).sum()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget (keys, container overhead
    /// and outputs), the main contributor to the ATM memory overhead of
    /// Table III.
    pub fn memory_bytes(&self) -> usize {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// Counter snapshot.
    pub fn counters(&self) -> StoreCountersSnapshot {
        StoreCountersSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected_admissions: self.rejected_admissions.load(Ordering::Relaxed),
            saved_ns: self.saved_ns.load(Ordering::Relaxed),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// All resident entries, in bucket order then insertion order. This is
    /// the view the persistence layer serialises.
    pub fn export(&self) -> Vec<ExportedEntry> {
        let mut out = Vec::new();
        for bucket in &self.buckets {
            let bucket = bucket.read();
            for e in bucket.iter() {
                out.push(ExportedEntry {
                    key: e.key,
                    producer: e.producer,
                    benefit_ns: e.benefit_ns,
                    outputs: Arc::clone(&e.outputs),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_runtime::{Access, DataStore};

    fn snapshot(store: &DataStore, values: &[f32]) -> Arc<Vec<OutputSnapshot>> {
        let r = store
            .register_typed(format!("out{}", store.len()), values.to_vec())
            .unwrap();
        Arc::new(vec![OutputSnapshot::capture(store, &Access::write(&r))])
    }

    fn key(hash: u64) -> EntryKey {
        EntryKey::new(TaskTypeId::from_raw(0), hash, 1.0)
    }

    fn producer(id: u64) -> TaskId {
        TaskId::from_raw(id)
    }

    fn one_bucket(policy: PolicyKind, ways: usize) -> StoreConfig {
        StoreConfig {
            bucket_bits: 0,
            ways,
            policy,
            ..Default::default()
        }
    }

    #[test]
    fn same_key_insert_replaces_without_double_counting() {
        let data = DataStore::new();
        let store = MemoStore::new(one_bucket(PolicyKind::Fifo, 8));
        store.insert(key(1), producer(0), snapshot(&data, &[1.0; 64]), 0);
        let after_first = store.memory_bytes();
        assert!(after_first > 0);
        // Same key again: the entry is replaced in place, the old bytes are
        // released, and nothing is evicted.
        let outcome = store.insert(key(1), producer(1), snapshot(&data, &[2.0; 64]), 0);
        assert_eq!(outcome, InsertOutcome::Replaced);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.memory_bytes(),
            after_first,
            "replacing an equal-sized entry must not change the accounting"
        );
        let counters = store.counters();
        assert_eq!(counters.insertions, 2);
        assert_eq!(counters.evictions, 0);
        // The replacement's outputs win.
        let hit = store.lookup(&key(1)).unwrap();
        assert_eq!(hit.outputs[0].data.as_f32(), &[2.0; 64]);
        assert_eq!(hit.producer, producer(1));
    }

    #[test]
    fn charge_includes_container_overhead() {
        let data = DataStore::new();
        let outputs = snapshot(&data, &[0.0; 100]);
        let charge = entry_charge_bytes(&outputs);
        let payload = 400; // 100 f32
        assert!(
            charge > payload + std::mem::size_of::<OutputSnapshot>(),
            "charge {charge} must cover the payload plus per-output and container overhead"
        );
    }

    #[test]
    fn global_budget_is_enforced_across_shards() {
        let data = DataStore::new();
        // 16 buckets, generous ways: only the global budget can evict.
        let config = StoreConfig {
            bucket_bits: 4,
            ways: 1024,
            ..Default::default()
        }
        .with_byte_budget(8 * 1024);
        let store = MemoStore::new(config);
        for i in 0..64u64 {
            // Distinct buckets (low bits vary).
            store.insert(key(i), producer(i), snapshot(&data, &[i as f32; 256]), 0);
        }
        assert!(
            store.memory_bytes() <= 8 * 1024,
            "resident bytes {} exceed the budget",
            store.memory_bytes()
        );
        let counters = store.counters();
        assert!(counters.evictions > 0, "the budget must have evicted");
        assert_eq!(counters.entries, store.len());
    }

    #[test]
    fn admission_control_rejects_oversized_entries() {
        let data = DataStore::new();
        let config = StoreConfig::default()
            .with_byte_budget(4096)
            .with_max_entry_fraction(0.25);
        let store = MemoStore::new(config);
        // 2048 payload bytes > 25% of 4096.
        let outcome = store.insert(key(1), producer(0), snapshot(&data, &[1.0; 512]), 0);
        assert_eq!(outcome, InsertOutcome::Rejected);
        assert!(store.is_empty());
        assert_eq!(store.counters().rejected_admissions, 1);
        // A small entry is admitted.
        let outcome = store.insert(key(2), producer(0), snapshot(&data, &[1.0; 8]), 0);
        assert_eq!(outcome, InsertOutcome::Inserted);
        assert_eq!(store.counters().insertions, 1);
    }

    #[test]
    fn lru_keeps_recently_hit_entries_under_pressure() {
        let data = DataStore::new();
        let store = MemoStore::new(one_bucket(PolicyKind::Lru, 2));
        store.insert(key(1), producer(1), snapshot(&data, &[1.0]), 0);
        store.insert(key(2), producer(2), snapshot(&data, &[2.0]), 0);
        // Touch entry 1 so entry 2 becomes the LRU victim.
        assert!(store.lookup(&key(1)).is_some());
        store.insert(key(3), producer(3), snapshot(&data, &[3.0]), 0);
        assert!(
            store.lookup(&key(1)).is_some(),
            "recently used must survive"
        );
        assert!(store.lookup(&key(2)).is_none(), "LRU entry must be evicted");
        assert!(store.lookup(&key(3)).is_some());
    }

    #[test]
    fn self_evicting_insert_is_reported_not_claimed_resident() {
        let data = DataStore::new();
        let store = MemoStore::new(one_bucket(PolicyKind::CostAware, 2));
        // Two high-density residents fill the bucket…
        store.insert(key(1), producer(1), snapshot(&data, &[1.0; 2]), 1_000_000);
        store.insert(key(2), producer(2), snapshot(&data, &[2.0; 2]), 1_000_000);
        // …so a low-density newcomer is its own victim.
        let outcome = store.insert(key(3), producer(3), snapshot(&data, &[3.0; 512]), 10);
        assert_eq!(outcome, InsertOutcome::Evicted);
        assert!(!outcome.is_resident());
        assert!(store.lookup(&key(3)).is_none());
        assert!(store.lookup(&key(1)).is_some());
        assert!(store.lookup(&key(2)).is_some());
        let counters = store.counters();
        assert_eq!(counters.insertions, 3);
        assert_eq!(counters.evictions, 1);
        assert_eq!(counters.entries, 2);
    }

    #[test]
    fn cost_aware_keeps_high_benefit_density_entries() {
        let data = DataStore::new();
        let store = MemoStore::new(one_bucket(PolicyKind::CostAware, 2));
        // Expensive kernel, small output: high benefit density.
        store.insert(key(1), producer(1), snapshot(&data, &[1.0; 2]), 1_000_000);
        // Cheap kernel, large output: low benefit density.
        store.insert(key(2), producer(2), snapshot(&data, &[2.0; 512]), 1_000);
        store.insert(key(3), producer(3), snapshot(&data, &[3.0; 2]), 500_000);
        assert!(
            store.lookup(&key(1)).is_some(),
            "high-density entry must survive"
        );
        assert!(
            store.lookup(&key(2)).is_none(),
            "low-density entry must be the victim"
        );
    }

    #[test]
    fn fifo_with_unlimited_budget_matches_the_paper_tht() {
        let data = DataStore::new();
        let store = MemoStore::new(one_bucket(PolicyKind::Fifo, 2));
        for hash_high in 0..4u64 {
            store.insert(
                key(hash_high << 32),
                producer(hash_high),
                snapshot(&data, &[hash_high as f32]),
                0,
            );
        }
        assert_eq!(store.len(), 2);
        let counters = store.counters();
        assert_eq!(counters.insertions, 4);
        assert_eq!(counters.evictions, 2);
        assert!(store.lookup(&key(2 << 32)).is_some());
        assert!(store.lookup(&key(3 << 32)).is_some());
        assert!(store.lookup(&key(0)).is_none());
    }

    #[test]
    fn saved_ns_counts_only_reported_bypasses() {
        let data = DataStore::new();
        let store = MemoStore::new(StoreConfig::default());
        store.insert(key(9), producer(0), snapshot(&data, &[1.0]), 750);
        // A lookup alone saves nothing — the caller may execute anyway.
        let hit = store.lookup(&key(9)).unwrap();
        assert_eq!(store.counters().saved_ns, 0);
        // The caller reports the hits that genuinely replaced an execution.
        store.note_saved(hit.benefit_ns);
        store.note_saved(hit.benefit_ns);
        assert!(store.lookup(&key(10)).is_none());
        let counters = store.counters();
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.saved_ns, 1500);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_is_rejected() {
        let _ = MemoStore::new(StoreConfig {
            ways: 0,
            ..Default::default()
        });
    }

    #[test]
    fn observability_records_latencies_and_store_decisions() {
        let data = DataStore::new();
        let obs = Arc::new(Observability::enabled());
        let mut store = MemoStore::new(one_bucket(PolicyKind::Fifo, 1));
        store.set_observability(Arc::clone(&obs));

        // Two distinct keys into a 1-way bucket: the second insert evicts
        // the first (FIFO).
        store.insert(key(1), producer(0), snapshot(&data, &[1.0; 8]), 0);
        store.insert(key(2), producer(1), snapshot(&data, &[2.0; 8]), 0);

        let decisions = obs.decisions();
        assert_eq!(decisions.count(0, MemoDecision::Eviction), 1);
        let evicted = &decisions.records_for(0)[0];
        assert_eq!(evicted.decision, MemoDecision::Eviction);
        assert_eq!(evicted.task_id, 0, "the FIFO victim is the first producer");
        assert!(evicted.metric_value > 0.0, "eviction reports freed bytes");
        let metrics = obs.metrics();
        assert_eq!(metrics.get(LatencyMetric::StoreInsert).count, 2);

        // A tiny admission cap refuses the entry and says so.
        let mut capped = MemoStore::new(StoreConfig {
            byte_budget: Some(64),
            max_entry_fraction: 0.1,
            ..one_bucket(PolicyKind::Fifo, 8)
        });
        capped.set_observability(Arc::clone(&obs));
        let outcome = capped.insert(key(3), producer(7), snapshot(&data, &[3.0; 64]), 0);
        assert_eq!(outcome, InsertOutcome::Rejected);
        assert_eq!(obs.decisions().count(0, MemoDecision::AdmissionDenied), 1);
    }

    #[test]
    fn disabled_observability_leaves_the_store_silent() {
        let data = DataStore::new();
        let obs = Arc::new(Observability::disabled());
        let mut store = MemoStore::new(one_bucket(PolicyKind::Fifo, 1));
        store.set_observability(Arc::clone(&obs));
        store.insert(key(1), producer(0), snapshot(&data, &[1.0; 8]), 0);
        store.insert(key(2), producer(1), snapshot(&data, &[2.0; 8]), 0);
        assert_eq!(obs.decisions().total(), 0);
        assert_eq!(obs.metrics().get(LatencyMetric::StoreInsert).count, 0);
    }
}
