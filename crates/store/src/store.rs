//! The budgeted, policy-driven memo store.
//!
//! [`MemoStore`] generalises the paper's Task History Table (§III-A,
//! Figure 1): a power-of-two array of buckets, each a **true set-associative
//! set** of `ways` fixed slots. On top of the paper's geometry it adds what a
//! production memo table needs:
//!
//! * a **global byte budget** enforced across all buckets — the THT could
//!   only bound memory per bucket, which bounds nothing when the key
//!   distribution is skewed;
//! * **pluggable eviction** behind the [`EvictionPolicy`] trait (FIFO is the
//!   paper-faithful default; see [`crate::policy`]);
//! * **admission control** — entries whose charge exceeds a configurable
//!   fraction of the budget are refused outright, so one huge output cannot
//!   flush the whole table;
//! * **persistence** — see [`crate::persist`] for the versioned, checksummed
//!   snapshot format behind [`MemoStore::save_to`] / [`MemoStore::load_from`].
//!
//! # Read path: seqlock slots, no lock
//!
//! Each slot is independently **seqlock-versioned**: writers (serialised on a
//! per-bucket mutex) bump the slot's version to odd, mutate, publish the
//! outputs pointer, and bump back to even; readers scan the bucket's slots
//! with plain atomic loads, validating each slot's version around the reads.
//! A hit clones the outputs `Arc` without taking any lock, protected by a
//! hazard pointer (the private `hazard` module) so a concurrent replacement cannot free
//! the allocation under the reader. The full protocol — and the model that
//! checks it — is CONCURRENCY.md, protocol 6. The cost model: a miss is
//! `ways` version loads plus key compares over a contiguous slot array (no
//! pointer chasing, no shared-line writes); a hit adds one hazard CAS/store
//! pair on a thread-private line and one `Arc` increment. Nothing on the read
//! path writes to memory shared with other readers.
//!
//! `StoreConfig::locked_reads` keeps the old mutex-guarded read path
//! available for A/B comparison (the `memopath` experiment) and as the
//! fallback the seqlock path escapes to under writer starvation.
//!
//! Slots are preallocated: the default geometry (2⁸ buckets × 128 ways,
//! ~96 B per slot) reserves ≈3 MiB up front, the price of fixed-position
//! publication.
//!
//! # Counters
//!
//! Hot-path statistics never touch a shared cache line: hits, misses and
//! saved-nanoseconds are striped over cache-padded shards indexed by thread
//! ordinal; insertions, evictions, rejections and the entry count live in a
//! padded per-bucket block owned by the writer path. [`MemoStore::counters`]
//! sums them in one pass — see its documentation for the exact consistency
//! model.
//!
//! Configured with [`PolicyKind::Fifo`] and no budget, the store behaves bit
//! for bit like the original THT: same bucket indexing (low `N` bits of the
//! hash), same per-bucket FIFO eviction, same arrival-order bookkeeping as
//! the THT's per-bucket queue.

use crate::hazard::{self, HazardRegistry};
use crate::policy::{Candidate, EvictionPolicy, PolicyKind};
use crate::snapshot::OutputSnapshot;
use atm_obs::{DecisionRecord, LatencyMetric, MemoDecision, Observability};
use atm_runtime::{TaskId, TaskTypeId};
use atm_sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use atm_sync::{thread_ordinal, Mutex};
use std::ptr;
use std::sync::Arc;
use std::time::Instant;

/// The lookup key of a memo entry.
///
/// Besides the Jenkins hash of the sampled inputs, an entry is only valid
/// for the same task type and the same selection percentage (the paper
/// extends the THT to store `p` together with the hash key because `p`
/// affects key generation, §III-D). `p` is stored as its raw bit pattern so
/// the struct stays `Eq`/hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryKey {
    /// The task type that produced the entry.
    pub task_type: TaskTypeId,
    /// The Jenkins hash of the sampled inputs.
    pub hash: u64,
    /// Bit pattern of the selection percentage used for the hash.
    pub p_bits: u64,
}

impl EntryKey {
    /// Builds a key from a task type, hash and percentage fraction.
    pub fn new(task_type: TaskTypeId, hash: u64, p: f64) -> Self {
        EntryKey {
            task_type,
            hash,
            p_bits: p.to_bits(),
        }
    }
}

/// Sizing and policy of a [`MemoStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Number of index bits: the store has `2^bucket_bits` buckets. The
    /// paper reports that N = 8 avoids lock contention (§IV-B).
    pub bucket_bits: u32,
    /// Maximum number of entries per bucket (the paper's associativity `M`).
    pub ways: usize,
    /// Global budget on resident bytes across all buckets. `None` disables
    /// budget enforcement (the paper's configuration).
    pub byte_budget: Option<usize>,
    /// Admission control: an entry whose charge exceeds this fraction of the
    /// byte budget is refused. Ignored when no budget is set.
    pub max_entry_fraction: f64,
    /// Eviction policy used for both the per-bucket `ways` cap and the
    /// global budget.
    pub policy: PolicyKind,
    /// Route lookups through the per-bucket writer mutex instead of the
    /// lock-free seqlock path. Same results, different cost model; exists
    /// for A/B measurement (the `memopath` experiment) and as an escape
    /// hatch.
    pub locked_reads: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            bucket_bits: 8,
            ways: 128,
            byte_budget: None,
            max_entry_fraction: 1.0,
            policy: PolicyKind::Fifo,
            locked_reads: false,
        }
    }
}

impl StoreConfig {
    /// Paper-faithful configuration from the THT geometry alone.
    pub fn paper(bucket_bits: u32, ways: usize) -> Self {
        StoreConfig {
            bucket_bits,
            ways,
            ..Default::default()
        }
    }

    /// Sets the global byte budget.
    #[must_use]
    pub fn with_byte_budget(mut self, budget: usize) -> Self {
        self.byte_budget = Some(budget);
        self
    }

    /// Sets the admission fraction.
    #[must_use]
    pub fn with_max_entry_fraction(mut self, fraction: f64) -> Self {
        self.max_entry_fraction = fraction;
        self
    }

    /// Sets the eviction policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Selects mutex-guarded lookups instead of the seqlock read path.
    #[must_use]
    pub fn with_locked_reads(mut self) -> Self {
        self.locked_reads = true;
        self
    }
}

/// Retries the seqlock read path grants a torn slot before giving up and
/// taking the bucket's writer lock for one consistent pass.
const SEQLOCK_RETRY_LIMIT: usize = 64;

/// One fixed entry slot of a bucket (protocol 6's `Slot`).
///
/// Every field is an atomic so the lock-free read path can load them without
/// UB while a writer mutates; consistency comes from the seqlock `version`,
/// not from the individual loads. An **empty** slot is one whose `outputs`
/// pointer is null — the key fields then hold stale bytes from the previous
/// occupant, which is harmless because readers treat a null pointer as a
/// mismatch. `arrival` reconstructs the THT's queue order: assigned at first
/// publication, inherited by same-key replacement, refreshed when an
/// eviction re-fills the slot with a new entry.
#[derive(Debug, Default)]
struct Slot {
    /// Seqlock version: even = stable, odd = a writer is publishing.
    version: AtomicU64,
    hash: AtomicU64,
    task_type: AtomicU64,
    p_bits: AtomicU64,
    producer: AtomicU64,
    benefit_ns: AtomicU64,
    charged_bytes: AtomicU64,
    /// Logical clock at insertion (identity stamp for raced evictions).
    inserted_seq: AtomicU64,
    /// Logical clock of the latest hit (LRU bookkeeping; readers store it
    /// without a version bump, see protocol 6 note on recency races).
    last_used_seq: AtomicU64,
    /// Queue-order stamp: the slot's position in the bucket's logical FIFO.
    arrival: AtomicU64,
    /// The published outputs: an `Arc` whose strong count the slot owns
    /// (`Arc::into_raw` at publish, reclaimed through [`crate::hazard`]).
    outputs: AtomicPtr<Vec<OutputSnapshot>>,
}

impl Slot {
    #[inline]
    fn is_occupied(&self) -> bool {
        !self.outputs.load(Ordering::Relaxed).is_null()
    }

    #[inline]
    fn matches(&self, key: &EntryKey) -> bool {
        self.hash.load(Ordering::Relaxed) == key.hash
            && self.task_type.load(Ordering::Relaxed) == key.task_type.index() as u64
            && self.p_bits.load(Ordering::Relaxed) == key.p_bits
    }

    /// Reconstructs the key. Caller holds the bucket writer lock.
    fn key(&self) -> EntryKey {
        EntryKey {
            task_type: TaskTypeId::from_raw(self.task_type.load(Ordering::Relaxed) as u32),
            hash: self.hash.load(Ordering::Relaxed),
            p_bits: self.p_bits.load(Ordering::Relaxed),
        }
    }

    /// Eviction-policy view of the slot. Caller holds the bucket writer lock.
    fn candidate(&self) -> Candidate {
        Candidate {
            bytes: self.charged_bytes.load(Ordering::Relaxed) as usize,
            inserted_seq: self.inserted_seq.load(Ordering::Relaxed),
            last_used_seq: self.last_used_seq.load(Ordering::Relaxed),
            benefit_ns: self.benefit_ns.load(Ordering::Relaxed),
        }
    }

    /// Makes the version odd: readers now retry. Caller holds the bucket
    /// writer lock.
    fn begin_publish(&self) {
        let v = self.version.fetch_add(1, Ordering::SeqCst);
        debug_assert_eq!(v & 1, 0, "begin_publish on a slot already mid-publish");
    }

    /// Makes the version even again: the mutated slot is readable.
    fn end_publish(&self) {
        let v = self.version.fetch_add(1, Ordering::SeqCst);
        debug_assert_eq!(v & 1, 1, "end_publish without begin_publish");
    }

    /// Writes the entry fields (everything but `arrival` and the outputs
    /// pointer). Caller holds the writer lock and an odd version.
    fn write_entry(
        &self,
        key: &EntryKey,
        producer: TaskId,
        charged: usize,
        seq: u64,
        benefit: u64,
    ) {
        self.hash.store(key.hash, Ordering::Relaxed);
        self.task_type
            .store(key.task_type.index() as u64, Ordering::Relaxed);
        self.p_bits.store(key.p_bits, Ordering::Relaxed);
        self.producer.store(producer.raw(), Ordering::Relaxed);
        self.charged_bytes.store(charged as u64, Ordering::Relaxed);
        self.inserted_seq.store(seq, Ordering::Relaxed);
        self.last_used_seq.store(seq, Ordering::Relaxed);
        self.benefit_ns.store(benefit, Ordering::Relaxed);
    }
}

/// Writer-path statistics of one bucket, on their own cache line so bucket
/// writers never contend with neighbours (or with readers) over counters.
#[repr(align(128))]
#[derive(Debug, Default)]
struct BucketStats {
    insertions: AtomicU64,
    evictions: AtomicU64,
    rejected_admissions: AtomicU64,
    /// Occupied slots; exact, maintained under the bucket writer lock.
    entries: AtomicU64,
}

/// One set-associative bucket: `ways` seqlock slots plus the mutex that
/// serialises writers (readers never touch it on the seqlock path).
#[derive(Debug)]
struct Bucket {
    writer: Mutex<()>,
    slots: Box<[Slot]>,
    stats: BucketStats,
}

impl Bucket {
    fn new(ways: usize) -> Self {
        Bucket {
            writer: Mutex::new(()),
            slots: (0..ways).map(|_| Slot::default()).collect(),
            stats: BucketStats::default(),
        }
    }
}

/// Read-path statistics stripe: one cache line per shard, indexed by thread
/// ordinal, so concurrent readers hitting the same bucket (or even the same
/// entry) never write the same line.
#[repr(align(128))]
#[derive(Debug, Default)]
struct ReaderShard {
    hits: AtomicU64,
    misses: AtomicU64,
    saved_ns: AtomicU64,
}

/// Number of reader stripes. More than any sane worker count; collisions
/// merely share a line, they do not miscount.
const READER_SHARDS: usize = 64;

/// A cache-padded `AtomicU64` (the global logical clock).
#[repr(align(128))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// A cache-padded `AtomicUsize` (resident bytes, eviction cursor).
#[repr(align(128))]
#[derive(Debug, Default)]
struct PaddedUsize(AtomicUsize);

/// A successful lookup.
#[derive(Debug, Clone)]
pub struct MemoHit {
    /// The task that produced the stored outputs.
    pub producer: TaskId,
    /// The stored outputs.
    pub outputs: Arc<Vec<OutputSnapshot>>,
    /// The benefit estimate the entry was stored with.
    pub benefit_ns: u64,
}

/// One entry as exported for persistence or diagnostics.
#[derive(Debug, Clone)]
pub struct ExportedEntry {
    /// The lookup key.
    pub key: EntryKey,
    /// The task that produced the outputs.
    pub producer: TaskId,
    /// The benefit estimate.
    pub benefit_ns: u64,
    /// The stored outputs.
    pub outputs: Arc<Vec<OutputSnapshot>>,
}

/// What [`MemoStore::insert`] did with the offered entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Stored as a new entry.
    Inserted,
    /// An entry with the same key existed and was replaced in place (the
    /// old entry's bytes were released first — no double counting).
    Replaced,
    /// Stored, but the policy immediately chose it as the bucket's eviction
    /// victim (every other entry was more valuable): the entry is *not*
    /// resident and a lookup will miss. Counted as one insertion plus one
    /// eviction. The global byte budget can likewise evict a just-inserted
    /// entry; that case is not distinguished by this variant.
    Evicted,
    /// Refused by admission control (charge above the configured fraction
    /// of the byte budget).
    Rejected,
}

impl InsertOutcome {
    /// True when the entry is resident after the call (a lookup can hit).
    pub fn is_resident(self) -> bool {
        matches!(self, InsertOutcome::Inserted | InsertOutcome::Replaced)
    }
}

/// Point-in-time copy of the store counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCountersSnapshot {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Entries stored (including replacements).
    pub insertions: u64,
    /// Entries evicted (ways cap or byte budget).
    pub evictions: u64,
    /// Entries refused by admission control.
    pub rejected_admissions: u64,
    /// Estimated kernel nanoseconds saved by hits that actually replaced an
    /// execution (reported via [`MemoStore::note_saved`]).
    pub saved_ns: u64,
    /// Bytes currently charged against the budget.
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

/// How many non-empty buckets a budget eviction samples before asking the
/// policy for a victim. Sampling (rather than scanning every bucket) keeps
/// eviction cost independent of the table size, the same trade-off
/// production caches make.
const EVICTION_SAMPLE_BUCKETS: usize = 8;

/// Bytes an entry is charged for, including the container overhead the THT
/// of the paper under-counted: the `Arc` pointer and reference counts, the
/// `Vec` header, and one `OutputSnapshot` struct (region id, element range,
/// `RegionData` header) per output — not just the payload bytes.
pub fn entry_charge_bytes(outputs: &[OutputSnapshot]) -> usize {
    use std::mem::size_of;
    // Entry metadata: key, producer, charge, sequence numbers, benefit.
    let meta = size_of::<EntryKey>() + size_of::<TaskId>() + 4 * size_of::<u64>();
    // The shared container: the Arc pointer held by the entry, the strong
    // and weak reference counts in the Arc allocation, and the Vec header.
    let container = 3 * size_of::<usize>() + size_of::<Vec<OutputSnapshot>>();
    let payload: usize = outputs
        .iter()
        .map(|s| size_of::<OutputSnapshot>() + s.size_bytes())
        .sum();
    meta + container + payload
}

/// The set-associative, budgeted memo store.
#[derive(Debug)]
pub struct MemoStore {
    buckets: Vec<Bucket>,
    config: StoreConfig,
    policy: Box<dyn EvictionPolicy>,
    /// Cached `policy.uses_recency()` so the read path skips the dyn call.
    track_recency: bool,
    /// Logical clock ticked on every insertion and (for recency policies)
    /// every hit. Deliberately one global padded cell rather than per-bucket:
    /// budget eviction compares `inserted_seq` *across* buckets, which needs
    /// one totally ordered clock domain.
    clock: PaddedU64,
    /// Rotating start bucket for budget evictions.
    evict_cursor: PaddedUsize,
    resident_bytes: PaddedUsize,
    reader_stats: Box<[ReaderShard]>,
    hazards: HazardRegistry,
    /// Observability handle (attached post-construction, see
    /// [`MemoStore::set_observability`]). Store-side decision events are
    /// stamped on `obs_origin`'s clock — monotonic, but not aligned with
    /// any runtime tracer timeline.
    obs: Option<Arc<Observability>>,
    obs_origin: Instant,
}

impl MemoStore {
    /// Creates an empty store with the built-in policy named in `config`.
    pub fn new(config: StoreConfig) -> Self {
        Self::with_policy(config, config.policy.build())
    }

    /// Creates an empty store with a caller-provided eviction policy.
    pub fn with_policy(config: StoreConfig, policy: Box<dyn EvictionPolicy>) -> Self {
        assert!(
            config.bucket_bits <= 20,
            "more than 2^20 buckets is never useful"
        );
        assert!(config.ways >= 1, "each bucket needs at least one way");
        assert!(
            config.max_entry_fraction > 0.0 && config.max_entry_fraction <= 1.0,
            "max_entry_fraction must be in (0, 1]"
        );
        let buckets = (0..(1usize << config.bucket_bits))
            .map(|_| Bucket::new(config.ways))
            .collect();
        let track_recency = policy.uses_recency();
        MemoStore {
            buckets,
            config,
            policy,
            track_recency,
            clock: PaddedU64::default(),
            evict_cursor: PaddedUsize::default(),
            resident_bytes: PaddedUsize::default(),
            reader_stats: (0..READER_SHARDS).map(|_| ReaderShard::default()).collect(),
            hazards: HazardRegistry::new(),
            obs: None,
            obs_origin: Instant::now(),
        }
    }

    /// Attaches an observability handle: insert/evict latencies land in its
    /// histograms and admission-denied/eviction decisions in its decision
    /// stream (sharded by bucket index, since the store does not know which
    /// worker is calling).
    pub fn set_observability(&mut self, obs: Arc<Observability>) {
        self.obs = Some(obs);
    }

    /// The attached handle, but only when it records.
    #[inline]
    fn obs_on(&self) -> Option<&Observability> {
        match &self.obs {
            Some(obs) if obs.is_enabled() => Some(obs),
            _ => None,
        }
    }

    /// Event timestamp on the store's own monotonic clock.
    fn obs_ns(&self) -> u64 {
        u64::try_from(self.obs_origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn record_eviction(
        &self,
        obs: &Observability,
        shard: usize,
        key: &EntryKey,
        producer: TaskId,
        bytes: usize,
    ) {
        obs.record_decision(
            shard,
            DecisionRecord {
                task_type: key.task_type.index() as u32,
                task_id: producer.raw(),
                decision: MemoDecision::Eviction,
                metric_value: bytes as f64,
                tau: 0.0,
                p: f64::from_bits(key.p_bits),
                t_ns: self.obs_ns(),
            },
        );
    }

    /// The store configuration.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// The active eviction policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Number of buckets (`2^bucket_bits`).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, key: &EntryKey) -> usize {
        // Index with the lower N bits of the hash, as in Figure 1.
        (key.hash as usize) & (self.buckets.len() - 1)
    }

    fn tick(&self) -> u64 {
        self.clock.0.fetch_add(1, Ordering::Relaxed)
    }

    #[inline]
    fn reader_shard(&self) -> &ReaderShard {
        &self.reader_stats[thread_ordinal() % READER_SHARDS]
    }

    /// Looks up an entry with exactly this key.
    ///
    /// On the default path this takes **no lock**: each slot of the key's
    /// bucket is read under its seqlock version (protocol 6), and a hit
    /// clones the outputs `Arc` under hazard-pointer protection. Concurrent
    /// lookups — even of the same entry — share no written cache line. With
    /// [`StoreConfig::locked_reads`] the lookup instead takes the bucket's
    /// writer mutex (the A/B baseline). A hit refreshes the entry's recency
    /// stamp (LRU bookkeeping).
    ///
    /// A hit does *not* accrue `saved_ns`: the caller may still execute the
    /// task (dynamic-ATM training, output-shape mismatch), so it reports
    /// genuinely avoided work separately via [`MemoStore::note_saved`].
    pub fn lookup(&self, key: &EntryKey) -> Option<MemoHit> {
        let bucket = &self.buckets[self.bucket_of(key)];
        let found = if self.config.locked_reads {
            self.lookup_locked(bucket, key)
        } else {
            self.lookup_seqlock(bucket, key)
        };
        let shard = self.reader_shard();
        if found.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Protocol 6 reader: per-slot seqlock validation, hazard-protected
    /// `Arc` clone, no lock.
    fn lookup_seqlock(&self, bucket: &Bucket, key: &EntryKey) -> Option<MemoHit> {
        'slots: for slot in bucket.slots.iter() {
            let mut attempts = 0usize;
            loop {
                if attempts > SEQLOCK_RETRY_LIMIT {
                    // Writer starvation (or hazard exhaustion below): one
                    // locked pass is always consistent.
                    return self.lookup_locked(bucket, key);
                }
                attempts += 1;
                // R1: snapshot the version; odd means a writer is mid-publish.
                let v1 = slot.version.load(Ordering::Acquire);
                if v1 & 1 != 0 {
                    std::hint::spin_loop();
                    continue;
                }
                // R2: read the key fields and the outputs pointer.
                let matches = slot.matches(key);
                let producer = slot.producer.load(Ordering::Relaxed);
                let benefit_ns = slot.benefit_ns.load(Ordering::Relaxed);
                let ptr = slot.outputs.load(Ordering::Acquire);
                if ptr.is_null() || !matches {
                    if slot.version.load(Ordering::Acquire) == v1 {
                        // Stable empty-or-mismatch: this slot is not ours.
                        continue 'slots;
                    }
                    continue; // torn read: retry this slot
                }
                // R3: publish the hazard, then revalidate. A validated
                // version proves (in the SeqCst total order) the hazard
                // store precedes any unpublishing writer's version bump,
                // so that writer's hazard scan will see it (see hazard.rs).
                let Some(guard) = self.hazards.claim() else {
                    return self.lookup_locked(bucket, key);
                };
                guard.protect(ptr);
                if slot.version.load(Ordering::SeqCst) != v1 {
                    continue; // torn: guard drops, clearing the hazard
                }
                // SAFETY: hazard published and validated as above, so the
                // allocation cannot be freed before the guard clears.
                let outputs = unsafe { hazard::clone_protected(ptr) };
                drop(guard);
                if self.track_recency {
                    // Plain store, no version bump: a racing replacement can
                    // at worst donate one freshness tick to the slot's new
                    // occupant — an LRU approximation, never a safety issue.
                    slot.last_used_seq.store(self.tick(), Ordering::Relaxed);
                }
                return Some(MemoHit {
                    producer: TaskId::from_raw(producer),
                    outputs,
                    benefit_ns,
                });
            }
        }
        None
    }

    /// The mutex-guarded read path: the A/B baseline and the seqlock
    /// fallback. Holding the bucket writer lock excludes publication, so
    /// slots can be read directly and the `Arc` cloned without a hazard.
    fn lookup_locked(&self, bucket: &Bucket, key: &EntryKey) -> Option<MemoHit> {
        let _writer = bucket.writer.lock();
        for slot in bucket.slots.iter() {
            let ptr = slot.outputs.load(Ordering::Acquire);
            if ptr.is_null() || !slot.matches(key) {
                continue;
            }
            // SAFETY: the bucket writer lock is held, so no writer can
            // unpublish and retire `ptr` concurrently; the slot keeps its
            // strong count alive for the duration.
            let outputs = unsafe { hazard::clone_protected(ptr) };
            if self.track_recency {
                slot.last_used_seq.store(self.tick(), Ordering::Relaxed);
            }
            return Some(MemoHit {
                producer: TaskId::from_raw(slot.producer.load(Ordering::Relaxed)),
                outputs,
                benefit_ns: slot.benefit_ns.load(Ordering::Relaxed),
            });
        }
        None
    }

    /// Records that a hit actually replaced an execution, crediting the
    /// entry's benefit estimate to the `saved_ns` counter. Called by the
    /// engine only when the kernel was genuinely skipped — a training-phase
    /// or shape-mismatched hit executes anyway and saves nothing.
    pub fn note_saved(&self, benefit_ns: u64) {
        self.reader_shard()
            .saved_ns
            .fetch_add(benefit_ns, Ordering::Relaxed);
    }

    /// Stores the outputs of a completed task.
    ///
    /// `benefit_ns` is the caller's estimate of the kernel nanoseconds one
    /// hit on this entry saves (the ATM engine feeds its measured per-type
    /// kernel time); it drives the [`CostAware`](crate::policy::CostAware)
    /// policy and the `saved_ns` counter.
    ///
    /// An entry with the same key is replaced in place (its bytes are
    /// released first, so nothing is double-counted; the slot keeps its
    /// queue position). When the bucket is full or the store exceeds its
    /// byte budget, the policy picks victims until both bounds hold again.
    pub fn insert(
        &self,
        key: EntryKey,
        producer: TaskId,
        outputs: Arc<Vec<OutputSnapshot>>,
        benefit_ns: u64,
    ) -> InsertOutcome {
        let observing = self.obs_on().is_some();
        let insert_start = observing.then(Instant::now);
        let shard = self.bucket_of(&key);
        let bucket = &self.buckets[shard];
        let charged = entry_charge_bytes(&outputs);
        if let Some(budget) = self.config.byte_budget {
            let cap = (budget as f64 * self.config.max_entry_fraction) as usize;
            if charged > cap {
                bucket
                    .stats
                    .rejected_admissions
                    .fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = self.obs_on() {
                    obs.record_decision(
                        shard,
                        DecisionRecord {
                            task_type: key.task_type.index() as u32,
                            task_id: producer.raw(),
                            decision: MemoDecision::AdmissionDenied,
                            metric_value: charged as f64,
                            tau: 0.0,
                            p: f64::from_bits(key.p_bits),
                            t_ns: self.obs_ns(),
                        },
                    );
                    if let Some(start) = insert_start {
                        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        obs.record_latency(LatencyMetric::StoreInsert, shard, ns);
                    }
                }
                return InsertOutcome::Rejected;
            }
        }
        let seq = self.tick();
        // The slot will own one strong count of the outputs.
        let new_ptr = Arc::into_raw(outputs) as *mut Vec<OutputSnapshot>;

        // Count the bytes *before* the entry becomes visible: a concurrent
        // budget eviction may remove the entry (and subtract its charge)
        // the moment the writer lock drops, and the counter must never
        // see a subtraction for bytes that were not yet added (usize
        // wrap-around would read as "over budget" and flush the store).
        self.resident_bytes.0.fetch_add(charged, Ordering::Relaxed);
        let mut freed = 0usize;
        let mut evicted = 0u64;
        let mut self_evicted = false;
        let mut evicted_entries: Vec<(EntryKey, TaskId, usize)> = Vec::new();

        let writer = bucket.writer.lock();
        let slots = &bucket.slots;
        let replaced = if let Some(slot) = slots.iter().find(|s| s.is_occupied() && s.matches(&key))
        {
            // Same key: replace in place, keeping the slot's queue position.
            freed += slot.charged_bytes.load(Ordering::Relaxed) as usize;
            slot.begin_publish();
            slot.write_entry(&key, producer, charged, seq, benefit_ns);
            let old = slot.outputs.swap(new_ptr, Ordering::SeqCst);
            slot.end_publish();
            self.hazards.retire(old);
            true
        } else if let Some(slot) = slots.iter().find(|s| !s.is_occupied()) {
            // Free slot: publish the new entry at the back of the queue.
            slot.begin_publish();
            slot.write_entry(&key, producer, charged, seq, benefit_ns);
            slot.arrival.store(seq, Ordering::Relaxed);
            let old = slot.outputs.swap(new_ptr, Ordering::SeqCst);
            debug_assert!(old.is_null(), "free slot held a pointer");
            slot.end_publish();
            bucket.stats.entries.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            // Full bucket: ask the policy for a victim among the residents
            // (in queue order) plus the incoming entry (at the back).
            let mut order: Vec<usize> = (0..slots.len()).collect();
            order.sort_by_key(|&i| slots[i].arrival.load(Ordering::Relaxed));
            let mut candidates: Vec<Candidate> =
                order.iter().map(|&i| slots[i].candidate()).collect();
            candidates.push(Candidate {
                bytes: charged,
                inserted_seq: seq,
                last_used_seq: seq,
                benefit_ns,
            });
            let victim = self.policy.victim(&candidates).min(candidates.len() - 1);
            evicted += 1;
            if victim == order.len() {
                // The new entry can itself be the least valuable of the
                // full bucket; report that honestly instead of claiming
                // a resident insertion. It was never published, so the
                // strong count comes straight back.
                freed += charged;
                self_evicted = true;
                if observing {
                    evicted_entries.push((key, producer, charged));
                }
                // SAFETY: `new_ptr` came from `Arc::into_raw` above and was
                // never published, so this is the only owner of that count.
                unsafe { drop(Arc::from_raw(new_ptr)) };
            } else {
                let slot = &slots[order[victim]];
                let vbytes = slot.charged_bytes.load(Ordering::Relaxed) as usize;
                freed += vbytes;
                if observing {
                    evicted_entries.push((
                        slot.key(),
                        TaskId::from_raw(slot.producer.load(Ordering::Relaxed)),
                        vbytes,
                    ));
                }
                slot.begin_publish();
                slot.write_entry(&key, producer, charged, seq, benefit_ns);
                slot.arrival.store(seq, Ordering::Relaxed);
                let old = slot.outputs.swap(new_ptr, Ordering::SeqCst);
                slot.end_publish();
                self.hazards.retire(old);
            }
            false
        };
        drop(writer);

        bucket.stats.insertions.fetch_add(1, Ordering::Relaxed);
        bucket.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        // `freed` covers only entries that were visible in the bucket, so
        // their charges are already in the counter.
        self.resident_bytes.0.fetch_sub(freed, Ordering::Relaxed);
        self.enforce_budget();
        if let Some(obs) = self.obs_on() {
            for (ekey, eproducer, ebytes) in &evicted_entries {
                self.record_eviction(obs, shard, ekey, *eproducer, *ebytes);
            }
            if let Some(start) = insert_start {
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                obs.record_latency(LatencyMetric::StoreInsert, shard, ns);
            }
        }
        if replaced {
            InsertOutcome::Replaced
        } else if self_evicted {
            InsertOutcome::Evicted
        } else {
            InsertOutcome::Inserted
        }
    }

    /// Evicts entries (policy-chosen, sampled across buckets) until the
    /// resident bytes fit the budget again.
    fn enforce_budget(&self) {
        let Some(budget) = self.config.byte_budget else {
            return;
        };
        // Each round gathers one candidate sample and evicts as many
        // victims from it as the deficit needs, so reclaiming N entries
        // costs O(N + sample) instead of N full re-samples. Bounded
        // fruitless rounds guard against pathological races (e.g. the
        // counter transiently includes an entry another thread has charged
        // but not yet published).
        let mut fruitless = 0;
        while self.resident_bytes.0.load(Ordering::Relaxed) > budget && fruitless < 8 {
            let round_start = self.obs_on().map(|_| Instant::now());
            if self.evict_round(budget) {
                fruitless = 0;
                if let (Some(obs), Some(start)) = (self.obs_on(), round_start) {
                    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    obs.record_latency(LatencyMetric::StoreEvict, 0, ns);
                }
            } else {
                fruitless += 1;
            }
        }
    }

    /// Samples up to [`EVICTION_SAMPLE_BUCKETS`] non-empty buckets starting
    /// at a rotating cursor, then evicts policy-chosen victims from that
    /// sample until the budget holds or the sample is exhausted. Returns
    /// true when at least one entry was removed.
    fn evict_round(&self, budget: usize) -> bool {
        let n = self.buckets.len();
        let start = self.evict_cursor.0.fetch_add(1, Ordering::Relaxed) % n;
        let mut gathered: Vec<(usize, EntryKey, Candidate)> = Vec::new();
        let mut sampled = 0usize;
        for step in 0..n {
            let b = (start + step) % n;
            let bucket = &self.buckets[b];
            let writer = bucket.writer.lock();
            let mut entries: Vec<(u64, EntryKey, Candidate)> = bucket
                .slots
                .iter()
                .filter(|s| s.is_occupied())
                .map(|s| (s.arrival.load(Ordering::Relaxed), s.key(), s.candidate()))
                .collect();
            drop(writer);
            if entries.is_empty() {
                continue;
            }
            entries.sort_by_key(|e| e.0); // queue order, as the policy expects
            gathered.extend(entries.into_iter().map(|(_, key, cand)| (b, key, cand)));
            sampled += 1;
            if sampled >= EVICTION_SAMPLE_BUCKETS {
                break;
            }
        }

        let mut evicted_any = false;
        while !gathered.is_empty() && self.resident_bytes.0.load(Ordering::Relaxed) > budget {
            let candidates: Vec<Candidate> = gathered.iter().map(|g| g.2).collect();
            let idx = self.policy.victim(&candidates).min(candidates.len() - 1);
            let (b, key, cand) = gathered.swap_remove(idx);
            let bucket = &self.buckets[b];
            let writer = bucket.writer.lock();
            let slot = bucket.slots.iter().find(|s| {
                s.is_occupied()
                    && s.matches(&key)
                    && s.inserted_seq.load(Ordering::Relaxed) == cand.inserted_seq
            });
            // A raced-away victim just drops out of the sample.
            if let Some(slot) = slot {
                let bytes = slot.charged_bytes.load(Ordering::Relaxed) as usize;
                let producer = TaskId::from_raw(slot.producer.load(Ordering::Relaxed));
                slot.begin_publish();
                let old = slot.outputs.swap(ptr::null_mut(), Ordering::SeqCst);
                slot.end_publish();
                self.hazards.retire(old);
                bucket.stats.entries.fetch_sub(1, Ordering::Relaxed);
                bucket.stats.evictions.fetch_add(1, Ordering::Relaxed);
                drop(writer);
                self.resident_bytes.0.fetch_sub(bytes, Ordering::Relaxed);
                evicted_any = true;
                if let Some(obs) = self.obs_on() {
                    self.record_eviction(obs, b, &key, producer, bytes);
                }
            }
        }
        evicted_any
    }

    /// Total number of stored entries (from the per-bucket entry counters,
    /// no locks).
    pub fn len(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.stats.entries.load(Ordering::Relaxed) as usize)
            .sum()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget (keys, container overhead
    /// and outputs), the main contributor to the ATM memory overhead of
    /// Table III.
    pub fn memory_bytes(&self) -> usize {
        self.resident_bytes.0.load(Ordering::Relaxed)
    }

    /// Counter snapshot: one pass over the per-bucket writer blocks plus one
    /// pass over the reader stripes.
    ///
    /// **Consistency model.** Every individual counter is exact and
    /// monotone (gauges — `entries`, `resident_bytes` — are exact values,
    /// not monotone). The snapshot as a whole is *not* linearizable across
    /// counters: it is assembled while other threads run, so transient
    /// cross-counter skew (e.g. an insertion counted whose entry is not yet
    /// in `entries`) is possible. Quiescent snapshots — taken while no
    /// lookup or insert is in flight, which is how every report in this
    /// workspace reads them — are exact in all fields.
    pub fn counters(&self) -> StoreCountersSnapshot {
        let mut snap = StoreCountersSnapshot {
            resident_bytes: self.resident_bytes.0.load(Ordering::Relaxed),
            ..Default::default()
        };
        for bucket in &self.buckets {
            snap.insertions += bucket.stats.insertions.load(Ordering::Relaxed);
            snap.evictions += bucket.stats.evictions.load(Ordering::Relaxed);
            snap.rejected_admissions += bucket.stats.rejected_admissions.load(Ordering::Relaxed);
            snap.entries += bucket.stats.entries.load(Ordering::Relaxed) as usize;
        }
        for shard in self.reader_stats.iter() {
            snap.hits += shard.hits.load(Ordering::Relaxed);
            snap.misses += shard.misses.load(Ordering::Relaxed);
            snap.saved_ns += shard.saved_ns.load(Ordering::Relaxed);
        }
        snap
    }

    /// All resident entries, in bucket order then queue (arrival) order —
    /// the same sequence the old deque-bucket store produced. This is the
    /// view the persistence layer serialises.
    pub fn export(&self) -> Vec<ExportedEntry> {
        let mut out = Vec::new();
        for bucket in &self.buckets {
            let writer = bucket.writer.lock();
            let mut entries: Vec<(u64, ExportedEntry)> = bucket
                .slots
                .iter()
                .filter(|s| s.is_occupied())
                .map(|s| {
                    let ptr = s.outputs.load(Ordering::Acquire);
                    // SAFETY: the bucket writer lock is held, so the slot's
                    // strong count stays alive for the clone.
                    let outputs = unsafe { hazard::clone_protected(ptr) };
                    (
                        s.arrival.load(Ordering::Relaxed),
                        ExportedEntry {
                            key: s.key(),
                            producer: TaskId::from_raw(s.producer.load(Ordering::Relaxed)),
                            benefit_ns: s.benefit_ns.load(Ordering::Relaxed),
                            outputs,
                        },
                    )
                })
                .collect();
            drop(writer);
            entries.sort_by_key(|e| e.0);
            out.extend(entries.into_iter().map(|e| e.1));
        }
        out
    }
}

impl Drop for MemoStore {
    fn drop(&mut self) {
        for bucket in &self.buckets {
            for slot in bucket.slots.iter() {
                let ptr = slot.outputs.swap(ptr::null_mut(), Ordering::SeqCst);
                if !ptr.is_null() {
                    // SAFETY: `&mut self` — no reader can borrow the store,
                    // so no hazard protects the pointer, and each occupied
                    // slot owns exactly one strong count.
                    unsafe { drop(Arc::from_raw(ptr)) };
                }
            }
        }
        self.hazards.drain_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_runtime::{RegionData, RegionId};

    /// Builds the stored outputs directly. The previous helper registered a
    /// fresh `DataStore` region per call and then had
    /// `OutputSnapshot::capture` copy the values back out of it — two
    /// allocations and a full clone of every value slice per stored entry,
    /// for regions the store never dereferences.
    fn snapshot(values: &[f32]) -> Arc<Vec<OutputSnapshot>> {
        Arc::new(vec![OutputSnapshot {
            region: RegionId::from_raw(0),
            elem_range: 0..values.len(),
            data: RegionData::F32(values.to_vec()),
        }])
    }

    fn key(hash: u64) -> EntryKey {
        EntryKey::new(TaskTypeId::from_raw(0), hash, 1.0)
    }

    fn producer(id: u64) -> TaskId {
        TaskId::from_raw(id)
    }

    fn one_bucket(policy: PolicyKind, ways: usize) -> StoreConfig {
        StoreConfig {
            bucket_bits: 0,
            ways,
            policy,
            ..Default::default()
        }
    }

    #[test]
    fn same_key_insert_replaces_without_double_counting() {
        let store = MemoStore::new(one_bucket(PolicyKind::Fifo, 8));
        store.insert(key(1), producer(0), snapshot(&[1.0; 64]), 0);
        let after_first = store.memory_bytes();
        assert!(after_first > 0);
        // Same key again: the entry is replaced in place, the old bytes are
        // released, and nothing is evicted.
        let outcome = store.insert(key(1), producer(1), snapshot(&[2.0; 64]), 0);
        assert_eq!(outcome, InsertOutcome::Replaced);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.memory_bytes(),
            after_first,
            "replacing an equal-sized entry must not change the accounting"
        );
        let counters = store.counters();
        assert_eq!(counters.insertions, 2);
        assert_eq!(counters.evictions, 0);
        // The replacement's outputs win.
        let hit = store.lookup(&key(1)).unwrap();
        assert_eq!(hit.outputs[0].data.as_f32(), &[2.0; 64]);
        assert_eq!(hit.producer, producer(1));
    }

    #[test]
    fn charge_includes_container_overhead() {
        let outputs = snapshot(&[0.0; 100]);
        let charge = entry_charge_bytes(&outputs);
        let payload = 400; // 100 f32
        assert!(
            charge > payload + std::mem::size_of::<OutputSnapshot>(),
            "charge {charge} must cover the payload plus per-output and container overhead"
        );
    }

    #[test]
    fn global_budget_is_enforced_across_shards() {
        // 16 buckets, generous ways: only the global budget can evict.
        let config = StoreConfig {
            bucket_bits: 4,
            ways: 1024,
            ..Default::default()
        }
        .with_byte_budget(8 * 1024);
        let store = MemoStore::new(config);
        for i in 0..64u64 {
            // Distinct buckets (low bits vary).
            store.insert(key(i), producer(i), snapshot(&[i as f32; 256]), 0);
        }
        assert!(
            store.memory_bytes() <= 8 * 1024,
            "resident bytes {} exceed the budget",
            store.memory_bytes()
        );
        let counters = store.counters();
        assert!(counters.evictions > 0, "the budget must have evicted");
        assert_eq!(counters.entries, store.len());
    }

    #[test]
    fn admission_control_rejects_oversized_entries() {
        let config = StoreConfig::default()
            .with_byte_budget(4096)
            .with_max_entry_fraction(0.25);
        let store = MemoStore::new(config);
        // 2048 payload bytes > 25% of 4096.
        let outcome = store.insert(key(1), producer(0), snapshot(&[1.0; 512]), 0);
        assert_eq!(outcome, InsertOutcome::Rejected);
        assert!(store.is_empty());
        assert_eq!(store.counters().rejected_admissions, 1);
        // A small entry is admitted.
        let outcome = store.insert(key(2), producer(0), snapshot(&[1.0; 8]), 0);
        assert_eq!(outcome, InsertOutcome::Inserted);
        assert_eq!(store.counters().insertions, 1);
    }

    #[test]
    fn lru_keeps_recently_hit_entries_under_pressure() {
        let store = MemoStore::new(one_bucket(PolicyKind::Lru, 2));
        store.insert(key(1), producer(1), snapshot(&[1.0]), 0);
        store.insert(key(2), producer(2), snapshot(&[2.0]), 0);
        // Touch entry 1 so entry 2 becomes the LRU victim.
        assert!(store.lookup(&key(1)).is_some());
        store.insert(key(3), producer(3), snapshot(&[3.0]), 0);
        assert!(
            store.lookup(&key(1)).is_some(),
            "recently used must survive"
        );
        assert!(store.lookup(&key(2)).is_none(), "LRU entry must be evicted");
        assert!(store.lookup(&key(3)).is_some());
    }

    #[test]
    fn self_evicting_insert_is_reported_not_claimed_resident() {
        let store = MemoStore::new(one_bucket(PolicyKind::CostAware, 2));
        // Two high-density residents fill the bucket…
        store.insert(key(1), producer(1), snapshot(&[1.0; 2]), 1_000_000);
        store.insert(key(2), producer(2), snapshot(&[2.0; 2]), 1_000_000);
        // …so a low-density newcomer is its own victim.
        let outcome = store.insert(key(3), producer(3), snapshot(&[3.0; 512]), 10);
        assert_eq!(outcome, InsertOutcome::Evicted);
        assert!(!outcome.is_resident());
        assert!(store.lookup(&key(3)).is_none());
        assert!(store.lookup(&key(1)).is_some());
        assert!(store.lookup(&key(2)).is_some());
        let counters = store.counters();
        assert_eq!(counters.insertions, 3);
        assert_eq!(counters.evictions, 1);
        assert_eq!(counters.entries, 2);
    }

    #[test]
    fn cost_aware_keeps_high_benefit_density_entries() {
        let store = MemoStore::new(one_bucket(PolicyKind::CostAware, 2));
        // Expensive kernel, small output: high benefit density.
        store.insert(key(1), producer(1), snapshot(&[1.0; 2]), 1_000_000);
        // Cheap kernel, large output: low benefit density.
        store.insert(key(2), producer(2), snapshot(&[2.0; 512]), 1_000);
        store.insert(key(3), producer(3), snapshot(&[3.0; 2]), 500_000);
        assert!(
            store.lookup(&key(1)).is_some(),
            "high-density entry must survive"
        );
        assert!(
            store.lookup(&key(2)).is_none(),
            "low-density entry must be the victim"
        );
    }

    #[test]
    fn fifo_with_unlimited_budget_matches_the_paper_tht() {
        let store = MemoStore::new(one_bucket(PolicyKind::Fifo, 2));
        for hash_high in 0..4u64 {
            store.insert(
                key(hash_high << 32),
                producer(hash_high),
                snapshot(&[hash_high as f32]),
                0,
            );
        }
        assert_eq!(store.len(), 2);
        let counters = store.counters();
        assert_eq!(counters.insertions, 4);
        assert_eq!(counters.evictions, 2);
        assert!(store.lookup(&key(2 << 32)).is_some());
        assert!(store.lookup(&key(3 << 32)).is_some());
        assert!(store.lookup(&key(0)).is_none());
    }

    #[test]
    fn saved_ns_counts_only_reported_bypasses() {
        let store = MemoStore::new(StoreConfig::default());
        store.insert(key(9), producer(0), snapshot(&[1.0]), 750);
        // A lookup alone saves nothing — the caller may execute anyway.
        let hit = store.lookup(&key(9)).unwrap();
        assert_eq!(store.counters().saved_ns, 0);
        // The caller reports the hits that genuinely replaced an execution.
        store.note_saved(hit.benefit_ns);
        store.note_saved(hit.benefit_ns);
        assert!(store.lookup(&key(10)).is_none());
        let counters = store.counters();
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.misses, 1);
        assert_eq!(counters.saved_ns, 1500);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_is_rejected() {
        let _ = MemoStore::new(StoreConfig {
            ways: 0,
            ..Default::default()
        });
    }

    #[test]
    fn locked_reads_sees_the_same_entries() {
        let store = MemoStore::new(StoreConfig {
            locked_reads: true,
            ..one_bucket(PolicyKind::Lru, 4)
        });
        store.insert(key(1), producer(1), snapshot(&[1.0; 4]), 100);
        store.insert(key(2), producer(2), snapshot(&[2.0; 4]), 200);
        let hit = store.lookup(&key(2)).unwrap();
        assert_eq!(hit.producer, producer(2));
        assert_eq!(hit.benefit_ns, 200);
        assert_eq!(hit.outputs[0].data.as_f32(), &[2.0; 4]);
        assert!(store.lookup(&key(3)).is_none());
        let counters = store.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
    }

    #[test]
    fn concurrent_readers_survive_replacement_storms() {
        // Hammer one key with concurrent replacements while readers spin on
        // the seqlock path: every hit must observe a fully published entry
        // (uniform payload, matching producer parity).
        let store = MemoStore::new(one_bucket(PolicyKind::Fifo, 2));
        store.insert(key(7), producer(0), snapshot(&[0.0; 32]), 0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..20_000 {
                        if let Some(hit) = store.lookup(&key(7)) {
                            let values = hit.outputs[0].data.as_f32();
                            let first = values[0];
                            assert!(values.iter().all(|v| *v == first), "torn payload");
                            assert_eq!(
                                hit.producer,
                                producer(first as u64),
                                "producer and payload must publish atomically"
                            );
                        }
                    }
                });
            }
            scope.spawn(|| {
                for i in 1..=2_000u64 {
                    store.insert(key(7), producer(i), snapshot(&[i as f32; 32]), 0);
                }
            });
        });
        let hit = store.lookup(&key(7)).unwrap();
        assert_eq!(hit.producer, producer(2_000));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn observability_records_latencies_and_store_decisions() {
        let obs = Arc::new(Observability::enabled());
        let mut store = MemoStore::new(one_bucket(PolicyKind::Fifo, 1));
        store.set_observability(Arc::clone(&obs));

        // Two distinct keys into a 1-way bucket: the second insert evicts
        // the first (FIFO).
        store.insert(key(1), producer(0), snapshot(&[1.0; 8]), 0);
        store.insert(key(2), producer(1), snapshot(&[2.0; 8]), 0);

        let decisions = obs.decisions();
        assert_eq!(decisions.count(0, MemoDecision::Eviction), 1);
        let evicted = &decisions.records_for(0)[0];
        assert_eq!(evicted.decision, MemoDecision::Eviction);
        assert_eq!(evicted.task_id, 0, "the FIFO victim is the first producer");
        assert!(evicted.metric_value > 0.0, "eviction reports freed bytes");
        let metrics = obs.metrics();
        assert_eq!(metrics.get(LatencyMetric::StoreInsert).count, 2);

        // A tiny admission cap refuses the entry and says so.
        let mut capped = MemoStore::new(StoreConfig {
            byte_budget: Some(64),
            max_entry_fraction: 0.1,
            ..one_bucket(PolicyKind::Fifo, 8)
        });
        capped.set_observability(Arc::clone(&obs));
        let outcome = capped.insert(key(3), producer(7), snapshot(&[3.0; 64]), 0);
        assert_eq!(outcome, InsertOutcome::Rejected);
        assert_eq!(obs.decisions().count(0, MemoDecision::AdmissionDenied), 1);
    }

    #[test]
    fn disabled_observability_leaves_the_store_silent() {
        let obs = Arc::new(Observability::disabled());
        let mut store = MemoStore::new(one_bucket(PolicyKind::Fifo, 1));
        store.set_observability(Arc::clone(&obs));
        store.insert(key(1), producer(0), snapshot(&[1.0; 8]), 0);
        store.insert(key(2), producer(1), snapshot(&[2.0; 8]), 0);
        assert_eq!(obs.decisions().total(), 0);
        assert_eq!(obs.metrics().get(LatencyMetric::StoreInsert).count, 0);
    }
}
