//! Property tests for the memo-store snapshot format, driven by the
//! workspace's deterministic PRNG (the repo's replacement for proptest):
//! randomly generated stores must round-trip exactly, and *any* single-byte
//! corruption or truncation must be rejected with an error — never
//! undefined behaviour, a panic, or a silently wrong table.

use atm_hash::prng::Xoshiro256StarStar;
use atm_runtime::{DataStore, ElemType, RegionData, RegionId, TaskId, TaskTypeId};
use atm_store::snapshot::OutputSnapshot;
use atm_store::{EntryKey, MemoStore, PersistError, StoreConfig};
use std::sync::Arc;

const CASES: usize = 24;

/// Draws a random `RegionData` of a random element type and length.
fn random_region_data(rng: &mut Xoshiro256StarStar) -> RegionData {
    let len = (rng.next_u64() % 33) as usize;
    match rng.next_u64() % 5 {
        0 => RegionData::F32(
            (0..len)
                .map(|_| f32::from_bits(rng.next_u64() as u32))
                .collect(),
        ),
        1 => RegionData::F64((0..len).map(|_| f64::from_bits(rng.next_u64())).collect()),
        2 => RegionData::I32((0..len).map(|_| rng.next_u64() as i32).collect()),
        3 => RegionData::I64((0..len).map(|_| rng.next_u64() as i64).collect()),
        _ => RegionData::U8((0..len).map(|_| rng.next_u64() as u8).collect()),
    }
}

/// Builds a store with random entries (random keys, types, output shapes).
fn random_store(rng: &mut Xoshiro256StarStar) -> MemoStore {
    let store = MemoStore::new(StoreConfig {
        bucket_bits: (rng.next_u64() % 5) as u32,
        ways: 64,
        ..Default::default()
    });
    let entries = rng.next_u64() % 12;
    for i in 0..entries {
        let n_outputs = 1 + rng.next_u64() % 3;
        let outputs: Vec<OutputSnapshot> = (0..n_outputs)
            .map(|o| {
                let data = random_region_data(rng);
                let start = (rng.next_u64() % 1000) as usize;
                OutputSnapshot {
                    region: RegionId::from_raw((i * 8 + o) as u32),
                    elem_range: start..start + data.len(),
                    data,
                }
            })
            .collect();
        let key = EntryKey {
            task_type: TaskTypeId::from_raw((rng.next_u64() % 7) as u32),
            // Distinct hashes so nothing replaces a previous entry.
            hash: (rng.next_u64() << 8) | i,
            p_bits: rng.next_u64(),
        };
        store.insert(
            key,
            TaskId::from_raw(rng.next_u64()),
            Arc::new(outputs),
            rng.next_u64() % 1_000_000,
        );
    }
    store
}

#[test]
fn snapshot_round_trip_reproduces_hits_for_every_stored_key() {
    let mut rng = Xoshiro256StarStar::new(0xA7A5_7AB1_E000);
    for case in 0..CASES {
        let store = random_store(&mut rng);
        let bytes = store.to_snapshot_bytes();

        let reloaded = MemoStore::new(StoreConfig::default());
        let admitted = reloaded
            .absorb_snapshot_bytes(&bytes)
            .unwrap_or_else(|err| panic!("case {case}: decoding a valid snapshot failed: {err}"));
        assert_eq!(admitted, store.len(), "case {case}: every entry reloads");

        for entry in store.export() {
            let hit = reloaded.lookup(&entry.key).unwrap_or_else(|| {
                panic!(
                    "case {case}: stored key {:?} must hit after reload",
                    entry.key
                )
            });
            assert_eq!(hit.producer, entry.producer, "case {case}");
            assert_eq!(hit.benefit_ns, entry.benefit_ns, "case {case}");
            // Random bit patterns include NaNs, for which PartialEq lies;
            // compare shapes directly and payloads through their serialised
            // bytes (bit-exact, NaN-safe).
            assert_eq!(hit.outputs.len(), entry.outputs.len(), "case {case}");
            for (got, expected) in hit.outputs.iter().zip(entry.outputs.iter()) {
                assert_eq!(got.region, expected.region, "case {case}");
                assert_eq!(got.elem_range, expected.elem_range, "case {case}");
                assert_eq!(
                    got.data.to_bytes(),
                    expected.data.to_bytes(),
                    "case {case}: payload bytes differ"
                );
            }
        }

        // Serialising the reloaded store reproduces an equivalent snapshot
        // (entry order may differ across bucket geometries, so compare
        // through a second reload rather than byte-for-byte).
        let twice = MemoStore::new(StoreConfig::default());
        twice
            .absorb_snapshot_bytes(&reloaded.to_snapshot_bytes())
            .unwrap();
        assert_eq!(twice.len(), store.len());
    }
}

#[test]
fn every_single_byte_flip_is_rejected_not_misread() {
    let mut rng = Xoshiro256StarStar::new(0xC044_FFEE);
    let store = random_store(&mut rng);
    assert!(!store.is_empty(), "corruption test needs a non-empty store");
    let bytes = store.to_snapshot_bytes();

    for pos in 0..bytes.len() {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x5A;
        let fresh = MemoStore::new(StoreConfig::default());
        let result = fresh.absorb_snapshot_bytes(&corrupted);
        assert!(
            result.is_err(),
            "flipping byte {pos} of {} must be detected, not silently accepted",
            bytes.len()
        );
        assert!(
            fresh.is_empty(),
            "a rejected snapshot must not leave partial entries behind"
        );
    }
}

#[test]
fn random_truncations_and_garbage_are_rejected() {
    let mut rng = Xoshiro256StarStar::new(0x72C4_7E00);
    let store = random_store(&mut rng);
    let bytes = store.to_snapshot_bytes();

    for _ in 0..64 {
        let cut = (rng.next_u64() as usize) % bytes.len();
        let fresh = MemoStore::new(StoreConfig::default());
        assert!(fresh.absorb_snapshot_bytes(&bytes[..cut]).is_err());
    }

    // Pure garbage of various sizes.
    for len in [0usize, 1, 7, 8, 19, 64, 1024] {
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let fresh = MemoStore::new(StoreConfig::default());
        assert!(matches!(
            fresh.absorb_snapshot_bytes(&garbage),
            Err(PersistError::Truncated) | Err(PersistError::BadMagic)
        ));
    }
}

#[test]
fn checksum_trailer_flips_are_reported_as_checksum_mismatch() {
    let mut rng = Xoshiro256StarStar::new(42);
    let store = random_store(&mut rng);
    let mut bytes = store.to_snapshot_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    let fresh = MemoStore::new(StoreConfig::default());
    assert!(matches!(
        fresh.absorb_snapshot_bytes(&bytes),
        Err(PersistError::ChecksumMismatch { .. })
    ));
}

#[test]
fn region_data_survives_with_exact_bit_patterns() {
    // NaN payloads, signalling bit patterns, negative zero: the snapshot
    // stores raw little-endian bytes, so everything must round-trip
    // bit-exactly (PartialEq on f32/f64 would hide NaN round-trips, so
    // compare serialised bytes).
    let tricky = [
        RegionData::F64(vec![f64::NAN, -0.0, f64::INFINITY, f64::MIN_POSITIVE]),
        RegionData::F32(vec![f32::NAN, -0.0, f32::NEG_INFINITY]),
    ];
    let store = MemoStore::new(StoreConfig::default());
    for (i, data) in tricky.iter().enumerate() {
        store.insert(
            EntryKey::new(TaskTypeId::from_raw(0), i as u64, 1.0),
            TaskId::from_raw(0),
            Arc::new(vec![OutputSnapshot {
                region: RegionId::from_raw(i as u32),
                elem_range: 0..data.len(),
                data: data.clone(),
            }]),
            0,
        );
    }
    let reloaded = MemoStore::new(StoreConfig::default());
    reloaded
        .absorb_snapshot_bytes(&store.to_snapshot_bytes())
        .unwrap();
    for (i, data) in tricky.iter().enumerate() {
        let hit = reloaded
            .lookup(&EntryKey::new(TaskTypeId::from_raw(0), i as u64, 1.0))
            .unwrap();
        assert_eq!(hit.outputs[0].data.to_bytes(), data.to_bytes());
    }
    // DataStore interop sanity: the reloaded data still registers.
    let ds = DataStore::new();
    let id = ds.try_register("tricky", tricky[0].clone()).unwrap();
    assert_eq!(ds.elem_type(id), ElemType::F64);
}
