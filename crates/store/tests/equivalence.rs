//! Observational equivalence of the seqlock set-associative store against a
//! reference model of the old mutex-guarded deque-bucket store.
//!
//! The lock-free rebuild of `MemoStore` (CONCURRENCY.md, protocol 6) is only
//! a performance change: single-threaded, every program must produce exactly
//! the hit/miss/outcome sequence, the same counters, the same export order
//! and a byte-identical persistence snapshot as the old implementation. The
//! reference model below *is* the old implementation's semantics — one
//! `VecDeque` per bucket, replace-in-place keeping the queue position, the
//! policy consulted over deque-ordered candidates with the incoming entry
//! last, a logical clock ticked on every insertion and on recency hits —
//! driven through the same `EvictionPolicy` objects as the real store.

use atm_hash::prng::Xoshiro256StarStar;
use atm_runtime::{RegionData, RegionId, TaskId, TaskTypeId};
use atm_store::snapshot::OutputSnapshot;
use atm_store::{Candidate, EntryKey, InsertOutcome, MemoStore, PolicyKind, StoreConfig};
use std::collections::VecDeque;
use std::sync::Arc;

struct RefEntry {
    key: EntryKey,
    producer: TaskId,
    values: Vec<f32>,
    charged: usize,
    inserted_seq: u64,
    last_used_seq: u64,
    benefit_ns: u64,
}

/// The old store, as a single-threaded model.
struct RefStore {
    buckets: Vec<VecDeque<RefEntry>>,
    policy: Box<dyn atm_store::EvictionPolicy>,
    ways: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl RefStore {
    fn new(config: StoreConfig) -> Self {
        RefStore {
            buckets: (0..(1usize << config.bucket_bits))
                .map(|_| VecDeque::new())
                .collect(),
            policy: config.policy.build(),
            ways: config.ways,
            clock: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        let t = self.clock;
        self.clock += 1;
        t
    }

    fn bucket_of(&self, key: &EntryKey) -> usize {
        (key.hash as usize) & (self.buckets.len() - 1)
    }

    fn lookup(&mut self, key: &EntryKey) -> Option<(TaskId, Vec<f32>, u64)> {
        let track = self.policy.uses_recency();
        let b = self.bucket_of(key);
        // Newest-entry-wins, as the old `.iter().rev().find(..)`.
        let Some(pos) = self.buckets[b].iter().rposition(|e| e.key == *key) else {
            self.misses += 1;
            return None;
        };
        // The old store ticked the clock only on recency-tracking hits.
        let seq = track.then(|| self.tick());
        let e = &mut self.buckets[b][pos];
        if let Some(seq) = seq {
            e.last_used_seq = seq;
        }
        self.hits += 1;
        Some((e.producer, e.values.clone(), e.benefit_ns))
    }

    fn insert(
        &mut self,
        key: EntryKey,
        producer: TaskId,
        values: Vec<f32>,
        charged: usize,
        benefit_ns: u64,
    ) -> InsertOutcome {
        let seq = self.tick();
        let b = self.bucket_of(&key);
        let ways = self.ways;
        let entry = RefEntry {
            key,
            producer,
            values,
            charged,
            inserted_seq: seq,
            last_used_seq: seq,
            benefit_ns,
        };
        let bucket = &mut self.buckets[b];
        let mut self_evicted = false;
        let replaced = if let Some(pos) = bucket.iter().position(|e| e.key == key) {
            bucket[pos] = entry;
            true
        } else {
            bucket.push_back(entry);
            while bucket.len() > ways {
                let candidates: Vec<Candidate> = bucket
                    .iter()
                    .map(|e| Candidate {
                        bytes: e.charged,
                        inserted_seq: e.inserted_seq,
                        last_used_seq: e.last_used_seq,
                        benefit_ns: e.benefit_ns,
                    })
                    .collect();
                let victim = self.policy.victim(&candidates).min(bucket.len() - 1);
                if let Some(old) = bucket.remove(victim) {
                    self.evictions += 1;
                    self_evicted |= old.inserted_seq == seq;
                }
            }
            false
        };
        self.insertions += 1;
        if replaced {
            InsertOutcome::Replaced
        } else if self_evicted {
            InsertOutcome::Evicted
        } else {
            InsertOutcome::Inserted
        }
    }

    /// Bucket order then queue order — the old `export()` view.
    fn export(&self) -> Vec<(EntryKey, TaskId, u64, Vec<f32>)> {
        self.buckets
            .iter()
            .flat_map(|b| {
                b.iter()
                    .map(|e| (e.key, e.producer, e.benefit_ns, e.values.clone()))
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.buckets.iter().map(VecDeque::len).sum()
    }
}

fn snapshot(values: &[f32]) -> Arc<Vec<OutputSnapshot>> {
    Arc::new(vec![OutputSnapshot {
        region: RegionId::from_raw(0),
        elem_range: 0..values.len(),
        data: RegionData::F32(values.to_vec()),
    }])
}

/// Runs one random program against the real store and the reference model,
/// asserting per-operation equivalence and final-state equality.
fn run_program(config: StoreConfig, seed: u64) {
    let store = MemoStore::new(config);
    let mut reference = RefStore::new(config);
    let mut rng = Xoshiro256StarStar::new(seed);

    for op in 0..400 {
        // A small keyspace so lookups hit and buckets overflow.
        let task_type = TaskTypeId::from_raw((rng.next_u64() % 3) as u32);
        let hash = rng.next_u64() % 24;
        let p = if rng.next_u64().is_multiple_of(2) {
            1.0
        } else {
            0.5
        };
        let key = EntryKey::new(task_type, hash, p);

        if rng.next_u64() % 5 < 3 {
            let len = 1 + (rng.next_u64() % 8) as usize;
            let fill = (rng.next_u64() % 1024) as f32;
            let values = vec![fill; len];
            let producer = TaskId::from_raw(rng.next_u64() % 1024);
            let benefit_ns = rng.next_u64() % 1_000;
            let outputs = snapshot(&values);
            let charged = atm_store::entry_charge_bytes(&outputs);
            let real = store.insert(key, producer, outputs, benefit_ns);
            let model = reference.insert(key, producer, values, charged, benefit_ns);
            assert_eq!(
                real, model,
                "insert outcome diverged at op {op} (seed {seed})"
            );
        } else {
            let real = store.lookup(&key);
            let model = reference.lookup(&key);
            match (&real, &model) {
                (None, None) => {}
                (Some(hit), Some((producer, values, benefit_ns))) => {
                    assert_eq!(hit.producer, *producer, "producer diverged at op {op}");
                    assert_eq!(hit.benefit_ns, *benefit_ns, "benefit diverged at op {op}");
                    assert_eq!(
                        hit.outputs[0].data.as_f32(),
                        values.as_slice(),
                        "outputs diverged at op {op} (seed {seed})"
                    );
                }
                _ => panic!(
                    "hit/miss diverged at op {op} (seed {seed}): real={} model={}",
                    real.is_some(),
                    model.is_some()
                ),
            }
        }
    }

    // Final state: counters…
    let counters = store.counters();
    assert_eq!(counters.hits, reference.hits, "hits (seed {seed})");
    assert_eq!(counters.misses, reference.misses, "misses (seed {seed})");
    assert_eq!(
        counters.insertions, reference.insertions,
        "insertions (seed {seed})"
    );
    assert_eq!(
        counters.evictions, reference.evictions,
        "evictions (seed {seed})"
    );
    assert_eq!(counters.entries, reference.len(), "entries (seed {seed})");

    // …export view, in the old store's bucket-then-queue order…
    let exported = store.export();
    let model_export = reference.export();
    assert_eq!(
        exported.len(),
        model_export.len(),
        "export len (seed {seed})"
    );
    for (i, (real, model)) in exported.iter().zip(&model_export).enumerate() {
        assert_eq!(real.key, model.0, "export key order at {i} (seed {seed})");
        assert_eq!(real.producer, model.1, "export producer at {i}");
        assert_eq!(real.benefit_ns, model.2, "export benefit at {i}");
        assert_eq!(real.outputs[0].data.as_f32(), model.3.as_slice());
    }

    // …and a persistence snapshot that depends only on that view: a store
    // rebuilt by inserting the reference model's entries in its export order
    // reproduces the same per-bucket arrival order, so its snapshot must be
    // byte-identical to the real store's. (The format itself is unchanged —
    // `encode_entries` is a pure function of the export sequence.)
    let bytes = store.to_snapshot_bytes();
    let rebuilt = MemoStore::new(config);
    for (key, producer, benefit_ns, values) in &model_export {
        rebuilt.insert(*key, *producer, snapshot(values), *benefit_ns);
    }
    assert_eq!(
        rebuilt.to_snapshot_bytes(),
        bytes,
        "snapshot bytes must match a store rebuilt from the model (seed {seed})"
    );
}

#[test]
fn seqlock_store_is_observationally_equivalent_to_the_deque_store() {
    let mut seed = 0x5E01_0C4A_u64;
    for policy in [PolicyKind::Fifo, PolicyKind::Lru, PolicyKind::CostAware] {
        for ways in [1usize, 2, 4] {
            for bucket_bits in [0u32, 2] {
                for locked_reads in [false, true] {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let mut config = StoreConfig::paper(bucket_bits, ways).with_policy(policy);
                    config.locked_reads = locked_reads;
                    run_program(config, seed);
                }
            }
        }
    }
}
