//! Task data-access annotations.
//!
//! These are the runtime-level equivalent of the `in(...)`, `out(...)` and
//! `inout(...)` clauses of OmpSs / OpenMP 4.0 task pragmas. Every submitted
//! task carries a list of [`Access`]es; the dependence tracker derives the
//! task dependence graph from overlaps between them, and the ATM engine uses
//! the `In`/`InOut` accesses as the bytes to hash and the `Out`/`InOut`
//! accesses as the outputs to memoize.
//!
//! Accesses are declared through typed [`Region<T>`] handles
//! ([`Access::read`], [`Access::write`], [`Access::read_write`]), so the
//! element type is derived from the handle instead of being restated by the
//! caller — the class of hash/copy-width mismatches the untyped constructors
//! allowed is ruled out by construction, and the submission validator
//! double-checks the derived type against the store.

use crate::region::{Elem, ElemType, Region, RegionId};
use std::ops::Range;

/// Direction of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// The task only reads the data (`in` clause).
    In,
    /// The task only produces the data (`out` clause).
    Out,
    /// The task reads and updates the data (`inout` clause).
    InOut,
}

impl AccessMode {
    /// True for `In` and `InOut`: the bytes participate in the hash key.
    pub fn is_read(self) -> bool {
        matches!(self, AccessMode::In | AccessMode::InOut)
    }

    /// True for `Out` and `InOut`: the bytes are produced by the task and
    /// stored in the Task History Table when it is memoizable.
    pub fn is_write(self) -> bool {
        matches!(self, AccessMode::Out | AccessMode::InOut)
    }
}

impl std::fmt::Display for AccessMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            AccessMode::In => "in",
            AccessMode::Out => "out",
            AccessMode::InOut => "inout",
        };
        f.write_str(name)
    }
}

/// One data access of a task: a byte range of a region, with a direction and
/// the element type of the accessed data (the paper extends the runtime API
/// with element types to enable type-aware input selection, §III-C).
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// The region being accessed.
    pub region: RegionId,
    /// Byte range inside the region. `None` means the whole region.
    pub range: Option<Range<usize>>,
    /// Access direction.
    pub mode: AccessMode,
    /// Element type of the accessed data, derived from the [`Region<T>`]
    /// handle the access was declared through.
    pub elem: ElemType,
}

impl Access {
    /// Whole-region read access through a typed handle (`in` clause).
    pub fn read<T: Elem>(region: &Region<T>) -> Self {
        Access {
            region: region.id(),
            range: None,
            mode: AccessMode::In,
            elem: T::ELEM,
        }
    }

    /// Whole-region write access through a typed handle (`out` clause).
    pub fn write<T: Elem>(region: &Region<T>) -> Self {
        Access {
            region: region.id(),
            range: None,
            mode: AccessMode::Out,
            elem: T::ELEM,
        }
    }

    /// Whole-region read-write access through a typed handle (`inout` clause).
    pub fn read_write<T: Elem>(region: &Region<T>) -> Self {
        Access {
            region: region.id(),
            range: None,
            mode: AccessMode::InOut,
            elem: T::ELEM,
        }
    }

    /// Restricts the access to a byte range of the region.
    #[must_use]
    pub fn with_range(mut self, range: Range<usize>) -> Self {
        self.range = Some(range);
        self
    }

    /// True when this access byte-overlaps `other` (same region and
    /// intersecting ranges; `None` ranges cover the whole region).
    pub fn overlaps(&self, other: &Access) -> bool {
        if self.region != other.region {
            return false;
        }
        match (&self.range, &other.range) {
            (None, _) | (_, None) => true,
            (Some(a), Some(b)) => a.start.max(b.start) < a.end.min(b.end),
        }
    }

    /// True when the pair of accesses creates a dependence (at least one of
    /// the two writes and the ranges overlap).
    pub fn conflicts_with(&self, other: &Access) -> bool {
        (self.mode.is_write() || other.mode.is_write()) && self.overlaps(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::DataStore;

    fn regions(n: usize) -> (DataStore, Vec<Region<f32>>) {
        let store = DataStore::new();
        let handles = (0..n)
            .map(|i| store.register_zeros::<f32>(format!("r{i}"), 256).unwrap())
            .collect();
        (store, handles)
    }

    #[test]
    fn mode_classification() {
        assert!(AccessMode::In.is_read());
        assert!(!AccessMode::In.is_write());
        assert!(!AccessMode::Out.is_read());
        assert!(AccessMode::Out.is_write());
        assert!(AccessMode::InOut.is_read());
        assert!(AccessMode::InOut.is_write());
    }

    #[test]
    fn typed_constructors_derive_the_element_type() {
        let store = DataStore::new();
        let floats = store.register_zeros::<f64>("floats", 4).unwrap();
        let ints = store.register_zeros::<i32>("ints", 4).unwrap();
        assert_eq!(Access::read(&floats).elem, ElemType::F64);
        assert_eq!(Access::write(&floats).mode, AccessMode::Out);
        let rw = Access::read_write(&ints);
        assert_eq!(rw.elem, ElemType::I32);
        assert_eq!(rw.mode, AccessMode::InOut);
        assert_eq!(rw.region, ints.id());
    }

    #[test]
    fn whole_region_accesses_always_overlap_same_region() {
        let (_store, r) = regions(2);
        let a = Access::read(&r[0]);
        let b = Access::write(&r[0]);
        let c = Access::write(&r[1]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn ranged_overlap_detection() {
        let (_store, r) = regions(1);
        let a = Access::write(&r[0]).with_range(0..10);
        let b = Access::read(&r[0]).with_range(10..20);
        let c = Access::read(&r[0]).with_range(5..15);
        assert!(
            !a.overlaps(&b),
            "touching but disjoint ranges do not overlap"
        );
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn conflicts_require_a_writer() {
        let (_store, r) = regions(1);
        let read_a = Access::read(&r[0]);
        let read_b = Access::read(&r[0]);
        let write = Access::write(&r[0]);
        assert!(!read_a.conflicts_with(&read_b), "two reads never conflict");
        assert!(read_a.conflicts_with(&write));
        assert!(write.conflicts_with(&read_a));
        assert!(write.conflicts_with(&write.clone()));
    }

    #[test]
    fn ranged_whole_region_mix_overlaps() {
        let (_store, r) = regions(1);
        let whole = Access::read_write(&r[0]);
        let part = Access::read(&r[0]).with_range(100..200);
        assert!(whole.overlaps(&part));
        assert!(part.conflicts_with(&whole));
    }

    #[test]
    fn empty_range_never_overlaps() {
        let (_store, r) = regions(1);
        let empty = Access::read(&r[0]).with_range(5..5);
        let other = Access::write(&r[0]).with_range(0..10);
        assert!(!empty.overlaps(&other));
    }
}
