//! Task data-access annotations.
//!
//! These are the runtime-level equivalent of the `in(...)`, `out(...)` and
//! `inout(...)` clauses of OmpSs / OpenMP 4.0 task pragmas. Every submitted
//! task carries a list of [`Access`]es; the dependence tracker derives the
//! task dependence graph from overlaps between them, and the ATM engine uses
//! the `In`/`InOut` accesses as the bytes to hash and the `Out`/`InOut`
//! accesses as the outputs to memoize.

use crate::region::{ElemType, RegionId};
use std::ops::Range;

/// Direction of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// The task only reads the data (`in` clause).
    In,
    /// The task only produces the data (`out` clause).
    Out,
    /// The task reads and updates the data (`inout` clause).
    InOut,
}

impl AccessMode {
    /// True for `In` and `InOut`: the bytes participate in the hash key.
    pub fn is_read(self) -> bool {
        matches!(self, AccessMode::In | AccessMode::InOut)
    }

    /// True for `Out` and `InOut`: the bytes are produced by the task and
    /// stored in the Task History Table when it is memoizable.
    pub fn is_write(self) -> bool {
        matches!(self, AccessMode::Out | AccessMode::InOut)
    }
}

/// One data access of a task: a byte range of a region, with a direction and
/// the element type of the accessed data (the paper extends the runtime API
/// with element types to enable type-aware input selection, §III-C).
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// The region being accessed.
    pub region: RegionId,
    /// Byte range inside the region. `None` means the whole region.
    pub range: Option<Range<usize>>,
    /// Access direction.
    pub mode: AccessMode,
    /// Element type of the accessed data.
    pub elem: ElemType,
}

impl Access {
    /// Whole-region read access.
    pub fn input(region: RegionId, elem: ElemType) -> Self {
        Access { region, range: None, mode: AccessMode::In, elem }
    }

    /// Whole-region write access.
    pub fn output(region: RegionId, elem: ElemType) -> Self {
        Access { region, range: None, mode: AccessMode::Out, elem }
    }

    /// Whole-region read-write access.
    pub fn inout(region: RegionId, elem: ElemType) -> Self {
        Access { region, range: None, mode: AccessMode::InOut, elem }
    }

    /// Restricts the access to a byte range of the region.
    #[must_use]
    pub fn with_range(mut self, range: Range<usize>) -> Self {
        self.range = Some(range);
        self
    }

    /// True when this access byte-overlaps `other` (same region and
    /// intersecting ranges; `None` ranges cover the whole region).
    pub fn overlaps(&self, other: &Access) -> bool {
        if self.region != other.region {
            return false;
        }
        match (&self.range, &other.range) {
            (None, _) | (_, None) => true,
            (Some(a), Some(b)) => a.start.max(b.start) < a.end.min(b.end),
        }
    }

    /// True when the pair of accesses creates a dependence (at least one of
    /// the two writes and the ranges overlap).
    pub fn conflicts_with(&self, other: &Access) -> bool {
        (self.mode.is_write() || other.mode.is_write()) && self.overlaps(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RegionId {
        RegionId(i)
    }

    #[test]
    fn mode_classification() {
        assert!(AccessMode::In.is_read());
        assert!(!AccessMode::In.is_write());
        assert!(!AccessMode::Out.is_read());
        assert!(AccessMode::Out.is_write());
        assert!(AccessMode::InOut.is_read());
        assert!(AccessMode::InOut.is_write());
    }

    #[test]
    fn whole_region_accesses_always_overlap_same_region() {
        let a = Access::input(r(0), ElemType::F32);
        let b = Access::output(r(0), ElemType::F32);
        let c = Access::output(r(1), ElemType::F32);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn ranged_overlap_detection() {
        let a = Access::output(r(0), ElemType::U8).with_range(0..10);
        let b = Access::input(r(0), ElemType::U8).with_range(10..20);
        let c = Access::input(r(0), ElemType::U8).with_range(5..15);
        assert!(!a.overlaps(&b), "touching but disjoint ranges do not overlap");
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn conflicts_require_a_writer() {
        let read_a = Access::input(r(0), ElemType::F64);
        let read_b = Access::input(r(0), ElemType::F64);
        let write = Access::output(r(0), ElemType::F64);
        assert!(!read_a.conflicts_with(&read_b), "two reads never conflict");
        assert!(read_a.conflicts_with(&write));
        assert!(write.conflicts_with(&read_a));
        assert!(write.conflicts_with(&write.clone()));
    }

    #[test]
    fn ranged_whole_region_mix_overlaps() {
        let whole = Access::inout(r(2), ElemType::F32);
        let part = Access::input(r(2), ElemType::F32).with_range(100..200);
        assert!(whole.overlaps(&part));
        assert!(part.conflicts_with(&whole));
    }

    #[test]
    fn empty_range_never_overlaps() {
        let empty = Access::input(r(0), ElemType::U8).with_range(5..5);
        let other = Access::output(r(0), ElemType::U8).with_range(0..10);
        assert!(!empty.overlaps(&other));
    }
}
