//! Data regions: the memory the runtime tracks dependences on.
//!
//! Task-based dataflow programming models (OmpSs, OpenMP 4.0 tasks) require
//! the programmer to annotate, for every task, which data it reads and which
//! data it produces. In the original system those annotations are raw
//! address ranges; in this Rust reproduction application data lives in
//! *regions* registered with the runtime's [`DataStore`]. A region is a
//! typed, contiguous buffer (a block of a matrix, a vector of option
//! records, a set of cluster centres, …). Tasks declare `In`/`Out`/`InOut`
//! accesses to byte ranges of regions and the runtime derives dependences
//! from the overlaps.
//!
//! Regions are protected by `parking_lot::RwLock`. The dependence tracker
//! already serialises conflicting tasks, so in a correct execution there is
//! never lock contention on a region; the lock is a cheap safety net that
//! keeps the whole crate free of `unsafe`.

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::sync::Arc;

/// Identifier of a region inside a [`DataStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub(crate) u32);

impl RegionId {
    /// The raw index of the region.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a region id from a raw index. Intended for tests and tooling;
    /// ids obtained this way are only meaningful against the store that
    /// assigned them.
    pub fn from_raw(index: u32) -> Self {
        RegionId(index)
    }
}

/// Element type stored in a region.
///
/// The paper extends the runtime API so the compiler can communicate the
/// element types of each data input (§III-C); the type-aware input selection
/// of the hash-key generator needs the element width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 32-bit IEEE-754 floating point.
    F32,
    /// 64-bit IEEE-754 floating point.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// Raw bytes.
    U8,
}

impl ElemType {
    /// Width of one element in bytes.
    pub fn width(self) -> usize {
        match self {
            ElemType::F32 | ElemType::I32 => 4,
            ElemType::F64 | ElemType::I64 => 8,
            ElemType::U8 => 1,
        }
    }
}

/// Typed storage of one region.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionData {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// Raw bytes.
    U8(Vec<u8>),
}

impl RegionData {
    /// The element type of the stored data.
    pub fn elem_type(&self) -> ElemType {
        match self {
            RegionData::F32(_) => ElemType::F32,
            RegionData::F64(_) => ElemType::F64,
            RegionData::I32(_) => ElemType::I32,
            RegionData::I64(_) => ElemType::I64,
            RegionData::U8(_) => ElemType::U8,
        }
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        match self {
            RegionData::F32(v) => v.len(),
            RegionData::F64(v) => v.len(),
            RegionData::I32(v) => v.len(),
            RegionData::I64(v) => v.len(),
            RegionData::U8(v) => v.len(),
        }
    }

    /// True when the region holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the stored data in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len() * self.elem_type().width()
    }

    /// Copies the raw little-endian byte representation of the data into a
    /// new vector. Used by the ATM key generator and output snapshots.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            RegionData::F32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::F64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::I32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::I64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::U8(v) => v.clone(),
        }
    }

    /// Returns the byte at `offset` of the little-endian serialisation of
    /// the data, without materialising the whole byte vector. Used by the
    /// ATM key generator to gather the sampled input bytes directly from the
    /// region storage (the cost of key generation must stay proportional to
    /// the number of *selected* bytes, not to the total input size).
    #[inline]
    pub fn byte_at(&self, offset: usize) -> u8 {
        let width = self.elem_type().width();
        let (elem, byte) = (offset / width, offset % width);
        match self {
            RegionData::F32(v) => v[elem].to_le_bytes()[byte],
            RegionData::F64(v) => v[elem].to_le_bytes()[byte],
            RegionData::I32(v) => v[elem].to_le_bytes()[byte],
            RegionData::I64(v) => v[elem].to_le_bytes()[byte],
            RegionData::U8(v) => v[elem],
        }
    }

    /// Serialises the elements in `elem_range` to little-endian bytes.
    pub fn bytes_in_elem_range(&self, elem_range: std::ops::Range<usize>) -> Vec<u8> {
        match self {
            RegionData::F32(v) => v[elem_range].iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::F64(v) => v[elem_range].iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::I32(v) => v[elem_range].iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::I64(v) => v[elem_range].iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::U8(v) => v[elem_range].to_vec(),
        }
    }

    /// Clones the elements in `elem_range` as a new [`RegionData`] of the
    /// same type. Used to snapshot ranged task outputs into the Task
    /// History Table.
    pub fn slice_elems(&self, elem_range: std::ops::Range<usize>) -> RegionData {
        match self {
            RegionData::F32(v) => RegionData::F32(v[elem_range].to_vec()),
            RegionData::F64(v) => RegionData::F64(v[elem_range].to_vec()),
            RegionData::I32(v) => RegionData::I32(v[elem_range].to_vec()),
            RegionData::I64(v) => RegionData::I64(v[elem_range].to_vec()),
            RegionData::U8(v) => RegionData::U8(v[elem_range].to_vec()),
        }
    }

    /// Overwrites the elements in `elem_range` with the contents of `src`
    /// (which must have the same type and exactly `elem_range.len()`
    /// elements). This is the ranged variant of [`RegionData::copy_from`].
    pub fn write_elems(&mut self, elem_range: std::ops::Range<usize>, src: &RegionData) {
        match (self, src) {
            (RegionData::F32(dst), RegionData::F32(s)) => dst[elem_range].copy_from_slice(s),
            (RegionData::F64(dst), RegionData::F64(s)) => dst[elem_range].copy_from_slice(s),
            (RegionData::I32(dst), RegionData::I32(s)) => dst[elem_range].copy_from_slice(s),
            (RegionData::I64(dst), RegionData::I64(s)) => dst[elem_range].copy_from_slice(s),
            (RegionData::U8(dst), RegionData::U8(s)) => dst[elem_range].copy_from_slice(s),
            (dst, src) => panic!(
                "write_elems between incompatible region types ({:?} <- {:?})",
                dst.elem_type(),
                src.elem_type()
            ),
        }
    }

    /// Overwrites this region's contents from another region of the same
    /// type and length. This is the runtime's `copyOuts()` primitive: it is
    /// how a memoized task's stored outputs are written into the bypassed
    /// task's output regions.
    ///
    /// # Panics
    /// Panics if the types or lengths differ.
    pub fn copy_from(&mut self, other: &RegionData) {
        match (self, other) {
            (RegionData::F32(dst), RegionData::F32(src)) => dst.copy_from_slice(src),
            (RegionData::F64(dst), RegionData::F64(src)) => dst.copy_from_slice(src),
            (RegionData::I32(dst), RegionData::I32(src)) => dst.copy_from_slice(src),
            (RegionData::I64(dst), RegionData::I64(src)) => dst.copy_from_slice(src),
            (RegionData::U8(dst), RegionData::U8(src)) => dst.copy_from_slice(src),
            (dst, src) => panic!(
                "copy_from between incompatible region types ({:?} <- {:?})",
                dst.elem_type(),
                src.elem_type()
            ),
        }
    }

    /// View of the data as `f64` values regardless of the stored type
    /// (integers are converted). Used by the correctness metrics, which are
    /// defined on real-valued vectors.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            RegionData::F32(v) => v.iter().map(|&x| f64::from(x)).collect(),
            RegionData::F64(v) => v.clone(),
            RegionData::I32(v) => v.iter().map(|&x| f64::from(x)).collect(),
            RegionData::I64(v) => v.iter().map(|&x| x as f64).collect(),
            RegionData::U8(v) => v.iter().map(|&x| f64::from(x)).collect(),
        }
    }

    /// Immutable access to `f32` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `f32` data.
    pub fn as_f32(&self) -> &[f32] {
        match self {
            RegionData::F32(v) => v,
            other => panic!("region holds {:?}, expected F32", other.elem_type()),
        }
    }

    /// Mutable access to `f32` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `f32` data.
    pub fn as_f32_mut(&mut self) -> &mut [f32] {
        match self {
            RegionData::F32(v) => v,
            other => panic!("region holds {:?}, expected F32", other.elem_type()),
        }
    }

    /// Immutable access to `f64` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `f64` data.
    pub fn as_f64(&self) -> &[f64] {
        match self {
            RegionData::F64(v) => v,
            other => panic!("region holds {:?}, expected F64", other.elem_type()),
        }
    }

    /// Mutable access to `f64` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `f64` data.
    pub fn as_f64_mut(&mut self) -> &mut [f64] {
        match self {
            RegionData::F64(v) => v,
            other => panic!("region holds {:?}, expected F64", other.elem_type()),
        }
    }

    /// Immutable access to `i32` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `i32` data.
    pub fn as_i32(&self) -> &[i32] {
        match self {
            RegionData::I32(v) => v,
            other => panic!("region holds {:?}, expected I32", other.elem_type()),
        }
    }

    /// Mutable access to `i32` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `i32` data.
    pub fn as_i32_mut(&mut self) -> &mut [i32] {
        match self {
            RegionData::I32(v) => v,
            other => panic!("region holds {:?}, expected I32", other.elem_type()),
        }
    }
}

/// One registered region: its data plus bookkeeping.
#[derive(Debug)]
struct RegionSlot {
    data: RwLock<RegionData>,
    name: String,
}

/// The registry of all regions an application has handed to the runtime.
///
/// Shared (via `Arc`) between the application, the scheduler's worker
/// threads and the ATM engine.
#[derive(Debug, Default)]
pub struct DataStore {
    regions: RwLock<Vec<Arc<RegionSlot>>>,
}

impl DataStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new region and returns its id.
    pub fn register(&self, name: impl Into<String>, data: RegionData) -> RegionId {
        let mut regions = self.regions.write();
        let id = RegionId(u32::try_from(regions.len()).expect("more than u32::MAX regions"));
        regions.push(Arc::new(RegionSlot { data: RwLock::new(data), name: name.into() }));
        id
    }

    /// Registers a region of `len` `f32` zeros.
    pub fn register_f32_zeros(&self, name: impl Into<String>, len: usize) -> RegionId {
        self.register(name, RegionData::F32(vec![0.0; len]))
    }

    /// Registers a region of `len` `f64` zeros.
    pub fn register_f64_zeros(&self, name: impl Into<String>, len: usize) -> RegionId {
        self.register(name, RegionData::F64(vec![0.0; len]))
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.read().len()
    }

    /// True when no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The human-readable name given at registration.
    pub fn name(&self, id: RegionId) -> String {
        self.slot(id).name.clone()
    }

    /// Size of a region in bytes.
    pub fn size_bytes(&self, id: RegionId) -> usize {
        self.slot(id).data.read().size_bytes()
    }

    /// Element type of a region.
    pub fn elem_type(&self, id: RegionId) -> ElemType {
        self.slot(id).data.read().elem_type()
    }

    /// Total application footprint: the sum of all region sizes in bytes.
    /// Used as the denominator of the Table III memory-overhead figures.
    pub fn total_bytes(&self) -> usize {
        let regions = self.regions.read();
        regions.iter().map(|r| r.data.read().size_bytes()).sum()
    }

    /// Read access to a region's data.
    pub fn read(&self, id: RegionId) -> RegionReadGuard<'_> {
        RegionReadGuard { slot: self.slot(id), _marker: std::marker::PhantomData }
    }

    /// Write access to a region's data.
    pub fn write(&self, id: RegionId) -> RegionWriteGuard<'_> {
        RegionWriteGuard { slot: self.slot(id), _marker: std::marker::PhantomData }
    }

    /// Clones a region's current contents (used for output snapshots and for
    /// the sequential references in tests).
    pub fn snapshot(&self, id: RegionId) -> RegionData {
        self.slot(id).data.read().clone()
    }

    /// Replaces a region's contents.
    ///
    /// # Panics
    /// Panics if the new data has a different type or length than the
    /// current contents (regions are fixed-shape once registered).
    pub fn restore(&self, id: RegionId, data: &RegionData) {
        self.slot(id).data.write().copy_from(data);
    }

    fn slot(&self, id: RegionId) -> Arc<RegionSlot> {
        let regions = self.regions.read();
        regions
            .get(id.index())
            .unwrap_or_else(|| panic!("unknown region id {:?}", id))
            .clone()
    }
}

/// RAII read guard over a region.
pub struct RegionReadGuard<'a> {
    slot: Arc<RegionSlot>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl RegionReadGuard<'_> {
    /// Locks the region for reading and returns the guard.
    pub fn lock(&self) -> RwLockReadGuard<'_, RegionData> {
        self.slot.data.read()
    }
}

/// RAII write guard over a region.
pub struct RegionWriteGuard<'a> {
    slot: Arc<RegionSlot>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl RegionWriteGuard<'_> {
    /// Locks the region for writing and returns the guard.
    pub fn lock(&self) -> RwLockWriteGuard<'_, RegionData> {
        self.slot.data.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_read_back() {
        let store = DataStore::new();
        let id = store.register("prices", RegionData::F32(vec![1.0, 2.0, 3.0]));
        assert_eq!(store.len(), 1);
        assert_eq!(store.name(id), "prices");
        assert_eq!(store.size_bytes(id), 12);
        assert_eq!(store.elem_type(id), ElemType::F32);
        assert_eq!(store.read(id).lock().as_f32(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn write_then_snapshot_then_restore() {
        let store = DataStore::new();
        let id = store.register_f64_zeros("block", 4);
        store.write(id).lock().as_f64_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let snap = store.snapshot(id);
        store.write(id).lock().as_f64_mut().copy_from_slice(&[9.0, 9.0, 9.0, 9.0]);
        store.restore(id, &snap);
        assert_eq!(store.read(id).lock().as_f64(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn total_bytes_sums_all_regions() {
        let store = DataStore::new();
        store.register_f32_zeros("a", 10);
        store.register_f64_zeros("b", 10);
        store.register("c", RegionData::U8(vec![0; 7]));
        assert_eq!(store.total_bytes(), 40 + 80 + 7);
    }

    #[test]
    fn to_bytes_round_trips_f32_layout() {
        let data = RegionData::F32(vec![1.5, -2.5]);
        let bytes = data.to_bytes();
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[0..4], &1.5f32.to_le_bytes());
        assert_eq!(&bytes[4..8], &(-2.5f32).to_le_bytes());
    }

    #[test]
    fn byte_at_matches_full_serialisation() {
        let data = RegionData::F64(vec![3.25, -7.5, 1e-9]);
        let bytes = data.to_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            assert_eq!(data.byte_at(i), b, "byte_at({i}) mismatch");
        }
        let ints = RegionData::I32(vec![0x01020304, -5]);
        let int_bytes = ints.to_bytes();
        for (i, &b) in int_bytes.iter().enumerate() {
            assert_eq!(ints.byte_at(i), b);
        }
    }

    #[test]
    fn slice_and_write_elems_round_trip() {
        let src = RegionData::F32(vec![1.0, 2.0, 3.0, 4.0]);
        let slice = src.slice_elems(1..3);
        assert_eq!(slice.as_f32(), &[2.0, 3.0]);
        let mut dst = RegionData::F32(vec![0.0; 4]);
        dst.write_elems(2..4, &slice);
        assert_eq!(dst.as_f32(), &[0.0, 0.0, 2.0, 3.0]);
        assert_eq!(src.bytes_in_elem_range(0..2), RegionData::F32(vec![1.0, 2.0]).to_bytes());
    }

    #[test]
    #[should_panic(expected = "incompatible region types")]
    fn write_elems_type_mismatch_panics() {
        let mut dst = RegionData::F32(vec![0.0; 2]);
        dst.write_elems(0..1, &RegionData::I32(vec![1]));
    }

    #[test]
    fn to_f64_vec_converts_integer_regions() {
        assert_eq!(RegionData::I32(vec![1, -2]).to_f64_vec(), vec![1.0, -2.0]);
        assert_eq!(RegionData::U8(vec![3, 4]).to_f64_vec(), vec![3.0, 4.0]);
        assert_eq!(RegionData::I64(vec![5]).to_f64_vec(), vec![5.0]);
    }

    #[test]
    #[should_panic(expected = "incompatible region types")]
    fn copy_from_type_mismatch_panics() {
        let mut a = RegionData::F32(vec![0.0]);
        a.copy_from(&RegionData::F64(vec![0.0]));
    }

    #[test]
    #[should_panic(expected = "unknown region id")]
    fn unknown_region_panics() {
        let store = DataStore::new();
        let _ = store.read(RegionId(3));
    }

    #[test]
    fn elem_type_widths() {
        assert_eq!(ElemType::F32.width(), 4);
        assert_eq!(ElemType::F64.width(), 8);
        assert_eq!(ElemType::I32.width(), 4);
        assert_eq!(ElemType::I64.width(), 8);
        assert_eq!(ElemType::U8.width(), 1);
    }
}
