//! Data regions: the memory the runtime tracks dependences on.
//!
//! Task-based dataflow programming models (OmpSs, OpenMP 4.0 tasks) require
//! the programmer to annotate, for every task, which data it reads and which
//! data it produces. In the original system those annotations are raw
//! address ranges; in this Rust reproduction application data lives in
//! *regions* registered with the runtime's [`DataStore`]. A region is a
//! typed, contiguous buffer (a block of a matrix, a vector of option
//! records, a set of cluster centres, …). Tasks declare `In`/`Out`/`InOut`
//! accesses to byte ranges of regions and the runtime derives dependences
//! from the overlaps.
//!
//! Registration returns a phantom-typed [`Region<T>`] handle. The handle
//! carries the element type at the type level, so access declarations and
//! kernel reads derive the element width from the handle instead of
//! restating it — the store remains the single source of truth for the
//! stored [`ElemType`], and the submission validator checks every declared
//! access against it.
//!
//! Regions are protected by [`atm_sync::RwLock`]. The dependence tracker
//! already serialises conflicting tasks, so in a correct execution there is
//! never lock contention on a region; the lock is a cheap safety net that
//! keeps the whole crate free of `unsafe`.

use atm_sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// Identifier of a region inside a [`DataStore`].
///
/// This is the untyped, internal representation; user code normally holds a
/// typed [`Region<T>`] handle instead and converts implicitly where an id is
/// needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub(crate) u32);

impl RegionId {
    /// The raw index of the region.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a region id from a raw index. Intended for tests and tooling;
    /// ids obtained this way are only meaningful against the store that
    /// assigned them.
    pub fn from_raw(index: u32) -> Self {
        RegionId(index)
    }
}

/// Element type stored in a region.
///
/// The paper extends the runtime API so the compiler can communicate the
/// element types of each data input (§III-C); the type-aware input selection
/// of the hash-key generator needs the element width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 32-bit IEEE-754 floating point.
    F32,
    /// 64-bit IEEE-754 floating point.
    F64,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// Raw bytes.
    U8,
}

impl ElemType {
    /// Width of one element in bytes.
    pub fn width(self) -> usize {
        match self {
            ElemType::F32 | ElemType::I32 => 4,
            ElemType::F64 | ElemType::I64 => 8,
            ElemType::U8 => 1,
        }
    }
}

impl std::fmt::Display for ElemType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ElemType::F32 => "f32",
            ElemType::F64 => "f64",
            ElemType::I32 => "i32",
            ElemType::I64 => "i64",
            ElemType::U8 => "u8",
        };
        f.write_str(name)
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for i32 {}
    impl Sealed for i64 {}
    impl Sealed for u8 {}
}

/// A Rust element type storable in a region: `f32`, `f64`, `i32`, `i64` or
/// `u8`.
///
/// The trait is sealed — the set of implementors mirrors the [`ElemType`]
/// and [`RegionData`] variants exactly, which is what lets the typed API
/// ([`Region<T>`], [`crate::Access::read`], [`crate::TaskContext::arg`])
/// guarantee at compile time that a handle's type always matches a real
/// storage variant.
pub trait Elem: sealed::Sealed + Copy + Send + Sync + 'static {
    /// The runtime tag of this element type.
    const ELEM: ElemType;
    /// The additive identity, used to register zero-filled regions.
    const ZERO: Self;

    /// Views the region's contents as a slice of `Self`, when the variant
    /// matches.
    fn slice(data: &RegionData) -> Option<&[Self]>;

    /// Mutable variant of [`Elem::slice`].
    fn slice_mut(data: &mut RegionData) -> Option<&mut [Self]>;

    /// Wraps a vector of `Self` into the matching [`RegionData`] variant.
    fn into_region(data: Vec<Self>) -> RegionData;
}

macro_rules! impl_elem {
    ($ty:ty, $variant:ident, $zero:expr) => {
        impl Elem for $ty {
            const ELEM: ElemType = ElemType::$variant;
            const ZERO: Self = $zero;

            fn slice(data: &RegionData) -> Option<&[Self]> {
                match data {
                    RegionData::$variant(v) => Some(v),
                    _ => None,
                }
            }

            fn slice_mut(data: &mut RegionData) -> Option<&mut [Self]> {
                match data {
                    RegionData::$variant(v) => Some(v),
                    _ => None,
                }
            }

            fn into_region(data: Vec<Self>) -> RegionData {
                RegionData::$variant(data)
            }
        }
    };
}

impl_elem!(f32, F32, 0.0);
impl_elem!(f64, F64, 0.0);
impl_elem!(i32, I32, 0);
impl_elem!(i64, I64, 0);
impl_elem!(u8, U8, 0);

/// A phantom-typed handle to a registered region holding elements of `T`.
///
/// Obtained from [`DataStore::register_typed`] (or
/// [`DataStore::register_zeros`]); the type parameter records the element
/// type the store assigned at registration, so APIs taking the handle —
/// [`crate::Access::read`], [`crate::TaskBuilder::reads`], … — can derive
/// the [`ElemType`] instead of asking the caller to restate it.
pub struct Region<T: Elem> {
    id: RegionId,
    _elem: PhantomData<fn() -> T>,
}

impl<T: Elem> Region<T> {
    pub(crate) fn new(id: RegionId) -> Self {
        Region {
            id,
            _elem: PhantomData,
        }
    }

    /// The untyped id of the region.
    pub fn id(self) -> RegionId {
        self.id
    }

    /// The element type carried by the handle.
    pub fn elem_type(self) -> ElemType {
        T::ELEM
    }
}

impl<T: Elem> Clone for Region<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: Elem> Copy for Region<T> {}

impl<T: Elem> PartialEq for Region<T> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl<T: Elem> Eq for Region<T> {}

impl<T: Elem> std::hash::Hash for Region<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl<T: Elem> std::fmt::Debug for Region<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Region<{}>({})", T::ELEM, self.id.0)
    }
}

impl<T: Elem> From<Region<T>> for RegionId {
    fn from(region: Region<T>) -> RegionId {
        region.id
    }
}

impl<T: Elem> From<&Region<T>> for RegionId {
    fn from(region: &Region<T>) -> RegionId {
        region.id
    }
}

/// Error returned when a region cannot be registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// A region with the same name already exists in the store. Names are
    /// unique identifiers: silently registering a second region under an
    /// existing name would shadow it in name lookups and hide bugs.
    DuplicateName(String),
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::DuplicateName(name) => {
                write!(f, "a region named {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

/// Error returned when a region cannot be deregistered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeregisterError {
    /// The id was never assigned by this store.
    UnknownRegion(RegionId),
    /// The region was already deregistered.
    AlreadyRetired(RegionId),
    /// Unfinished tasks still declare accesses on the region. Reported by
    /// [`crate::Runtime::deregister_region`], which consults the dependence
    /// graph's live-accessor index before touching the store.
    LiveAccessors(RegionId),
}

impl std::fmt::Display for DeregisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeregisterError::UnknownRegion(id) => {
                write!(f, "region {id:?} was never registered with this store")
            }
            DeregisterError::AlreadyRetired(id) => {
                write!(f, "region {id:?} was already deregistered")
            }
            DeregisterError::LiveAccessors(id) => {
                write!(f, "region {id:?} still has unfinished tasks accessing it")
            }
        }
    }
}

impl std::error::Error for DeregisterError {}

/// Lifecycle of a region id inside a [`DataStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionStatus {
    /// The id maps to a registered region.
    Live,
    /// The id was assigned once and later deregistered. The distinction from
    /// [`RegionStatus::Unknown`] costs no tombstone memory: ids are assigned
    /// monotonically, so any absent id below the high-water mark must have
    /// been retired.
    Retired,
    /// The id was never assigned by this store.
    Unknown,
}

/// Typed storage of one region.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionData {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// Raw bytes.
    U8(Vec<u8>),
}

impl RegionData {
    /// The element type of the stored data.
    pub fn elem_type(&self) -> ElemType {
        match self {
            RegionData::F32(_) => ElemType::F32,
            RegionData::F64(_) => ElemType::F64,
            RegionData::I32(_) => ElemType::I32,
            RegionData::I64(_) => ElemType::I64,
            RegionData::U8(_) => ElemType::U8,
        }
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        match self {
            RegionData::F32(v) => v.len(),
            RegionData::F64(v) => v.len(),
            RegionData::I32(v) => v.len(),
            RegionData::I64(v) => v.len(),
            RegionData::U8(v) => v.len(),
        }
    }

    /// True when the region holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the stored data in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len() * self.elem_type().width()
    }

    /// Views the contents as a slice of `T`, when the stored type matches.
    pub fn try_as<T: Elem>(&self) -> Option<&[T]> {
        T::slice(self)
    }

    /// Views the contents as a typed slice.
    ///
    /// # Panics
    /// Panics if the region does not hold `T` elements.
    pub fn as_elems<T: Elem>(&self) -> &[T] {
        T::slice(self)
            .unwrap_or_else(|| panic!("region holds {}, expected {}", self.elem_type(), T::ELEM))
    }

    /// Mutable variant of [`RegionData::as_elems`].
    ///
    /// # Panics
    /// Panics if the region does not hold `T` elements.
    pub fn as_elems_mut<T: Elem>(&mut self) -> &mut [T] {
        let elem = self.elem_type();
        T::slice_mut(self).unwrap_or_else(|| panic!("region holds {}, expected {}", elem, T::ELEM))
    }

    /// Copies the raw little-endian byte representation of the data into a
    /// new vector. Used by the ATM key generator and output snapshots.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            RegionData::F32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::F64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::I32(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::I64(v) => v.iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::U8(v) => v.clone(),
        }
    }

    /// Returns the byte at `offset` of the little-endian serialisation of
    /// the data, without materialising the whole byte vector. Used by the
    /// ATM key generator to gather the sampled input bytes directly from the
    /// region storage (the cost of key generation must stay proportional to
    /// the number of *selected* bytes, not to the total input size).
    #[inline]
    pub fn byte_at(&self, offset: usize) -> u8 {
        let width = self.elem_type().width();
        let (elem, byte) = (offset / width, offset % width);
        match self {
            RegionData::F32(v) => v[elem].to_le_bytes()[byte],
            RegionData::F64(v) => v[elem].to_le_bytes()[byte],
            RegionData::I32(v) => v[elem].to_le_bytes()[byte],
            RegionData::I64(v) => v[elem].to_le_bytes()[byte],
            RegionData::U8(v) => v[elem],
        }
    }

    /// Serialises the elements in `elem_range` to little-endian bytes.
    pub fn bytes_in_elem_range(&self, elem_range: std::ops::Range<usize>) -> Vec<u8> {
        match self {
            RegionData::F32(v) => v[elem_range].iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::F64(v) => v[elem_range].iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::I32(v) => v[elem_range].iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::I64(v) => v[elem_range].iter().flat_map(|x| x.to_le_bytes()).collect(),
            RegionData::U8(v) => v[elem_range].to_vec(),
        }
    }

    /// Streams the little-endian serialisation of the elements in
    /// `elem_range` through `f` without allocating. `f` is called once per
    /// element with that element's bytes (once with the whole sub-slice for
    /// `U8` regions, whose storage already *is* its serialisation). The
    /// concatenation of all callback slices equals
    /// [`bytes_in_elem_range`](RegionData::bytes_in_elem_range) — this is
    /// the zero-allocation path the ATM key generator hashes through.
    #[inline]
    pub fn with_bytes_in_elem_range(
        &self,
        elem_range: std::ops::Range<usize>,
        mut f: impl FnMut(&[u8]),
    ) {
        match self {
            RegionData::F32(v) => v[elem_range].iter().for_each(|x| f(&x.to_le_bytes())),
            RegionData::F64(v) => v[elem_range].iter().for_each(|x| f(&x.to_le_bytes())),
            RegionData::I32(v) => v[elem_range].iter().for_each(|x| f(&x.to_le_bytes())),
            RegionData::I64(v) => v[elem_range].iter().for_each(|x| f(&x.to_le_bytes())),
            RegionData::U8(v) => f(&v[elem_range]),
        }
    }

    /// Clones the elements in `elem_range` as a new [`RegionData`] of the
    /// same type. Used to snapshot ranged task outputs into the Task
    /// History Table.
    pub fn slice_elems(&self, elem_range: std::ops::Range<usize>) -> RegionData {
        match self {
            RegionData::F32(v) => RegionData::F32(v[elem_range].to_vec()),
            RegionData::F64(v) => RegionData::F64(v[elem_range].to_vec()),
            RegionData::I32(v) => RegionData::I32(v[elem_range].to_vec()),
            RegionData::I64(v) => RegionData::I64(v[elem_range].to_vec()),
            RegionData::U8(v) => RegionData::U8(v[elem_range].to_vec()),
        }
    }

    /// Overwrites the elements in `elem_range` with the contents of `src`
    /// (which must have the same type and exactly `elem_range.len()`
    /// elements). This is the ranged variant of [`RegionData::copy_from`].
    pub fn write_elems(&mut self, elem_range: std::ops::Range<usize>, src: &RegionData) {
        match (self, src) {
            (RegionData::F32(dst), RegionData::F32(s)) => dst[elem_range].copy_from_slice(s),
            (RegionData::F64(dst), RegionData::F64(s)) => dst[elem_range].copy_from_slice(s),
            (RegionData::I32(dst), RegionData::I32(s)) => dst[elem_range].copy_from_slice(s),
            (RegionData::I64(dst), RegionData::I64(s)) => dst[elem_range].copy_from_slice(s),
            (RegionData::U8(dst), RegionData::U8(s)) => dst[elem_range].copy_from_slice(s),
            (dst, src) => panic!(
                "write_elems between incompatible region types ({:?} <- {:?})",
                dst.elem_type(),
                src.elem_type()
            ),
        }
    }

    /// Overwrites this region's contents from another region of the same
    /// type and length. This is the runtime's `copyOuts()` primitive: it is
    /// how a memoized task's stored outputs are written into the bypassed
    /// task's output regions.
    ///
    /// # Panics
    /// Panics if the types or lengths differ.
    pub fn copy_from(&mut self, other: &RegionData) {
        match (self, other) {
            (RegionData::F32(dst), RegionData::F32(src)) => dst.copy_from_slice(src),
            (RegionData::F64(dst), RegionData::F64(src)) => dst.copy_from_slice(src),
            (RegionData::I32(dst), RegionData::I32(src)) => dst.copy_from_slice(src),
            (RegionData::I64(dst), RegionData::I64(src)) => dst.copy_from_slice(src),
            (RegionData::U8(dst), RegionData::U8(src)) => dst.copy_from_slice(src),
            (dst, src) => panic!(
                "copy_from between incompatible region types ({:?} <- {:?})",
                dst.elem_type(),
                src.elem_type()
            ),
        }
    }

    /// View of the data as `f64` values regardless of the stored type
    /// (integers are converted). Used by the correctness metrics, which are
    /// defined on real-valued vectors.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            RegionData::F32(v) => v.iter().map(|&x| f64::from(x)).collect(),
            RegionData::F64(v) => v.clone(),
            RegionData::I32(v) => v.iter().map(|&x| f64::from(x)).collect(),
            RegionData::I64(v) => v.iter().map(|&x| x as f64).collect(),
            RegionData::U8(v) => v.iter().map(|&x| f64::from(x)).collect(),
        }
    }

    /// Immutable access to `f32` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `f32` data.
    pub fn as_f32(&self) -> &[f32] {
        self.as_elems()
    }

    /// Mutable access to `f32` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `f32` data.
    pub fn as_f32_mut(&mut self) -> &mut [f32] {
        self.as_elems_mut()
    }

    /// Immutable access to `f64` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `f64` data.
    pub fn as_f64(&self) -> &[f64] {
        self.as_elems()
    }

    /// Mutable access to `f64` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `f64` data.
    pub fn as_f64_mut(&mut self) -> &mut [f64] {
        self.as_elems_mut()
    }

    /// Immutable access to `i32` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `i32` data.
    pub fn as_i32(&self) -> &[i32] {
        self.as_elems()
    }

    /// Mutable access to `i32` contents.
    ///
    /// # Panics
    /// Panics if the region does not hold `i32` data.
    pub fn as_i32_mut(&mut self) -> &mut [i32] {
        self.as_elems_mut()
    }
}

/// One registered region: its data plus bookkeeping.
#[derive(Debug)]
struct RegionSlot {
    data: RwLock<RegionData>,
    name: String,
    /// Cached element type. Regions are fixed-shape once registered
    /// ([`DataStore::restore`] rejects type changes), so this never goes
    /// stale — it lets hot paths like submission validation read the type
    /// without touching the data lock.
    elem: ElemType,
}

/// Registration state: the region slots plus the name index used to reject
/// duplicate names. Kept under a single lock so the existence check and the
/// insertion are atomic.
///
/// Slots live in a map keyed by the raw id, not a `Vec`: deregistering a
/// region removes its entry outright, so the registry's footprint follows
/// the *live* region set of a long-running service, not every region ever
/// registered. Ids are handed out monotonically from `next_id` and never
/// reused — a stale handle to a retired region can therefore never alias a
/// newer region.
#[derive(Debug, Default)]
struct Registry {
    slots: HashMap<u32, Arc<RegionSlot>>,
    by_name: HashMap<String, RegionId>,
    next_id: u32,
}

/// The registry of all regions an application has handed to the runtime.
///
/// Shared (via `Arc`) between the application, the scheduler's worker
/// threads and the ATM engine.
#[derive(Debug, Default)]
pub struct DataStore {
    registry: RwLock<Registry>,
}

impl DataStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new region under a unique name and returns a typed
    /// handle. The element type of the region is taken from the data, so it
    /// never needs to be restated at access-declaration or kernel-read time.
    pub fn register_typed<T: Elem>(
        &self,
        name: impl Into<String>,
        data: Vec<T>,
    ) -> Result<Region<T>, RegisterError> {
        self.try_register(name, T::into_region(data))
            .map(Region::new)
    }

    /// Registers a region of `len` zeros of type `T`.
    pub fn register_zeros<T: Elem>(
        &self,
        name: impl Into<String>,
        len: usize,
    ) -> Result<Region<T>, RegisterError> {
        self.register_typed(name, vec![T::ZERO; len])
    }

    /// Registers a new region from untyped [`RegionData`] and returns its
    /// untyped id. Prefer [`DataStore::register_typed`], which returns a
    /// typed handle.
    pub fn try_register(
        &self,
        name: impl Into<String>,
        data: RegionData,
    ) -> Result<RegionId, RegisterError> {
        let name = name.into();
        let mut registry = self.registry.write();
        if registry.by_name.contains_key(&name) {
            return Err(RegisterError::DuplicateName(name));
        }
        let id = RegionId(registry.next_id);
        registry.next_id = registry
            .next_id
            .checked_add(1)
            .expect("more than u32::MAX regions");
        registry.by_name.insert(name.clone(), id);
        let elem = data.elem_type();
        registry.slots.insert(
            id.0,
            Arc::new(RegionSlot {
                data: RwLock::new(data),
                name,
                elem,
            }),
        );
        Ok(id)
    }

    /// Deregisters a region, dropping its data and index entries, and
    /// returns the number of data bytes freed. In-flight readers holding a
    /// guard keep the buffer alive until they drop it (the slot is
    /// `Arc`-shared), but the store forgets the region immediately: its id
    /// reports [`RegionStatus::Retired`], its name becomes reusable, and its
    /// bytes leave [`DataStore::total_bytes`].
    ///
    /// This is the store-level primitive; it does **not** check the
    /// dependence graph for unfinished accessors. Go through
    /// [`crate::Runtime::deregister_region`], which does.
    pub fn deregister(&self, id: impl Into<RegionId>) -> Result<usize, DeregisterError> {
        let id = id.into();
        let mut registry = self.registry.write();
        let Some(slot) = registry.slots.remove(&id.0) else {
            return Err(if id.0 < registry.next_id {
                DeregisterError::AlreadyRetired(id)
            } else {
                DeregisterError::UnknownRegion(id)
            });
        };
        registry.by_name.remove(&slot.name);
        let bytes = slot.data.read().size_bytes();
        Ok(bytes)
    }

    /// Whether an id currently maps to a region, used to be one, or was
    /// never assigned by this store.
    pub fn region_status(&self, id: impl Into<RegionId>) -> RegionStatus {
        let id = id.into();
        let registry = self.registry.read();
        if registry.slots.contains_key(&id.0) {
            RegionStatus::Live
        } else if id.0 < registry.next_id {
            RegionStatus::Retired
        } else {
            RegionStatus::Unknown
        }
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.registry.read().slots.len()
    }

    /// True when no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks a region up by its registration name.
    pub fn lookup(&self, name: &str) -> Option<RegionId> {
        self.registry.read().by_name.get(name).copied()
    }

    /// The human-readable name given at registration.
    pub fn name(&self, id: impl Into<RegionId>) -> String {
        self.slot(id.into()).name.clone()
    }

    /// Size of a region in bytes.
    pub fn size_bytes(&self, id: impl Into<RegionId>) -> usize {
        self.slot(id.into()).data.read().size_bytes()
    }

    /// Element type of a region.
    pub fn elem_type(&self, id: impl Into<RegionId>) -> ElemType {
        self.slot(id.into()).elem
    }

    /// Element type of a region, or `None` when the id is unknown to this
    /// store. Used by the submission validator to report stale or foreign
    /// ids as a [`crate::SubmitError`] instead of panicking.
    pub fn try_elem_type(&self, id: impl Into<RegionId>) -> Option<ElemType> {
        self.try_slot(id.into()).map(|slot| slot.elem)
    }

    /// Element types of many regions, resolved under a single registry
    /// lock and without touching any region's data lock (the element type
    /// is cached at registration). This keeps submission validation off
    /// the task-creation hot path's lock budget.
    pub fn try_elem_types(&self, ids: impl IntoIterator<Item = RegionId>) -> Vec<Option<ElemType>> {
        let registry = self.registry.read();
        ids.into_iter()
            .map(|id| registry.slots.get(&id.0).map(|slot| slot.elem))
            .collect()
    }

    /// Total application footprint: the sum of all region sizes in bytes.
    /// Used as the denominator of the Table III memory-overhead figures.
    pub fn total_bytes(&self) -> usize {
        let registry = self.registry.read();
        registry
            .slots
            .values()
            .map(|r| r.data.read().size_bytes())
            .sum()
    }

    /// Read access to a region's data.
    pub fn read(&self, id: impl Into<RegionId>) -> RegionReadGuard<'_> {
        RegionReadGuard {
            slot: self.slot(id.into()),
            _marker: std::marker::PhantomData,
        }
    }

    /// Write access to a region's data.
    pub fn write(&self, id: impl Into<RegionId>) -> RegionWriteGuard<'_> {
        RegionWriteGuard {
            slot: self.slot(id.into()),
            _marker: std::marker::PhantomData,
        }
    }

    /// Clones a region's current contents (used for output snapshots and for
    /// the sequential references in tests).
    pub fn snapshot(&self, id: impl Into<RegionId>) -> RegionData {
        self.slot(id.into()).data.read().clone()
    }

    /// Clones the typed contents of a region.
    pub fn contents<T: Elem>(&self, region: &Region<T>) -> Vec<T> {
        self.read(region).lock().as_elems::<T>().to_vec()
    }

    /// Replaces a region's contents.
    ///
    /// # Panics
    /// Panics if the new data has a different type or length than the
    /// current contents (regions are fixed-shape once registered).
    pub fn restore(&self, id: impl Into<RegionId>, data: &RegionData) {
        self.slot(id.into()).data.write().copy_from(data);
    }

    fn slot(&self, id: RegionId) -> Arc<RegionSlot> {
        self.try_slot(id)
            .unwrap_or_else(|| panic!("unknown region id {id:?}"))
    }

    fn try_slot(&self, id: RegionId) -> Option<Arc<RegionSlot>> {
        self.registry.read().slots.get(&id.0).cloned()
    }
}

/// RAII read guard over a region.
pub struct RegionReadGuard<'a> {
    slot: Arc<RegionSlot>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl RegionReadGuard<'_> {
    /// Locks the region for reading and returns the guard.
    pub fn lock(&self) -> RwLockReadGuard<'_, RegionData> {
        self.slot.data.read()
    }
}

/// RAII write guard over a region.
pub struct RegionWriteGuard<'a> {
    slot: Arc<RegionSlot>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl RegionWriteGuard<'_> {
    /// Locks the region for writing and returns the guard.
    pub fn lock(&self) -> RwLockWriteGuard<'_, RegionData> {
        self.slot.data.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_read_back() {
        let store = DataStore::new();
        let id = store
            .register_typed("prices", vec![1.0f32, 2.0, 3.0])
            .unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.name(id), "prices");
        assert_eq!(store.size_bytes(id), 12);
        assert_eq!(store.elem_type(id), ElemType::F32);
        assert_eq!(id.elem_type(), ElemType::F32);
        assert_eq!(store.read(id).lock().as_f32(), &[1.0, 2.0, 3.0]);
        assert_eq!(store.contents(&id), vec![1.0, 2.0, 3.0]);
        assert_eq!(store.lookup("prices"), Some(id.id()));
        assert_eq!(store.lookup("missing"), None);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let store = DataStore::new();
        let first = store.register_typed("block", vec![0.0f64; 2]);
        assert!(first.is_ok());
        let second = store.register_typed("block", vec![0.0f64; 2]);
        assert_eq!(
            second.unwrap_err(),
            RegisterError::DuplicateName("block".to_string())
        );
        let untyped = store.try_register("block", RegionData::U8(vec![1]));
        assert!(matches!(untyped, Err(RegisterError::DuplicateName(_))));
        assert_eq!(
            store.len(),
            1,
            "rejected registrations must not allocate a slot"
        );
    }

    #[test]
    fn write_then_snapshot_then_restore() {
        let store = DataStore::new();
        let id = store.register_zeros::<f64>("block", 4).unwrap();
        store
            .write(id)
            .lock()
            .as_f64_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let snap = store.snapshot(id);
        store
            .write(id)
            .lock()
            .as_f64_mut()
            .copy_from_slice(&[9.0, 9.0, 9.0, 9.0]);
        store.restore(id, &snap);
        assert_eq!(store.read(id).lock().as_f64(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn total_bytes_sums_all_regions() {
        let store = DataStore::new();
        store.register_zeros::<f32>("a", 10).unwrap();
        store.register_zeros::<f64>("b", 10).unwrap();
        store.register_typed("c", vec![0u8; 7]).unwrap();
        assert_eq!(store.total_bytes(), 40 + 80 + 7);
    }

    #[test]
    fn typed_handles_are_copy_and_comparable() {
        let store = DataStore::new();
        let a = store.register_zeros::<i32>("a", 1).unwrap();
        let b = store.register_zeros::<i32>("b", 1).unwrap();
        let a2 = a;
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(format!("{a:?}"), "Region<i32>(0)");
        assert_eq!(RegionId::from(a), a.id());
        assert_eq!(RegionId::from(&b), b.id());
    }

    #[test]
    fn to_bytes_round_trips_f32_layout() {
        let data = RegionData::F32(vec![1.5, -2.5]);
        let bytes = data.to_bytes();
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[0..4], &1.5f32.to_le_bytes());
        assert_eq!(&bytes[4..8], &(-2.5f32).to_le_bytes());
    }

    #[test]
    fn byte_at_matches_full_serialisation() {
        let data = RegionData::F64(vec![3.25, -7.5, 1e-9]);
        let bytes = data.to_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            assert_eq!(data.byte_at(i), b, "byte_at({i}) mismatch");
        }
        let ints = RegionData::I32(vec![0x01020304, -5]);
        let int_bytes = ints.to_bytes();
        for (i, &b) in int_bytes.iter().enumerate() {
            assert_eq!(ints.byte_at(i), b);
        }
    }

    #[test]
    fn slice_and_write_elems_round_trip() {
        let src = RegionData::F32(vec![1.0, 2.0, 3.0, 4.0]);
        let slice = src.slice_elems(1..3);
        assert_eq!(slice.as_f32(), &[2.0, 3.0]);
        let mut dst = RegionData::F32(vec![0.0; 4]);
        dst.write_elems(2..4, &slice);
        assert_eq!(dst.as_f32(), &[0.0, 0.0, 2.0, 3.0]);
        assert_eq!(
            src.bytes_in_elem_range(0..2),
            RegionData::F32(vec![1.0, 2.0]).to_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "incompatible region types")]
    fn write_elems_type_mismatch_panics() {
        let mut dst = RegionData::F32(vec![0.0; 2]);
        dst.write_elems(0..1, &RegionData::I32(vec![1]));
    }

    #[test]
    fn to_f64_vec_converts_integer_regions() {
        assert_eq!(RegionData::I32(vec![1, -2]).to_f64_vec(), vec![1.0, -2.0]);
        assert_eq!(RegionData::U8(vec![3, 4]).to_f64_vec(), vec![3.0, 4.0]);
        assert_eq!(RegionData::I64(vec![5]).to_f64_vec(), vec![5.0]);
    }

    #[test]
    #[should_panic(expected = "incompatible region types")]
    fn copy_from_type_mismatch_panics() {
        let mut a = RegionData::F32(vec![0.0]);
        a.copy_from(&RegionData::F64(vec![0.0]));
    }

    #[test]
    #[should_panic(expected = "unknown region id")]
    fn unknown_region_panics() {
        let store = DataStore::new();
        let _ = store.read(RegionId(3));
    }

    #[test]
    fn deregister_frees_bytes_and_retires_the_id() {
        let store = DataStore::new();
        let a = store.register_zeros::<f64>("a", 8).unwrap();
        let b = store.register_zeros::<f32>("b", 4).unwrap();
        assert_eq!(store.total_bytes(), 64 + 16);
        assert_eq!(store.region_status(a), RegionStatus::Live);

        assert_eq!(store.deregister(a), Ok(64));
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_bytes(), 16);
        assert_eq!(store.region_status(a), RegionStatus::Retired);
        assert_eq!(store.region_status(b), RegionStatus::Live);
        assert_eq!(
            store.region_status(RegionId::from_raw(9)),
            RegionStatus::Unknown
        );
        assert_eq!(store.try_elem_type(a), None);
        assert_eq!(store.lookup("a"), None, "the name index entry must go too");

        // Double deregistration and never-registered ids are distinguished.
        assert_eq!(
            store.deregister(a),
            Err(DeregisterError::AlreadyRetired(a.id()))
        );
        assert_eq!(
            store.deregister(RegionId::from_raw(9)),
            Err(DeregisterError::UnknownRegion(RegionId::from_raw(9)))
        );
    }

    #[test]
    fn deregistered_ids_are_never_reused() {
        let store = DataStore::new();
        let a = store.register_zeros::<u8>("a", 1).unwrap();
        store.deregister(a).unwrap();
        let c = store.register_zeros::<u8>("c", 1).unwrap();
        assert_ne!(a.id(), c.id(), "ids are monotonic, never recycled");
        // The freed name is reusable; the old id stays retired.
        let a2 = store.register_zeros::<f64>("a", 2).unwrap();
        assert_eq!(store.region_status(a), RegionStatus::Retired);
        assert_eq!(store.region_status(a2), RegionStatus::Live);
    }

    #[test]
    fn in_flight_guards_survive_deregistration() {
        let store = DataStore::new();
        let a = store.register_typed("a", vec![7.0f64]).unwrap();
        let guard = store.read(a);
        store.deregister(a).unwrap();
        // The Arc-shared slot keeps the data alive for the extant guard.
        assert_eq!(guard.lock().as_f64(), &[7.0]);
    }

    #[test]
    fn try_elem_type_reports_unknown_ids() {
        let store = DataStore::new();
        let id = store.register_zeros::<u8>("bytes", 3).unwrap();
        assert_eq!(store.try_elem_type(id), Some(ElemType::U8));
        assert_eq!(store.try_elem_type(RegionId::from_raw(9)), None);
    }

    #[test]
    fn typed_views_check_the_variant() {
        let data = RegionData::I64(vec![1, 2]);
        assert_eq!(data.try_as::<i64>(), Some(&[1i64, 2][..]));
        assert!(data.try_as::<f64>().is_none());
        assert_eq!(data.as_elems::<i64>(), &[1, 2]);
    }

    #[test]
    fn elem_type_widths() {
        assert_eq!(ElemType::F32.width(), 4);
        assert_eq!(ElemType::F64.width(), 8);
        assert_eq!(ElemType::I32.width(), 4);
        assert_eq!(ElemType::I64.width(), 8);
        assert_eq!(ElemType::U8.width(), 1);
    }
}
