//! Execution tracing: per-thread state intervals and ready-queue sampling.
//!
//! Figures 7 and 8 of the paper are Paraver execution traces: per-core time
//! lines coloured by thread state (task execution, ATM hash-key computation,
//! ATM memoization copies, task creation & scheduling, idle) and, for
//! Figure 8, the number of ready tasks in the runtime over time. The
//! [`Tracer`] collects exactly that information so the evaluation harness can
//! print state breakdowns and ready-task time series.

use atm_sync::Mutex;
use std::time::{Duration, Instant};

/// Thread states distinguished by the tracer (the legend of Figures 7/8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ThreadState {
    /// Executing a task kernel.
    TaskExecution,
    /// Creating and scheduling tasks (dependence analysis, TDG insertion).
    TaskCreation,
    /// ATM: computing the hash key of a task's inputs.
    HashKeyComputation,
    /// ATM: copying outputs from/to the Task History Table (memoization).
    Memoization,
    /// Waiting for work (empty ready queue) or in the taskwait barrier.
    Idle,
    /// Everything else (scheduler bookkeeping, task finish processing).
    Other,
}

impl ThreadState {
    /// All states, in display order.
    pub const ALL: [ThreadState; 6] = [
        ThreadState::TaskExecution,
        ThreadState::TaskCreation,
        ThreadState::HashKeyComputation,
        ThreadState::Memoization,
        ThreadState::Idle,
        ThreadState::Other,
    ];

    /// Display name matching the paper's trace legend.
    pub fn label(self) -> &'static str {
        match self {
            ThreadState::TaskExecution => "Task Execution",
            ThreadState::TaskCreation => "Task Creation & Scheduling",
            ThreadState::HashKeyComputation => "ATM:Hash-key computation",
            ThreadState::Memoization => "ATM:Task Memoization",
            ThreadState::Idle => "Thread Idle",
            ThreadState::Other => "Other states",
        }
    }
}

/// One recorded interval on a worker's time line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Worker index (0 = master / submitting thread, 1.. = workers).
    pub worker: usize,
    /// The state the worker was in.
    pub state: ThreadState,
    /// Interval start, nanoseconds since the tracer was created.
    pub start_ns: u64,
    /// Interval end, nanoseconds since the tracer was created.
    pub end_ns: u64,
}

impl TraceEvent {
    /// Interval length.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.end_ns.saturating_sub(self.start_ns))
    }
}

/// One sample of the ready-queue depth (Figure 8's "number of ready tasks").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadySample {
    /// Nanoseconds since the tracer was created.
    pub at_ns: u64,
    /// Number of tasks in the ready queue after the event.
    pub depth: usize,
}

/// Number of per-worker event-buffer shards (events shard by
/// `worker % EVENT_SHARDS`, so concurrent workers record without contending
/// on one lock).
const EVENT_SHARDS: usize = 16;

/// Collects trace events and ready-queue samples.
///
/// The tracer can be disabled (the default for performance runs); in that
/// case recording is a cheap no-op so the instrumentation does not distort
/// the speedup measurements. When enabled, events are buffered in
/// per-worker shards and merged (sorted by start time) on read, so even a
/// traced run keeps workers off a shared lock on the hot path.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    origin: Instant,
    events: Vec<Mutex<Vec<TraceEvent>>>,
    /// Sharded like `events`: ready-depth sampling happens on scheduler
    /// push/pop, a traced hot path that must not funnel every worker
    /// through one lock.
    ready_samples: Vec<Mutex<Vec<ReadySample>>>,
}

impl Tracer {
    /// Creates a tracer; `enabled = false` turns all recording into no-ops.
    pub fn new(enabled: bool) -> Self {
        Tracer {
            enabled,
            origin: Instant::now(),
            events: (0..EVENT_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            ready_samples: (0..EVENT_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds elapsed since the tracer was created.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Records an interval in `state` on `worker`'s time line.
    pub fn record(&self, worker: usize, state: ThreadState, start_ns: u64, end_ns: u64) {
        if !self.enabled || end_ns <= start_ns {
            return;
        }
        self.events[worker % EVENT_SHARDS].lock().push(TraceEvent {
            worker,
            state,
            start_ns,
            end_ns,
        });
    }

    /// Times `f` and records it as one interval of `state`.
    pub fn scope<R>(&self, worker: usize, state: ThreadState, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = self.now_ns();
        let result = f();
        let end = self.now_ns();
        self.record(worker, state, start, end);
        result
    }

    /// Records the current ready-queue depth on `worker`'s sample shard.
    pub fn sample_ready_depth(&self, worker: usize, depth: usize) {
        if !self.enabled {
            return;
        }
        self.ready_samples[worker % EVENT_SHARDS]
            .lock()
            .push(ReadySample {
                at_ns: self.now_ns(),
                depth,
            });
    }

    /// All recorded events, merged across the per-worker shards and sorted
    /// into one timeline (by start time, then worker).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut merged: Vec<TraceEvent> = self
            .events
            .iter()
            .flat_map(|shard| shard.lock().clone())
            .collect();
        merged.sort_by_key(|ev| (ev.start_ns, ev.worker));
        merged
    }

    /// All recorded ready-queue samples, merged across the shards and
    /// sorted by sample time.
    pub fn ready_samples(&self) -> Vec<ReadySample> {
        let mut merged: Vec<ReadySample> = self
            .ready_samples
            .iter()
            .flat_map(|shard| shard.lock().clone())
            .collect();
        merged.sort_by_key(|s| s.at_ns);
        merged
    }

    /// Aggregates the total time per (worker, state).
    pub fn summary(&self) -> TraceSummary {
        TraceSummary::from_events(&self.events())
    }
}

/// Aggregated per-state times, the textual equivalent of Figures 7 and 8.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total time per state across all workers, in nanoseconds.
    pub per_state_ns: Vec<(ThreadState, u64)>,
    /// Number of workers that recorded at least one event.
    pub workers: usize,
    /// Wall-clock span covered by the events (max end − min start), ns.
    pub span_ns: u64,
}

impl TraceSummary {
    fn from_events(events: &[TraceEvent]) -> Self {
        let mut per_state: Vec<(ThreadState, u64)> =
            ThreadState::ALL.iter().map(|&s| (s, 0u64)).collect();
        let mut min_start = u64::MAX;
        let mut max_end = 0u64;
        let mut workers = std::collections::BTreeSet::new();
        for ev in events {
            let slot = per_state
                .iter_mut()
                .find(|(s, _)| *s == ev.state)
                .expect("state table covers all states");
            slot.1 += ev.end_ns - ev.start_ns;
            min_start = min_start.min(ev.start_ns);
            max_end = max_end.max(ev.end_ns);
            workers.insert(ev.worker);
        }
        TraceSummary {
            per_state_ns: per_state,
            workers: workers.len(),
            span_ns: if events.is_empty() {
                0
            } else {
                max_end - min_start
            },
        }
    }

    /// Total recorded time in a given state, nanoseconds.
    pub fn state_ns(&self, state: ThreadState) -> u64 {
        self.per_state_ns
            .iter()
            .find(|(s, _)| *s == state)
            .map_or(0, |(_, ns)| *ns)
    }

    /// Fraction of all recorded busy time spent in `state`.
    pub fn state_fraction(&self, state: ThreadState) -> f64 {
        let total: u64 = self.per_state_ns.iter().map(|(_, ns)| ns).sum();
        if total == 0 {
            return 0.0;
        }
        self.state_ns(state) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new(false);
        tracer.record(0, ThreadState::TaskExecution, 0, 100);
        tracer.sample_ready_depth(0, 5);
        let value = tracer.scope(0, ThreadState::Memoization, || 42);
        assert_eq!(value, 42);
        assert!(tracer.events().is_empty());
        assert!(tracer.ready_samples().is_empty());
    }

    #[test]
    fn record_and_summarise() {
        let tracer = Tracer::new(true);
        tracer.record(0, ThreadState::TaskExecution, 0, 100);
        tracer.record(1, ThreadState::TaskExecution, 50, 150);
        tracer.record(1, ThreadState::HashKeyComputation, 150, 170);
        tracer.record(0, ThreadState::Idle, 100, 130);
        let summary = tracer.summary();
        assert_eq!(summary.state_ns(ThreadState::TaskExecution), 200);
        assert_eq!(summary.state_ns(ThreadState::HashKeyComputation), 20);
        assert_eq!(summary.state_ns(ThreadState::Idle), 30);
        assert_eq!(summary.workers, 2);
        assert_eq!(summary.span_ns, 170);
        assert!((summary.state_fraction(ThreadState::TaskExecution) - 200.0 / 250.0).abs() < 1e-12);
    }

    #[test]
    fn zero_length_intervals_are_dropped() {
        let tracer = Tracer::new(true);
        tracer.record(0, ThreadState::Other, 10, 10);
        tracer.record(0, ThreadState::Other, 10, 5);
        assert!(tracer.events().is_empty());
    }

    #[test]
    fn scope_measures_and_returns() {
        let tracer = Tracer::new(true);
        let out = tracer.scope(3, ThreadState::Memoization, || {
            std::thread::sleep(Duration::from_millis(2));
            "done"
        });
        assert_eq!(out, "done");
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].worker, 3);
        assert_eq!(events[0].state, ThreadState::Memoization);
        assert!(events[0].duration() >= Duration::from_millis(1));
    }

    #[test]
    fn ready_samples_are_ordered_by_time() {
        let tracer = Tracer::new(true);
        for (i, depth) in [1usize, 2, 3, 2, 1, 0].into_iter().enumerate() {
            // Rotate across workers so samples land on different shards,
            // proving the merge re-establishes one timeline.
            tracer.sample_ready_depth(i % 4, depth);
        }
        let samples = tracer.ready_samples();
        assert_eq!(samples.len(), 6);
        assert!(samples.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(samples.last().unwrap().depth, 0);
    }

    #[test]
    fn workers_counts_distinct_recorders_not_max_index() {
        // Regression: only worker 3 records — `workers` used to report 4
        // (`max_worker + 1`), counting three workers that never recorded.
        let tracer = Tracer::new(true);
        tracer.record(3, ThreadState::TaskExecution, 0, 100);
        assert_eq!(tracer.summary().workers, 1);
        // Sparse sets count their actual size, not their span.
        tracer.record(7, ThreadState::Idle, 100, 120);
        assert_eq!(tracer.summary().workers, 2);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let summary = Tracer::new(true).summary();
        assert_eq!(summary.workers, 0);
        assert_eq!(summary.span_ns, 0);
        assert_eq!(summary.state_fraction(ThreadState::TaskExecution), 0.0);
    }

    #[test]
    fn state_labels_match_paper_legend() {
        assert_eq!(
            ThreadState::HashKeyComputation.label(),
            "ATM:Hash-key computation"
        );
        assert_eq!(ThreadState::Memoization.label(), "ATM:Task Memoization");
        assert_eq!(ThreadState::ALL.len(), 6);
    }
}
