//! The Ready Queue (RQ).
//!
//! Tasks whose dependences are satisfied are moved here; idle worker threads
//! pull from it. Two disciplines are available ([`QueueMode`]):
//!
//! * [`QueueMode::Fifo`] — the paper's single blocking MPMC FIFO. The paper
//!   uses a single ready queue in the runtime system and even identifies the
//!   task-creation throughput of the master thread as a bottleneck once ATM
//!   makes tasks extremely cheap (Figure 8) — this mode preserves that
//!   behaviour exactly, including the deterministic pop order the trace
//!   experiments and paper sweeps rely on.
//! * [`QueueMode::Stealing`] — per-worker deques plus a global injector with
//!   work stealing. Workers push the tasks they release into their own
//!   deque (popped LIFO for locality), the master thread submits into the
//!   injector, and an idle worker steals *half* of a victim's deque. In
//!   steady state a worker that keeps releasing its own successors never
//!   touches a shared lock, which is what lets fine-grained (memoized)
//!   task floods scale with the core count.
//!
//! Pushes and pops optionally sample the queue depth into the tracer, which
//! is the data behind Figure 8(b)/(d).

use crate::task::TaskId;
use crate::trace::Tracer;
use atm_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use atm_sync::{Condvar, Event, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// Scheduling discipline of the Ready Queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueMode {
    /// One global FIFO protected by a single lock — the paper's runtime.
    /// Deterministic pop order with one worker; bit-compatible with the
    /// pre-stealing scheduler.
    Fifo,
    /// Per-worker deques + global injector + work stealing (the default).
    #[default]
    Stealing,
}

impl QueueMode {
    /// Display name (used by the bench harness).
    pub fn name(self) -> &'static str {
        match self {
            QueueMode::Fifo => "fifo",
            QueueMode::Stealing => "stealing",
        }
    }
}

/// Outcome of a blocking pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Popped {
    /// A task was obtained.
    Task(TaskId),
    /// The queue was closed and drained; the worker should exit.
    Closed,
}

#[derive(Debug, Default)]
struct FifoState {
    tasks: VecDeque<TaskId>,
    closed: bool,
}

/// The single-lock FIFO (the paper's ready queue).
#[derive(Debug)]
struct FifoQueue {
    state: Mutex<FifoState>,
    condvar: Condvar,
}

impl FifoQueue {
    fn new() -> Self {
        FifoQueue {
            state: Mutex::new(FifoState::default()),
            condvar: Condvar::new(),
        }
    }

    fn push_all(&self, ids: &[TaskId], worker: usize, tracer: &Tracer) {
        if ids.is_empty() {
            return;
        }
        let mut state = self.state.lock();
        state.tasks.extend(ids.iter().copied());
        tracer.sample_ready_depth(worker, state.tasks.len());
        drop(state);
        // One wakeup per *push*, not per task: a single task needs exactly
        // one worker; a packet wakes everyone once instead of hammering the
        // condvar once per id (each sleeper re-checks the queue anyway).
        if ids.len() == 1 {
            self.condvar.notify_one();
        } else {
            self.condvar.notify_all();
        }
    }

    fn pop(&self, worker: usize, tracer: &Tracer) -> Popped {
        let mut state = self.state.lock();
        loop {
            if let Some(id) = state.tasks.pop_front() {
                tracer.sample_ready_depth(worker, state.tasks.len());
                return Popped::Task(id);
            }
            if state.closed {
                return Popped::Closed;
            }
            self.condvar.wait(&mut state);
        }
    }

    fn try_pop(&self, worker: usize, tracer: &Tracer) -> Option<TaskId> {
        let mut state = self.state.lock();
        let id = state.tasks.pop_front();
        if id.is_some() {
            tracer.sample_ready_depth(worker, state.tasks.len());
        }
        id
    }

    fn depth(&self) -> usize {
        self.state.lock().tasks.len()
    }

    fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        self.condvar.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

/// Largest number of tasks moved by one steal (half the victim's deque,
/// capped so a thief cannot hoard a huge release burst).
const MAX_STEAL_BATCH: usize = 32;

/// Ready-depth sample lane used for pushes from outside the worker pool
/// (the master thread). Any consistent lane works — the sharding is purely
/// anti-contention; samples are merged and time-sorted on read.
const MASTER_LANE: usize = usize::MAX;

/// Per-worker deques + injector with steal-half.
///
/// # Sleep/wake protocol (per-worker parking, eventcount-style)
///
/// Each worker owns one sticky [`Event`]; parked workers publish themselves
/// on a shared *sleeper stack*. A pusher that enqueues `n` tasks pops up to
/// `n` workers off the stack and signals **their** events directly — no
/// global condvar, no thundering herd, and the most recently parked (cache-
/// warm) workers wake first.
///
/// The lost-wakeup invariants mirror the previous global-condvar protocol:
///
/// * `pending` is incremented **before** a task becomes visible and
///   decremented **after** one is taken, so `pending > 0` eventually implies
///   a findable task;
/// * a worker parks in three steps — reset its event and push itself on the
///   stack (one critical section), **then** re-check `pending`/`closed`,
///   then wait. A pusher increments `pending` before popping the stack, so
///   either the parking worker sees the new `pending` and rescans, or the
///   pusher sees the worker on the stack and signals its event;
/// * the event is sticky: a signal delivered between the re-check and the
///   wait is consumed by the wait, and a stale signal left by a withdrawn
///   park is cleared by the reset of the next park.
#[derive(Debug)]
struct StealingQueue {
    /// Master-thread submissions (and pushes from non-worker threads).
    injector: Mutex<VecDeque<TaskId>>,
    /// One deque per worker: the owner pushes/pops at the back (LIFO,
    /// cache-warm), thieves steal from the front (oldest first).
    locals: Vec<Mutex<VecDeque<TaskId>>>,
    /// Total tasks across all deques. Maintained *after* an enqueue and
    /// *after* a dequeue, so `pending > 0` eventually implies a findable
    /// task and a zero observed after parking is trustworthy.
    pending: AtomicUsize,
    /// One parking event per worker, signalled individually by pushers.
    parkers: Vec<Event>,
    /// Stack of currently parked workers (most recent on top). `sleepers`
    /// mirrors its length so pushers can skip the lock when nobody sleeps.
    sleeper_stack: Mutex<Vec<usize>>,
    sleepers: AtomicUsize,
    closed: AtomicBool,
}

impl StealingQueue {
    fn new(workers: usize) -> Self {
        StealingQueue {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            parkers: (0..workers).map(|_| Event::new()).collect(),
            sleeper_stack: Mutex::new(Vec::with_capacity(workers)),
            sleepers: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Accounts for `count` pushed tasks *before* they become visible in a
    /// deque, so a racing consumer can never decrement `pending` below the
    /// number of visible tasks (no underflow).
    fn note_pushing(&self, count: usize, worker: usize, tracer: &Tracer) {
        let depth = self.pending.fetch_add(count, Ordering::SeqCst) + count;
        tracer.sample_ready_depth(worker, depth);
    }

    /// Wakes up to `count` parked workers, each through its own event.
    fn wake_after_push(&self, count: usize) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        let woken: Vec<usize> = {
            let mut stack = self.sleeper_stack.lock();
            let keep = stack.len().saturating_sub(count);
            let woken = stack.split_off(keep);
            self.sleepers.store(stack.len(), Ordering::SeqCst);
            woken
        };
        for worker in woken {
            self.parkers[worker].signal();
        }
    }

    fn push_injector(&self, ids: &[TaskId], tracer: &Tracer) {
        if ids.is_empty() {
            return;
        }
        self.note_pushing(ids.len(), MASTER_LANE, tracer);
        self.injector.lock().extend(ids.iter().copied());
        self.wake_after_push(ids.len());
    }

    fn push_local(&self, worker: usize, ids: &[TaskId], tracer: &Tracer) {
        if ids.is_empty() {
            return;
        }
        self.note_pushing(ids.len(), worker, tracer);
        match self.locals.get(worker) {
            Some(local) => local.lock().extend(ids.iter().copied()),
            // Not a worker thread (e.g. the engine finishing deferred tasks
            // from a test harness): fall back to the injector.
            None => self.injector.lock().extend(ids.iter().copied()),
        }
        self.wake_after_push(ids.len());
    }

    fn note_popped(&self, worker: usize, tracer: &Tracer) {
        let depth = self.pending.fetch_sub(1, Ordering::SeqCst) - 1;
        tracer.sample_ready_depth(worker, depth);
    }

    /// One full scan: own deque, injector, then steal-half round-robin.
    fn scan(&self, worker: usize) -> Option<TaskId> {
        if let Some(local) = self.locals.get(worker) {
            if let Some(id) = local.lock().pop_back() {
                return Some(id);
            }
        }
        if let Some(id) = self.injector.lock().pop_front() {
            return Some(id);
        }
        let n = self.locals.len();
        for offset in 1..n.max(1) {
            let victim = (worker + offset) % n;
            // Drain the batch and release the victim's lock *before*
            // touching our own deque: holding both would let a cycle of
            // thieves deadlock.
            let mut taken: VecDeque<TaskId> = {
                let mut victim_deque = self.locals[victim].lock();
                let available = victim_deque.len();
                if available == 0 {
                    continue;
                }
                // Steal the oldest half (keep the victim's hot LIFO end).
                let batch = (available / 2).clamp(1, MAX_STEAL_BATCH);
                victim_deque.drain(..batch).collect()
            };
            let stolen = taken.pop_front();
            if !taken.is_empty() {
                if let Some(local) = self.locals.get(worker) {
                    local.lock().extend(taken);
                } else {
                    self.injector.lock().extend(taken);
                }
            }
            return stolen;
        }
        None
    }

    fn pop(&self, worker: usize, tracer: &Tracer) -> Popped {
        loop {
            if let Some(id) = self.scan(worker) {
                self.note_popped(worker, tracer);
                return Popped::Task(id);
            }
            let Some(event) = self.parkers.get(worker) else {
                // Not a pool worker (tests popping with an out-of-range
                // index): no parker to publish, so poll cooperatively.
                if self.closed.load(Ordering::SeqCst) && self.pending.load(Ordering::SeqCst) == 0 {
                    return Popped::Closed;
                }
                std::thread::yield_now();
                continue;
            };
            // Announce the park: clear any stale signal and publish
            // ourselves on the sleeper stack in one critical section, so a
            // pusher popping us afterwards signals a reset event.
            {
                let mut stack = self.sleeper_stack.lock();
                event.reset();
                stack.push(worker);
                self.sleepers.store(stack.len(), Ordering::SeqCst);
            }
            // Re-check after the announcement. A pusher increments `pending`
            // before popping the stack: either we see its task here, or it
            // sees us on the stack and signals our event.
            if self.pending.load(Ordering::SeqCst) > 0 || self.closed.load(Ordering::SeqCst) {
                // Withdraw the park. If we are no longer on the stack, a
                // pusher already claimed us and its (sticky) signal will be
                // cleared by the reset of our next park.
                {
                    let mut stack = self.sleeper_stack.lock();
                    if let Some(at) = stack.iter().position(|&w| w == worker) {
                        stack.remove(at);
                    }
                    self.sleepers.store(stack.len(), Ordering::SeqCst);
                }
                if self.closed.load(Ordering::SeqCst) && self.pending.load(Ordering::SeqCst) == 0 {
                    return Popped::Closed;
                }
                // The task may still be in flight between the pending
                // increment and the enqueue: yield so the pusher can land it.
                std::thread::yield_now();
                continue;
            }
            event.wait();
            // Normally the signaler already popped us off the stack, but a
            // *delayed* signal from a previous (withdrawn) park can satisfy
            // the wait while this park's stack entry is still live — clean
            // it up so stale entries never accumulate and wakeup budget is
            // never spent on an already-awake worker.
            {
                let mut stack = self.sleeper_stack.lock();
                if let Some(at) = stack.iter().position(|&w| w == worker) {
                    stack.remove(at);
                }
                self.sleepers.store(stack.len(), Ordering::SeqCst);
            }
        }
    }

    fn try_pop(&self, worker: usize, tracer: &Tracer) -> Option<TaskId> {
        let id = self.scan(worker);
        if id.is_some() {
            self.note_popped(worker, tracer);
        }
        id
    }

    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        {
            let mut stack = self.sleeper_stack.lock();
            stack.clear();
            self.sleepers.store(0, Ordering::SeqCst);
        }
        // Signal every worker's event: parked workers wake and observe
        // `closed`; awake workers consume (or reset) the stale signal at
        // their next park.
        for event in &self.parkers {
            event.signal();
        }
    }
}

/// A blocking MPMC queue of ready tasks, in one of two [`QueueMode`]s.
#[derive(Debug)]
pub struct ReadyQueue {
    tracer: Arc<Tracer>,
    imp: QueueImpl,
}

#[derive(Debug)]
enum QueueImpl {
    Fifo(FifoQueue),
    Stealing(StealingQueue),
}

impl ReadyQueue {
    /// Creates an empty, open queue for `workers` worker threads. Depth
    /// samples are recorded through `tracer` when tracing is enabled.
    pub fn new(mode: QueueMode, workers: usize, tracer: Arc<Tracer>) -> Self {
        let imp = match mode {
            QueueMode::Fifo => QueueImpl::Fifo(FifoQueue::new()),
            QueueMode::Stealing => QueueImpl::Stealing(StealingQueue::new(workers)),
        };
        ReadyQueue { tracer, imp }
    }

    /// The queue's scheduling discipline.
    pub fn mode(&self) -> QueueMode {
        match &self.imp {
            QueueImpl::Fifo(_) => QueueMode::Fifo,
            QueueImpl::Stealing(_) => QueueMode::Stealing,
        }
    }

    /// Adds a ready task from outside the worker pool (the master thread)
    /// and wakes one waiting worker.
    pub fn push(&self, id: TaskId) {
        match &self.imp {
            QueueImpl::Fifo(q) => q.push_all(&[id], MASTER_LANE, &self.tracer),
            QueueImpl::Stealing(q) => q.push_injector(&[id], &self.tracer),
        }
    }

    /// Adds a batch of ready tasks from outside the worker pool.
    pub fn push_all(&self, ids: &[TaskId]) {
        match &self.imp {
            QueueImpl::Fifo(q) => q.push_all(ids, MASTER_LANE, &self.tracer),
            QueueImpl::Stealing(q) => q.push_injector(ids, &self.tracer),
        }
    }

    /// Adds a batch of tasks released by `worker` (a finishing task's newly
    /// ready successors). In stealing mode they land in the worker's own
    /// deque — the no-shared-lock fast path.
    pub fn push_from(&self, worker: usize, ids: &[TaskId]) {
        match &self.imp {
            QueueImpl::Fifo(q) => q.push_all(ids, worker, &self.tracer),
            QueueImpl::Stealing(q) => q.push_local(worker, ids, &self.tracer),
        }
    }

    /// Blocks until a task is available for `worker` or the queue is closed
    /// and drained.
    pub fn pop(&self, worker: usize) -> Popped {
        match &self.imp {
            QueueImpl::Fifo(q) => q.pop(worker, &self.tracer),
            QueueImpl::Stealing(q) => q.pop(worker, &self.tracer),
        }
    }

    /// Non-blocking pop; returns `None` when no task is currently findable.
    pub fn try_pop(&self, worker: usize) -> Option<TaskId> {
        match &self.imp {
            QueueImpl::Fifo(q) => q.try_pop(worker, &self.tracer),
            QueueImpl::Stealing(q) => q.try_pop(worker, &self.tracer),
        }
    }

    /// Current number of queued ready tasks.
    pub fn depth(&self) -> usize {
        match &self.imp {
            QueueImpl::Fifo(q) => q.depth(),
            QueueImpl::Stealing(q) => q.pending.load(Ordering::SeqCst),
        }
    }

    /// Closes the queue: workers drain the remaining tasks and then receive
    /// [`Popped::Closed`].
    pub fn close(&self) {
        match &self.imp {
            QueueImpl::Fifo(q) => q.close(),
            QueueImpl::Stealing(q) => q.close(),
        }
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        match &self.imp {
            QueueImpl::Fifo(q) => q.is_closed(),
            QueueImpl::Stealing(q) => q.closed.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn queue(mode: QueueMode, workers: usize) -> ReadyQueue {
        ReadyQueue::new(mode, workers, Arc::new(Tracer::new(false)))
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = queue(QueueMode::Fifo, 2);
        assert_eq!(q.mode(), QueueMode::Fifo);
        q.push(TaskId(1));
        q.push(TaskId(2));
        q.push_all(&[TaskId(3), TaskId(4)]);
        assert_eq!(q.depth(), 4);
        assert_eq!(q.pop(0), Popped::Task(TaskId(1)));
        assert_eq!(q.try_pop(0), Some(TaskId(2)));
        assert_eq!(q.pop(1), Popped::Task(TaskId(3)));
        assert_eq!(q.pop(1), Popped::Task(TaskId(4)));
        assert_eq!(q.try_pop(0), None);
    }

    #[test]
    fn close_drains_then_signals_closed() {
        for mode in [QueueMode::Fifo, QueueMode::Stealing] {
            let q = queue(mode, 1);
            q.push(TaskId(7));
            q.close();
            assert!(q.is_closed());
            assert_eq!(q.pop(0), Popped::Task(TaskId(7)), "{mode:?}");
            assert_eq!(q.pop(0), Popped::Closed, "{mode:?}");
        }
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        for mode in [QueueMode::Fifo, QueueMode::Stealing] {
            let q = Arc::new(queue(mode, 1));
            let q2 = Arc::clone(&q);
            let handle = thread::spawn(move || q2.pop(0));
            thread::sleep(Duration::from_millis(20));
            q.push(TaskId(9));
            assert_eq!(handle.join().unwrap(), Popped::Task(TaskId(9)), "{mode:?}");
        }
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        for mode in [QueueMode::Fifo, QueueMode::Stealing] {
            let q = Arc::new(queue(mode, 3));
            let handles: Vec<_> = (0..3)
                .map(|w| {
                    let q = Arc::clone(&q);
                    thread::spawn(move || q.pop(w))
                })
                .collect();
            thread::sleep(Duration::from_millis(20));
            q.close();
            for h in handles {
                assert_eq!(h.join().unwrap(), Popped::Closed, "{mode:?}");
            }
        }
    }

    #[test]
    fn depth_samples_are_recorded_when_tracing() {
        let tracer = Arc::new(Tracer::new(true));
        let q = ReadyQueue::new(QueueMode::Fifo, 1, Arc::clone(&tracer));
        q.push(TaskId(1));
        q.push(TaskId(2));
        let _ = q.pop(0);
        let samples = tracer.ready_samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].depth, 1);
        assert_eq!(samples[1].depth, 2);
        assert_eq!(samples[2].depth, 1);
    }

    #[test]
    fn stealing_mode_also_samples_depth() {
        let tracer = Arc::new(Tracer::new(true));
        let q = ReadyQueue::new(QueueMode::Stealing, 2, Arc::clone(&tracer));
        q.push(TaskId(1));
        q.push_from(0, &[TaskId(2), TaskId(3)]);
        let _ = q.pop(0);
        let samples = tracer.ready_samples();
        assert!(samples.len() >= 3);
        assert_eq!(samples.last().unwrap().depth, 2);
    }

    #[test]
    fn push_all_empty_is_a_noop() {
        for mode in [QueueMode::Fifo, QueueMode::Stealing] {
            let q = queue(mode, 1);
            q.push_all(&[]);
            q.push_from(0, &[]);
            assert_eq!(q.depth(), 0, "{mode:?}");
        }
    }

    #[test]
    fn owner_pops_lifo_from_its_own_deque() {
        let q = queue(QueueMode::Stealing, 2);
        q.push_from(0, &[TaskId(1), TaskId(2), TaskId(3)]);
        // The owner pops its most recent release first (locality).
        assert_eq!(q.pop(0), Popped::Task(TaskId(3)));
        assert_eq!(q.pop(0), Popped::Task(TaskId(2)));
        assert_eq!(q.pop(0), Popped::Task(TaskId(1)));
    }

    #[test]
    fn thief_steals_oldest_half_of_the_victim() {
        let q = queue(QueueMode::Stealing, 2);
        q.push_from(0, &[TaskId(1), TaskId(2), TaskId(3), TaskId(4)]);
        // Worker 1 steals the front half (oldest tasks) of worker 0.
        assert_eq!(q.pop(1), Popped::Task(TaskId(1)));
        // The second stolen task landed in worker 1's own deque.
        assert_eq!(q.pop(1), Popped::Task(TaskId(2)));
        // The victim keeps its hot end.
        assert_eq!(q.pop(0), Popped::Task(TaskId(4)));
        assert_eq!(q.pop(0), Popped::Task(TaskId(3)));
        assert_eq!(q.depth(), 0);
    }

    /// Per-worker parking: pushing `n` tasks wakes at most `n` of the parked
    /// workers (each through its own event); the rest keep sleeping until
    /// close. Every pushed task is delivered exactly once.
    #[test]
    fn pushes_wake_only_as_many_parked_workers_as_tasks() {
        let q = Arc::new(queue(QueueMode::Stealing, 3));
        let handles: Vec<_> = (0..3)
            .map(|w| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = 0usize;
                    while let Popped::Task(_) = q.pop(w) {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        // Wait until all three workers are parked.
        let parked = |q: &ReadyQueue| match &q.imp {
            QueueImpl::Stealing(s) => s.sleepers.load(Ordering::SeqCst),
            QueueImpl::Fifo(_) => unreachable!(),
        };
        while parked(&q) < 3 {
            thread::yield_now();
        }
        q.push_all(&[TaskId(1), TaskId(2)]);
        while q.depth() > 0 {
            thread::yield_now();
        }
        q.close();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 2, "each pushed task is delivered exactly once");
    }

    #[test]
    fn stealing_mode_delivers_every_task_under_contention() {
        let q = Arc::new(queue(QueueMode::Stealing, 4));
        const N: u64 = 4_000;
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Popped::Task(id) = q.pop(w) {
                        got.push(id.raw());
                    }
                    got
                })
            })
            .collect();
        for i in 0..N {
            q.push(TaskId(i));
        }
        // Give the workers a moment to drain, then close.
        while q.depth() > 0 {
            thread::yield_now();
        }
        q.close();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<u64>>());
    }
}
