//! The Ready Queue (RQ).
//!
//! Tasks whose dependences are satisfied are moved here; idle worker threads
//! pull from it. The paper uses a single ready queue in the runtime system
//! and even identifies the task-creation throughput of the master thread as
//! a bottleneck once ATM makes tasks extremely cheap (Figure 8) — keeping a
//! single queue preserves that behaviour. Pushes and pops optionally sample
//! the queue depth into the tracer, which is the data behind Figure 8(b)/(d).

use crate::task::TaskId;
use crate::trace::Tracer;
use atm_sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

/// Outcome of a blocking pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Popped {
    /// A task was obtained.
    Task(TaskId),
    /// The queue was closed and drained; the worker should exit.
    Closed,
}

#[derive(Debug, Default)]
struct QueueState {
    tasks: VecDeque<TaskId>,
    closed: bool,
}

/// A blocking MPMC FIFO queue of ready tasks.
#[derive(Debug)]
pub struct ReadyQueue {
    state: Mutex<QueueState>,
    condvar: Condvar,
    tracer: Arc<Tracer>,
}

impl ReadyQueue {
    /// Creates an empty, open queue. Depth samples are recorded through
    /// `tracer` when tracing is enabled.
    pub fn new(tracer: Arc<Tracer>) -> Self {
        ReadyQueue {
            state: Mutex::new(QueueState::default()),
            condvar: Condvar::new(),
            tracer,
        }
    }

    /// Adds a ready task and wakes one waiting worker.
    pub fn push(&self, id: TaskId) {
        let mut state = self.state.lock();
        state.tasks.push_back(id);
        self.tracer.sample_ready_depth(state.tasks.len());
        drop(state);
        self.condvar.notify_one();
    }

    /// Adds a batch of ready tasks and wakes as many workers.
    pub fn push_all(&self, ids: &[TaskId]) {
        if ids.is_empty() {
            return;
        }
        let mut state = self.state.lock();
        state.tasks.extend(ids.iter().copied());
        self.tracer.sample_ready_depth(state.tasks.len());
        drop(state);
        for _ in ids {
            self.condvar.notify_one();
        }
    }

    /// Blocks until a task is available or the queue is closed and empty.
    pub fn pop(&self) -> Popped {
        let mut state = self.state.lock();
        loop {
            if let Some(id) = state.tasks.pop_front() {
                self.tracer.sample_ready_depth(state.tasks.len());
                return Popped::Task(id);
            }
            if state.closed {
                return Popped::Closed;
            }
            self.condvar.wait(&mut state);
        }
    }

    /// Non-blocking pop; returns `None` when the queue is currently empty.
    pub fn try_pop(&self) -> Option<TaskId> {
        let mut state = self.state.lock();
        let id = state.tasks.pop_front();
        if id.is_some() {
            self.tracer.sample_ready_depth(state.tasks.len());
        }
        id
    }

    /// Current number of queued ready tasks.
    pub fn depth(&self) -> usize {
        self.state.lock().tasks.len()
    }

    /// Closes the queue: workers drain the remaining tasks and then receive
    /// [`Popped::Closed`].
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        self.condvar.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn queue() -> ReadyQueue {
        ReadyQueue::new(Arc::new(Tracer::new(false)))
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = queue();
        q.push(TaskId(1));
        q.push(TaskId(2));
        q.push_all(&[TaskId(3), TaskId(4)]);
        assert_eq!(q.depth(), 4);
        assert_eq!(q.pop(), Popped::Task(TaskId(1)));
        assert_eq!(q.try_pop(), Some(TaskId(2)));
        assert_eq!(q.pop(), Popped::Task(TaskId(3)));
        assert_eq!(q.pop(), Popped::Task(TaskId(4)));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_then_signals_closed() {
        let q = queue();
        q.push(TaskId(7));
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.pop(), Popped::Task(TaskId(7)));
        assert_eq!(q.pop(), Popped::Closed);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(queue());
        let q2 = Arc::clone(&q);
        let handle = thread::spawn(move || q2.pop());
        thread::sleep(Duration::from_millis(20));
        q.push(TaskId(9));
        assert_eq!(handle.join().unwrap(), Popped::Task(TaskId(9)));
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let q = Arc::new(queue());
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), Popped::Closed);
        }
    }

    #[test]
    fn depth_samples_are_recorded_when_tracing() {
        let tracer = Arc::new(Tracer::new(true));
        let q = ReadyQueue::new(Arc::clone(&tracer));
        q.push(TaskId(1));
        q.push(TaskId(2));
        let _ = q.pop();
        let samples = tracer.ready_samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].depth, 1);
        assert_eq!(samples[1].depth, 2);
        assert_eq!(samples[2].depth, 1);
    }

    #[test]
    fn push_all_empty_is_a_noop() {
        let q = queue();
        q.push_all(&[]);
        assert_eq!(q.depth(), 0);
    }
}
