//! A task-based dataflow runtime system, the substrate on which Approximate
//! Task Memoization (ATM) is built.
//!
//! The ATM paper (Brumar et al., IPDPS 2017) implements its technique inside
//! the Nanos++ runtime of the OmpSs programming model. This crate is a
//! from-scratch Rust reproduction of the runtime abstractions ATM needs:
//!
//! * **data regions** with typed contents ([`region`]), registered with the
//!   runtime and handed back as phantom-typed [`Region<T>`] handles so the
//!   element type never has to be restated;
//! * **task types and task instances** ([`task`]) — one task type per
//!   annotated function (with a declared access signature), one instance per
//!   dynamic submission;
//! * **per-type approximation policy** ([`memo`]) — the [`MemoSpec`]
//!   declared on [`TaskTypeBuilder::memo`]: exact / adaptive / fixed
//!   precision, error metric, training window and per-argument precision
//!   overrides, validated against the access signature;
//! * **validated submission** ([`submit`]) — the fluent
//!   [`Runtime::task`] builder checks arity, access modes and element types
//!   against the task type's signature and the store, returning a
//!   [`SubmitError`] instead of panicking in a worker; the batched
//!   [`Runtime::batch`] / [`Runtime::tasks`] builder stages many tasks and
//!   submits them with [`BatchBuilder::submit_all`] — one validation pass
//!   and one dependence pass, each internal lock taken once per batch;
//! * **dependence tracking and the Task Dependence Graph** ([`dependence`]):
//!   read-after-write, write-after-read and write-after-write orderings
//!   derived from byte-range overlaps between declared accesses, with
//!   lock-light completion (per-node atomic counters, sharded bookkeeping)
//!   and **graph-node retirement** — a finished node whose successors have
//!   all finished is freed and its slab slot recycled, so a long-running
//!   service's graph memory follows the live task window, not the total
//!   task count (observable through the
//!   [`RuntimeStatsSnapshot::live_nodes`] /
//!   [`RuntimeStatsSnapshot::retired_nodes`] gauges);
//! * a **Ready Queue** ([`ready_queue`]) in one of two [`QueueMode`]s —
//!   the paper's single FIFO, or per-worker work-stealing deques — and a
//!   **worker pool** ([`scheduler`]) that pulls ready tasks and executes
//!   them without touching a global lock in steady state;
//! * the **interceptor hook** ([`interceptor`]) where the ATM engine plugs
//!   in: it is consulted right after a task is pulled from the Ready Queue
//!   (memoize / defer / execute) and right after a task completes (update
//!   the history tables, perform postponed copy-outs);
//! * **tracing** ([`trace`]) of per-thread states and ready-queue depth,
//!   which is the data behind the execution-trace figures of the paper;
//! * **statistics** ([`stats`]) of what the runtime did.
//!
//! # Example
//!
//! ```
//! use atm_runtime::prelude::*;
//!
//! // Work stealing is the default queue mode; `QueueMode::Fifo` restores
//! // the paper's single global queue (deterministic with one worker).
//! let rt = RuntimeBuilder::new()
//!     .workers(2)
//!     .queue_mode(QueueMode::Stealing)
//!     .build();
//! let data = rt.store().register_typed("v", vec![1.0f64, 2.0, 3.0, 4.0]).unwrap();
//! let sums = rt.store().register_zeros::<f64>("sum", 1).unwrap();
//!
//! let sum_type = rt.register_task_type(
//!     TaskTypeBuilder::new("sum", |ctx| {
//!         let total: f64 = ctx.arg::<f64>(0).iter().sum();
//!         ctx.out(1, &[total]);
//!     })
//!     .arg::<f64>()
//!     .out::<f64>()
//!     .build(),
//! );
//!
//! rt.task(sum_type).reads(&data).writes(&sums).submit().unwrap();
//! rt.taskwait();
//! assert_eq!(rt.store().read(sums).lock().as_f64(), &[10.0]);
//! ```

// The runtime is deliberately `unsafe`-free (audited 2026-08: zero blocks;
// region storage trades raw address ranges for locked typed buffers — see
// `region.rs`). Keep it that way: soundness here is load-bearing for the
// Miri jobs in CI, which run the region byte-path and sync suites.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod dependence;
pub mod interceptor;
pub mod memo;
pub mod ready_queue;
pub mod region;
pub mod scheduler;
pub mod stats;
pub mod submit;
pub mod task;
pub mod trace;

pub use access::{Access, AccessMode};
pub use interceptor::{Decision, NoopInterceptor, TaskInterceptor};
#[allow(deprecated)]
pub use memo::AtmTaskParams;
pub use memo::{ArgPrecision, ErrorMetric, MemoPolicy, MemoSpec, MemoSpecError};
pub use ready_queue::QueueMode;
pub use region::{
    DataStore, DeregisterError, Elem, ElemType, Region, RegionData, RegionId, RegionReadGuard,
    RegionStatus, RegisterError,
};
pub use scheduler::{Affinity, Observation, Runtime, RuntimeBuilder};
pub use stats::{RuntimeStats, RuntimeStatsSnapshot};
pub use submit::{BatchBuilder, SubmitError, TaskBuilder};
pub use task::{
    SigParam, TaskContext, TaskDesc, TaskId, TaskNotify, TaskSignature, TaskTypeBuilder,
    TaskTypeId, TaskTypeInfo, TaskView, VariadicSig,
};
pub use trace::{ReadySample, ThreadState, TraceEvent, TraceSummary, Tracer};

/// Convenient glob import for applications built on the runtime.
pub mod prelude {
    pub use crate::access::{Access, AccessMode};
    pub use crate::interceptor::{Decision, NoopInterceptor, TaskInterceptor};
    pub use crate::memo::{ArgPrecision, ErrorMetric, MemoPolicy, MemoSpec, MemoSpecError};
    pub use crate::ready_queue::QueueMode;
    pub use crate::region::{
        DataStore, DeregisterError, Elem, ElemType, Region, RegionData, RegionId, RegionStatus,
        RegisterError,
    };
    pub use crate::scheduler::{Affinity, Runtime, RuntimeBuilder};
    pub use crate::submit::{BatchBuilder, SubmitError, TaskBuilder};
    pub use crate::task::{
        TaskContext, TaskDesc, TaskId, TaskNotify, TaskSignature, TaskTypeBuilder, TaskTypeId,
        TaskTypeInfo, TaskView,
    };
    pub use crate::trace::{ThreadState, Tracer};
}
