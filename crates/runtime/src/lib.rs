//! A task-based dataflow runtime system, the substrate on which Approximate
//! Task Memoization (ATM) is built.
//!
//! The ATM paper (Brumar et al., IPDPS 2017) implements its technique inside
//! the Nanos++ runtime of the OmpSs programming model. This crate is a
//! from-scratch Rust reproduction of the runtime abstractions ATM needs:
//!
//! * **data regions** with typed contents ([`region`]), registered with the
//!   runtime so tasks can declare which data they read and produce;
//! * **task types and task instances** ([`task`]) — one task type per
//!   annotated function, one instance per dynamic submission;
//! * **dependence tracking and the Task Dependence Graph** ([`dependence`]):
//!   read-after-write, write-after-read and write-after-write orderings
//!   derived from byte-range overlaps between declared accesses;
//! * a single **Ready Queue** ([`ready_queue`]) and a **worker pool**
//!   ([`scheduler`]) that pulls ready tasks and executes them;
//! * the **interceptor hook** ([`interceptor`]) where the ATM engine plugs
//!   in: it is consulted right after a task is pulled from the Ready Queue
//!   (memoize / defer / execute) and right after a task completes (update
//!   the history tables, perform postponed copy-outs);
//! * **tracing** ([`trace`]) of per-thread states and ready-queue depth,
//!   which is the data behind the execution-trace figures of the paper;
//! * **statistics** ([`stats`]) of what the runtime did.
//!
//! # Example
//!
//! ```
//! use atm_runtime::prelude::*;
//!
//! let rt = RuntimeBuilder::new().workers(2).build();
//! let data = rt.store().register("v", RegionData::F64(vec![1.0, 2.0, 3.0, 4.0]));
//! let sums = rt.store().register("sum", RegionData::F64(vec![0.0]));
//!
//! let sum_type = rt.register_task_type(
//!     TaskTypeBuilder::new("sum", |ctx| {
//!         let total: f64 = ctx.read_f64(0).iter().sum();
//!         ctx.write_f64(1, &[total]);
//!     })
//!     .build(),
//! );
//!
//! rt.submit(TaskDesc::new(
//!     sum_type,
//!     vec![Access::input(data, ElemType::F64), Access::output(sums, ElemType::F64)],
//! ));
//! rt.taskwait();
//! assert_eq!(rt.store().read(sums).lock().as_f64(), &[10.0]);
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod dependence;
pub mod interceptor;
pub mod ready_queue;
pub mod region;
pub mod scheduler;
pub mod stats;
pub mod task;
pub mod trace;

pub use access::{Access, AccessMode};
pub use interceptor::{Decision, NoopInterceptor, TaskInterceptor};
pub use region::{DataStore, ElemType, RegionData, RegionId};
pub use scheduler::{Runtime, RuntimeBuilder};
pub use stats::{RuntimeStats, RuntimeStatsSnapshot};
pub use task::{AtmTaskParams, TaskContext, TaskDesc, TaskId, TaskTypeBuilder, TaskTypeId, TaskTypeInfo, TaskView};
pub use trace::{ThreadState, TraceEvent, TraceSummary, Tracer};

/// Convenient glob import for applications built on the runtime.
pub mod prelude {
    pub use crate::access::{Access, AccessMode};
    pub use crate::interceptor::{Decision, NoopInterceptor, TaskInterceptor};
    pub use crate::region::{DataStore, ElemType, RegionData, RegionId};
    pub use crate::scheduler::{Runtime, RuntimeBuilder};
    pub use crate::task::{
        AtmTaskParams, TaskContext, TaskDesc, TaskId, TaskTypeBuilder, TaskTypeId, TaskTypeInfo,
        TaskView,
    };
    pub use crate::trace::{ThreadState, Tracer};
}
