//! Dependence tracking and the Task Dependence Graph (TDG).
//!
//! When a task is submitted, the runtime compares its declared accesses with
//! the accesses of every *unfinished* previously-submitted task on the same
//! regions. Any overlap involving at least one writer creates a dependence
//! edge (this covers read-after-write, write-after-read and
//! write-after-write orderings). A task becomes ready when all its
//! predecessors have finished; the scheduler then moves it to the Ready
//! Queue, exactly as described in §II-C of the paper.
//!
//! # Concurrency model
//!
//! The graph is engineered so that the steady-state hot path — a worker
//! finishing a task and releasing its successors — acquires **no graph-wide
//! lock**:
//!
//! * task nodes live in a **sharded slab** (`id % NODE_SHARDS` picks the
//!   shard, `id / NODE_SHARDS` the slot); lookups take a brief per-shard
//!   read lock, appends (submission only) a per-shard write lock;
//! * every node carries an **atomic `unresolved` counter** and an atomic
//!   lifecycle state; releasing a successor is one `fetch_sub`;
//! * the per-region **live-accessor index** is sharded by region id, so
//!   pruning a finished task's accesses locks only the shards of the
//!   regions it touched;
//! * the submission ↔ completion race is resolved with a per-node
//!   *closed successor list*: [`TaskGraph::finish`] closes the list before
//!   releasing, and a submitter that finds the list already closed knows
//!   the dependence is already satisfied. A submission guard (the node's
//!   `unresolved` starts at 1) keeps a task from becoming ready while its
//!   edges are still being registered; whoever performs the final decrement
//!   — the submitter's guard release or a predecessor's finish — is the one
//!   that reports the task ready.
//!
//! **Submission is master-thread-only** (one submitter at a time), matching
//! the programming model; completions may come from any worker concurrently.

use crate::access::Access;
use crate::region::RegionId;
use crate::task::{TaskDesc, TaskId};
use atm_sync::{Mutex, RwLock};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of node-slab shards (spreads lookup read-locks across cache lines).
const NODE_SHARDS: usize = 16;
/// Number of live-accessor shards (spreads per-region bookkeeping locks).
const LIVE_SHARDS: usize = 16;

/// Lifecycle of a task inside the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Waiting for one or more predecessors to finish.
    WaitingDeps,
    /// All dependences satisfied; the task is in (or on its way to) the Ready Queue.
    Ready,
    /// A worker is processing the task (executing it or deciding to memoize it).
    Running,
    /// The task hit the In-flight Key Table: an in-flight producer will
    /// provide its outputs and complete it.
    Deferred,
    /// The task is complete (executed, memoized, or completed by a producer).
    Finished,
}

impl NodeState {
    fn from_u8(value: u8) -> NodeState {
        match value {
            0 => NodeState::WaitingDeps,
            1 => NodeState::Ready,
            2 => NodeState::Running,
            3 => NodeState::Deferred,
            4 => NodeState::Finished,
            _ => unreachable!("invalid node state {value}"),
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            NodeState::WaitingDeps => 0,
            NodeState::Ready => 1,
            NodeState::Running => 2,
            NodeState::Deferred => 3,
            NodeState::Finished => 4,
        }
    }
}

/// Successor edges of a node. `closed` flips exactly once, when the node
/// finishes: a submitter that finds the list closed must not register an
/// edge (the dependence is already satisfied).
#[derive(Debug, Default)]
struct SuccessorSlot {
    closed: bool,
    list: Vec<TaskId>,
}

/// One task node in the TDG. Shared between the slab and the worker that is
/// currently processing the task, so the hot path never clones the
/// descriptor.
#[derive(Debug)]
pub struct TaskNode {
    id: TaskId,
    desc: TaskDesc,
    unresolved: AtomicUsize,
    state: AtomicU8,
    successors: Mutex<SuccessorSlot>,
}

impl TaskNode {
    /// The task's id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The task's descriptor (accesses, type, per-instance memo opt-in).
    pub fn desc(&self) -> &TaskDesc {
        &self.desc
    }

    fn state(&self) -> NodeState {
        NodeState::from_u8(self.state.load(Ordering::SeqCst))
    }

    fn set_state(&self, state: NodeState) {
        self.state.store(state.as_u8(), Ordering::SeqCst);
    }
}

/// One shard of the live-accessor index: per region, the accesses of every
/// unfinished task touching it.
type LiveShard = Mutex<HashMap<RegionId, HashMap<TaskId, Vec<Access>>>>;

/// The Task Dependence Graph plus the per-region bookkeeping needed to build it.
#[derive(Debug)]
pub struct TaskGraph {
    /// Sharded node slab: shard = `id % NODE_SHARDS`, slot = `id / NODE_SHARDS`.
    shards: Vec<RwLock<Vec<Arc<TaskNode>>>>,
    /// Accesses of unfinished tasks, indexed per region and sharded by
    /// region id. Finished tasks are pruned, so lookups only scan live
    /// accessors (a handful per region in the block-structured benchmarks).
    live: Vec<LiveShard>,
    /// Serialises submissions. The programming model has one master thread,
    /// but [`crate::Runtime`] is `Sync`, so the id-assignment, slab-append
    /// and edge-wiring sequence must stay safe if callers do share it; the
    /// lock is uncontended in the single-submitter case and completions
    /// never take it.
    submission: Mutex<()>,
    next_id: AtomicU64,
    finished: AtomicU64,
}

impl Default for TaskGraph {
    fn default() -> Self {
        TaskGraph {
            shards: (0..NODE_SHARDS).map(|_| RwLock::new(Vec::new())).collect(),
            live: (0..LIVE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            submission: Mutex::new(()),
            next_id: AtomicU64::new(0),
            finished: AtomicU64::new(0),
        }
    }
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks ever submitted.
    pub fn len(&self) -> usize {
        self.next_id.load(Ordering::SeqCst) as usize
    }

    /// True when no task was ever submitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of finished tasks.
    pub fn finished_count(&self) -> u64 {
        self.finished.load(Ordering::SeqCst)
    }

    /// The node of a task.
    pub fn node(&self, id: TaskId) -> Arc<TaskNode> {
        let shard = self.shards[id.index() % NODE_SHARDS].read();
        Arc::clone(&shard[id.index() / NODE_SHARDS])
    }

    fn live_shard(&self, region: RegionId) -> &LiveShard {
        &self.live[region.index() % LIVE_SHARDS]
    }

    /// Inserts a task, computes its dependences and returns `(id, ready)`.
    ///
    /// `ready == true` means the submitter owns the task's transition to the
    /// Ready Queue. `ready == false` means a predecessor was still in flight
    /// at registration time; whichever predecessor performs the final
    /// release will report the task as newly ready from [`TaskGraph::finish`].
    ///
    /// Submissions are serialised internally (the programming model's
    /// master thread never contends on that lock); completions run
    /// concurrently and never take it.
    pub fn submit(&self, desc: TaskDesc) -> (TaskId, bool) {
        let _submitting = self.submission.lock();
        let id = TaskId(self.next_id.fetch_add(1, Ordering::SeqCst));

        // Insert the node into the slab *before* registering edges: a
        // predecessor finishing mid-registration must be able to look the
        // node up. The submission guard (unresolved = 1) keeps the task
        // from becoming ready until registration is complete.
        let node = Arc::new(TaskNode {
            id,
            desc,
            unresolved: AtomicUsize::new(1),
            state: AtomicU8::new(NodeState::WaitingDeps.as_u8()),
            successors: Mutex::new(SuccessorSlot::default()),
        });
        {
            let mut shard = self.shards[id.index() % NODE_SHARDS].write();
            debug_assert_eq!(shard.len(), id.index() / NODE_SHARDS);
            shard.push(Arc::clone(&node));
        }

        // Collect unique predecessors among live (unfinished) accessors,
        // registering this task's own accesses as live in the same pass.
        let mut preds: BTreeSet<TaskId> = BTreeSet::new();
        for access in &node.desc.accesses {
            let mut shard = self.live_shard(access.region).lock();
            let per_region = shard.entry(access.region).or_default();
            for (tid, prev_accesses) in per_region.iter() {
                if *tid != id && prev_accesses.iter().any(|prev| access.conflicts_with(prev)) {
                    preds.insert(*tid);
                }
            }
            per_region.entry(id).or_default().push(access.clone());
        }

        // Register one edge per predecessor. Holding the predecessor's
        // successor lock while incrementing `unresolved` guarantees the
        // matching decrement (performed by the predecessor's finish, which
        // needs the same lock to close the list) cannot arrive first.
        for pred in &preds {
            let pred_node = self.node(*pred);
            let mut slot = pred_node.successors.lock();
            if slot.closed {
                // The predecessor finished before the edge existed: the
                // dependence is already satisfied.
                continue;
            }
            slot.list.push(id);
            node.unresolved.fetch_add(1, Ordering::SeqCst);
        }

        // Release the submission guard. Exactly one decrement observes the
        // counter reach zero; if it is ours, the task is ready now.
        let ready = node.unresolved.fetch_sub(1, Ordering::SeqCst) == 1;
        if ready {
            node.set_state(NodeState::Ready);
        }
        (id, ready)
    }

    /// Marks a ready task as picked up by a worker and returns its node, so
    /// the worker reaches the descriptor without a second lookup or a clone.
    pub fn start_running(&self, id: TaskId) -> Arc<TaskNode> {
        let node = self.node(id);
        debug_assert_eq!(
            node.state(),
            NodeState::Ready,
            "only ready tasks can start running"
        );
        node.set_state(NodeState::Running);
        node
    }

    /// Marks a ready task as picked up by a worker.
    pub fn mark_running(&self, id: TaskId) {
        let _ = self.start_running(id);
    }

    /// Marks a running task as deferred to an in-flight producer.
    ///
    /// The producer may complete the task *before* the deferring worker gets
    /// here: the deferral registration (inside the interceptor) is visible
    /// to the producer's completion path as soon as it happens, so the
    /// producer can legally call [`TaskGraph::finish`] on a still-`Running`
    /// waiter. In that case the task is already `Finished` and this call is
    /// a no-op — only a `Running` task actually moves to `Deferred`.
    pub fn mark_deferred(&self, id: TaskId) {
        let node = self.node(id);
        if node
            .state
            .compare_exchange(
                NodeState::Running.as_u8(),
                NodeState::Deferred.as_u8(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            debug_assert_eq!(
                node.state(),
                NodeState::Finished,
                "only running tasks (or tasks already completed by their producer) can be deferred"
            );
        }
    }

    /// Completes a task by id (looks the node up first); see
    /// [`TaskGraph::finish_node`] for the lookup-free variant a worker uses
    /// with the node it already holds.
    pub fn finish(&self, id: TaskId) -> Vec<TaskId> {
        self.finish_node(&self.node(id))
    }

    /// Completes a task: prunes its live accesses, releases its successors
    /// and returns the successors that became ready.
    ///
    /// Takes no graph-wide lock: only the live-index shards of the regions
    /// this task touched, the node's own successor lock, and one atomic
    /// decrement per successor.
    pub fn finish_node(&self, node: &TaskNode) -> Vec<TaskId> {
        let id = node.id();
        let state = node.state();
        assert!(
            matches!(state, NodeState::Running | NodeState::Deferred),
            "finish() on a task that is not running or deferred: {state:?}"
        );
        node.set_state(NodeState::Finished);
        self.finished.fetch_add(1, Ordering::SeqCst);

        // Prune live accesses of this task (per-region shard locks only).
        for access in &node.desc.accesses {
            let mut shard = self.live_shard(access.region).lock();
            if let Some(per_region) = shard.get_mut(&access.region) {
                per_region.remove(&id);
                if per_region.is_empty() {
                    shard.remove(&access.region);
                }
            }
        }

        // Close the successor list: from here on, new submissions treat this
        // task as finished and register no edges onto it.
        let successors = {
            let mut slot = node.successors.lock();
            slot.closed = true;
            std::mem::take(&mut slot.list)
        };

        let mut newly_ready = Vec::new();
        for succ in successors {
            let succ_node = self.node(succ);
            let prev = succ_node.unresolved.fetch_sub(1, Ordering::SeqCst);
            debug_assert!(prev > 0, "successor with no unresolved dependences");
            if prev == 1 {
                debug_assert_eq!(succ_node.state(), NodeState::WaitingDeps);
                succ_node.set_state(NodeState::Ready);
                newly_ready.push(succ);
            }
        }
        newly_ready
    }

    /// Current state of a task.
    pub fn state(&self, id: TaskId) -> NodeState {
        self.node(id).state()
    }

    /// Direct successors of a task so far (for tests and diagnostics).
    pub fn successors(&self, id: TaskId) -> Vec<TaskId> {
        self.node(id).successors.lock().list.clone()
    }

    /// Number of unresolved predecessors of a task (for tests and
    /// diagnostics). The submission guard is released before
    /// [`TaskGraph::submit`] returns, so this is exactly the number of
    /// in-flight predecessors.
    pub fn unresolved(&self, id: TaskId) -> usize {
        self.node(id).unresolved.load(Ordering::SeqCst)
    }

    /// Checks the structural invariant that every edge goes from an earlier
    /// submission to a later one — which makes the TDG acyclic by
    /// construction. Used by tests.
    pub fn edges_respect_submission_order(&self) -> bool {
        (0..self.len()).all(|i| {
            self.successors(TaskId(i as u64))
                .iter()
                .all(|s| s.index() > i)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use crate::region::{DataStore, Region};
    use crate::task::TaskTypeId;

    fn store_with_regions(n: usize) -> (DataStore, Vec<Region<f32>>) {
        let store = DataStore::new();
        let ids = (0..n)
            .map(|i| store.register_zeros::<f32>(format!("r{i}"), 16).unwrap())
            .collect();
        (store, ids)
    }

    fn desc(accesses: Vec<Access>) -> TaskDesc {
        TaskDesc::new(TaskTypeId(0), accesses)
    }

    #[test]
    fn independent_tasks_are_immediately_ready() {
        let (_store, r) = store_with_regions(2);
        let g = TaskGraph::new();
        let (a, ra) = g.submit(desc(vec![Access::write(&r[0])]));
        let (b, rb) = g.submit(desc(vec![Access::write(&r[1])]));
        assert!(ra && rb);
        assert_eq!(g.state(a), NodeState::Ready);
        assert_eq!(g.state(b), NodeState::Ready);
        assert!(g.edges_respect_submission_order());
    }

    #[test]
    fn raw_dependence_orders_producer_before_consumer() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (producer, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (consumer, ready) = g.submit(desc(vec![Access::read(&r[0])]));
        assert!(!ready);
        assert_eq!(g.unresolved(consumer), 1);
        assert_eq!(g.successors(producer), vec![consumer]);

        g.mark_running(producer);
        let newly = g.finish(producer);
        assert_eq!(newly, vec![consumer]);
        assert_eq!(g.state(consumer), NodeState::Ready);
    }

    #[test]
    fn war_and_waw_dependences_are_created() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (reader, _) = g.submit(desc(vec![Access::read(&r[0])]));
        let (writer1, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (writer2, w2_ready) = g.submit(desc(vec![Access::write(&r[0])]));
        // WAR: writer1 depends on reader. WAW: writer2 depends on writer1
        // (and also on reader through the WAR chain; exact edge count may
        // include both since the reader is still live).
        assert_eq!(g.unresolved(writer1), 1);
        assert!(!w2_ready);
        assert!(g.successors(reader).contains(&writer1));
        assert!(g.successors(writer1).contains(&writer2));
    }

    #[test]
    fn two_readers_do_not_depend_on_each_other() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (_w, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (a, _) = g.submit(desc(vec![Access::read(&r[0])]));
        let (b, _) = g.submit(desc(vec![Access::read(&r[0])]));
        // Both readers depend only on the writer, not on each other.
        assert_eq!(g.unresolved(a), 1);
        assert_eq!(g.unresolved(b), 1);
        assert!(g.successors(a).is_empty());
    }

    #[test]
    fn finished_predecessors_do_not_create_dependences() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (w, _) = g.submit(desc(vec![Access::write(&r[0])]));
        g.mark_running(w);
        g.finish(w);
        let (reader, ready) = g.submit(desc(vec![Access::read(&r[0])]));
        assert!(
            ready,
            "a reader submitted after the writer finished must be immediately ready"
        );
        assert_eq!(g.unresolved(reader), 0);
    }

    #[test]
    fn ranged_accesses_only_conflict_when_overlapping() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (_w1, _) = g.submit(desc(vec![Access::write(&r[0]).with_range(0..32)]));
        let (w2, ready2) = g.submit(desc(vec![Access::write(&r[0]).with_range(32..64)]));
        assert!(ready2, "disjoint block writers must be independent");
        let (reader, ready3) = g.submit(desc(vec![Access::read(&r[0]).with_range(16..48)]));
        assert!(
            !ready3,
            "a reader straddling both blocks depends on both writers"
        );
        assert_eq!(g.unresolved(reader), 2);
        let _ = w2;
    }

    #[test]
    fn deferred_tasks_complete_like_executed_ones() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (producer, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (deferred, _) = g.submit(desc(vec![Access::read_write(&r[0])]));
        let (consumer, _) = g.submit(desc(vec![Access::read(&r[0])]));
        g.mark_running(producer);
        assert_eq!(g.finish(producer), vec![deferred]);
        g.mark_running(deferred);
        g.mark_deferred(deferred);
        assert_eq!(g.state(deferred), NodeState::Deferred);
        let newly = g.finish(deferred);
        assert_eq!(newly, vec![consumer]);
        assert_eq!(g.finished_count(), 2);
    }

    #[test]
    fn diamond_dependence_pattern() {
        // a writes r0; b and c read r0 and write r1/r2; d reads r1 and r2.
        let (_store, r) = store_with_regions(3);
        let g = TaskGraph::new();
        let (a, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (b, _) = g.submit(desc(vec![Access::read(&r[0]), Access::write(&r[1])]));
        let (c, _) = g.submit(desc(vec![Access::read(&r[0]), Access::write(&r[2])]));
        let (d, _) = g.submit(desc(vec![Access::read(&r[1]), Access::read(&r[2])]));
        assert_eq!(g.unresolved(d), 2);
        g.mark_running(a);
        let ready_after_a: BTreeSet<TaskId> = g.finish(a).into_iter().collect();
        assert_eq!(ready_after_a, [b, c].into_iter().collect());
        g.mark_running(b);
        assert!(g.finish(b).is_empty());
        g.mark_running(c);
        assert_eq!(g.finish(c), vec![d]);
    }

    #[test]
    #[should_panic(expected = "not running or deferred")]
    fn finishing_a_waiting_task_panics() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (_w, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (waiting, _) = g.submit(desc(vec![Access::read(&r[0])]));
        g.finish(waiting);
    }

    /// The IKT hand-off race: an in-flight producer may finish (and
    /// complete) a deferred waiter before the waiter's worker reaches
    /// `mark_deferred`. The late `mark_deferred` must be a tolerated no-op,
    /// not a panic that kills the worker thread.
    #[test]
    fn late_mark_deferred_after_producer_completion_is_tolerated() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (waiter, _) = g.submit(desc(vec![Access::write(&r[0])]));
        g.mark_running(waiter);
        // Producer's after_execute completes the waiter first…
        assert!(g.finish(waiter).is_empty());
        // …then the deferring worker's mark_deferred arrives late.
        g.mark_deferred(waiter);
        assert_eq!(g.state(waiter), NodeState::Finished);
        assert_eq!(g.finished_count(), 1);
    }

    #[test]
    fn a_task_reading_and_writing_the_same_region_does_not_self_depend() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (t, ready) = g.submit(desc(vec![Access::read(&r[0]), Access::write(&r[0])]));
        assert!(ready, "a task never depends on itself");
        assert_eq!(g.unresolved(t), 0);
    }

    #[test]
    fn node_handle_exposes_the_descriptor_without_cloning() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (id, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let node = g.start_running(id);
        assert_eq!(node.desc().accesses.len(), 1);
        assert_eq!(g.state(id), NodeState::Running);
    }

    /// Concurrent finishes racing a stream of submissions never lose a
    /// release: every task completes exactly once.
    #[test]
    fn concurrent_finishes_and_submissions_release_exactly_once() {
        use std::sync::mpsc;
        let (_store, r) = store_with_regions(4);
        let g = Arc::new(TaskGraph::new());
        let (ready_tx, ready_rx) = mpsc::channel::<TaskId>();

        // Worker: finishes whatever becomes ready, forwarding releases.
        let worker_graph = Arc::clone(&g);
        let worker_tx = ready_tx.clone();
        let worker = std::thread::spawn(move || {
            let mut finished = 0u64;
            for id in ready_rx {
                worker_graph.mark_running(id);
                for next in worker_graph.finish(id) {
                    worker_tx.send(next).unwrap();
                }
                finished += 1;
                if finished == 400 {
                    break;
                }
            }
            finished
        });

        // Master: submits 100 chains of 4 inout tasks each.
        for chain in 0..100 {
            for _ in 0..4 {
                let (id, ready) = g.submit(desc(vec![Access::read_write(&r[chain % 4])]));
                if ready {
                    ready_tx.send(id).unwrap();
                }
            }
        }
        drop(ready_tx);
        assert_eq!(worker.join().unwrap(), 400);
        assert_eq!(g.finished_count(), 400);
        assert!(g.edges_respect_submission_order());
    }
}
