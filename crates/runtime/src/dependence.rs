//! Dependence tracking and the Task Dependence Graph (TDG).
//!
//! When a task is submitted, the runtime compares its declared accesses with
//! the accesses of every *unfinished* previously-submitted task on the same
//! regions. Any overlap involving at least one writer creates a dependence
//! edge (this covers read-after-write, write-after-read and
//! write-after-write orderings). A task becomes ready when all its
//! predecessors have finished; the scheduler then moves it to the Ready
//! Queue, exactly as described in §II-C of the paper.
//!
//! # Concurrency model
//!
//! The graph is engineered so that the steady-state hot path — a worker
//! finishing a task and releasing its successors — acquires **no graph-wide
//! lock**:
//!
//! * task nodes live in a **sharded slab** addressed by **generational
//!   slot ids**: a [`TaskId`] packs the shard, the slot index within the
//!   shard, and the slot's generation into one `u64` (see the [`TaskId`]
//!   docs for the exact bit layout). A lookup is a bounds check plus a
//!   generation compare — no hashing — under a brief per-shard read lock;
//!   inserts and slot frees take a per-shard write lock, and
//!   [`TaskGraph::submit_batch`] takes each write lock **once per batch**,
//!   not once per task. Shards are chosen round-robin by the graph's
//!   submission sequence counter, so consecutive submissions spread across
//!   shards deterministically;
//! * every node carries an **atomic `unresolved` counter** and an atomic
//!   lifecycle state; releasing a successor is one `fetch_sub`;
//! * the per-region **live-accessor index** is sharded by region id, so
//!   pruning a finished task's accesses locks only the shards of the
//!   regions it touched — and a batch submission locks each touched shard
//!   once for the whole dependence pass;
//! * the submission ↔ completion race is resolved with a per-node
//!   *closed successor list*: [`TaskGraph::finish`] closes the list before
//!   releasing, and a submitter that finds the list already closed knows
//!   the dependence is already satisfied. A submission guard (the node's
//!   `unresolved` starts at 1) keeps a task from becoming ready while its
//!   edges are still being registered; whoever performs the final decrement
//!   — the submitter's guard release or a predecessor's finish — is the one
//!   that reports the task ready.
//!
//! # Concurrent submitters
//!
//! Submission is serialised per **submission shard**, not globally: a
//! submitter locks (in ascending order) the submission shard of every
//! live-index shard its accesses map to, and holds them across id
//! assignment, the dependence pass and edge wiring
//! ([`TaskGraph::lock_submission`]). Two tasks that could ever conflict
//! share a region, therefore a live-index shard, therefore a submission
//! shard — so every conflicting pair is fully serialised, the later
//! submitter draws the larger **sequence number** (sequence numbers are
//! assigned while the common shard is held and `next_seq` is monotonic)
//! and observes the earlier task's live accesses, which keeps every edge
//! pointing from an earlier submission to a later one
//! ([`TaskGraph::edges_respect_submission_order`]). Submitters
//! with disjoint shard sets — independent sessions of a serving tier —
//! share no lock at all and proceed truly concurrently. Completions may
//! come from any worker concurrently and never take a submission lock.
//!
//! # Node lifecycle and retirement
//!
//! A node moves through `WaitingDeps → Ready → Running (→ Deferred) →
//! Finished`, and is finally **retired** — its slab slot freed and recycled
//! — once it satisfies the retirement condition:
//!
//! > the task has finished, **and** every successor that registered an edge
//! > on it has finished.
//!
//! The condition is tracked with a refcount-style *retire-hold* counter:
//! one hold for the task's own completion, plus one per registered
//! successor edge (taken under the same successor lock that registers the
//! edge). [`TaskGraph::finish_node`] releases the node's own hold and the
//! holds it took on its predecessors; whoever releases the last hold frees
//! the slot onto the shard's free list **and bumps the slot's generation**,
//! so a stale lookup with a retired id (e.g. a submitter that saw the task
//! among the live accessors an instant before it finished) fails the
//! generation compare and observes "gone = finished" instead of aliasing
//! the slot's next occupant — no ABA, with no id → slot map to maintain.
//! This bounds the graph's steady-state memory by the *live* task window
//! instead of the total submitted count — the [`TaskGraph::live_nodes`] /
//! [`TaskGraph::retired_count`] gauges make that observable, and the slab
//! holds **no per-id state at all** (a retired id occupies zero bytes).

use crate::access::Access;
use crate::region::RegionId;
use crate::task::{TaskDesc, TaskId};
use atm_sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use atm_sync::{Mutex, MutexGuard, RwLock};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Number of node-slab shards (spreads lookup read-locks across cache
/// lines). Fixed by the shard field of the [`TaskId`] bit layout.
const NODE_SHARDS: usize = TaskId::SHARDS;
/// Number of live-accessor shards (spreads per-region bookkeeping locks).
const LIVE_SHARDS: usize = 16;

/// Lifecycle of a task inside the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Waiting for one or more predecessors to finish.
    WaitingDeps,
    /// All dependences satisfied; the task is in (or on its way to) the Ready Queue.
    Ready,
    /// A worker is processing the task (executing it or deciding to memoize it).
    Running,
    /// The task hit the In-flight Key Table: an in-flight producer will
    /// provide its outputs and complete it.
    Deferred,
    /// The task is complete (executed, memoized, or completed by a producer).
    Finished,
}

impl NodeState {
    fn from_u8(value: u8) -> NodeState {
        match value {
            0 => NodeState::WaitingDeps,
            1 => NodeState::Ready,
            2 => NodeState::Running,
            3 => NodeState::Deferred,
            4 => NodeState::Finished,
            _ => unreachable!("invalid node state {value}"),
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            NodeState::WaitingDeps => 0,
            NodeState::Ready => 1,
            NodeState::Running => 2,
            NodeState::Deferred => 3,
            NodeState::Finished => 4,
        }
    }
}

/// Successor edges of a node. `closed` flips exactly once, when the node
/// finishes: a submitter that finds the list closed must not register an
/// edge (the dependence is already satisfied).
#[derive(Debug, Default)]
struct SuccessorSlot {
    closed: bool,
    list: Vec<TaskId>,
}

/// One task node in the TDG. Shared between the slab and the worker that is
/// currently processing the task, so the hot path never clones the
/// descriptor.
#[derive(Debug)]
pub struct TaskNode {
    id: TaskId,
    /// Graph-wide submission sequence number (creation order). The packed
    /// id deliberately carries no order information, so diagnostics and
    /// figures that need creation-order rank read this instead.
    seq: u64,
    desc: TaskDesc,
    unresolved: AtomicUsize,
    state: AtomicU8,
    successors: Mutex<SuccessorSlot>,
    /// Retirement refcount: 1 for the task's own completion plus 1 per
    /// registered successor edge. The releaser of the last hold frees the
    /// node's slab slot (see the module docs on retirement).
    retire_holds: AtomicUsize,
    /// The predecessors this node registered edges on (their retire holds
    /// are released when this node finishes). Holding the `Arc` keeps a
    /// predecessor's memory valid even after its slot was recycled.
    preds: Mutex<Vec<Arc<TaskNode>>>,
}

impl TaskNode {
    /// The task's id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The task's graph-wide submission sequence number (creation order,
    /// the x axis of Figure 9). Unlike the packed id this is dense and
    /// monotonic across the whole graph.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The task's descriptor (accesses, type, per-instance memo opt-in).
    pub fn desc(&self) -> &TaskDesc {
        &self.desc
    }

    fn state(&self) -> NodeState {
        NodeState::from_u8(self.state.load(Ordering::SeqCst))
    }

    fn set_state(&self, state: NodeState) {
        self.state.store(state.as_u8(), Ordering::SeqCst);
    }
}

/// The live-accessor map of one shard: per region, the accesses of every
/// unfinished task touching it.
type LiveMap = HashMap<RegionId, HashMap<TaskId, Vec<Access>>>;

/// One shard of the live-accessor index.
type LiveShard = Mutex<LiveMap>;

/// Exclusive hold of the submission shards a set of regions maps to,
/// returned by [`TaskGraph::lock_submission`]. While a permit is held, no
/// other submitter can insert (and no deregistration can race) a task
/// touching those regions — which is what lets [`crate::Runtime`] validate
/// a descriptor against the store and then submit it under one critical
/// section, atomically with respect to region retirement.
#[must_use = "a submission permit only excludes other submitters while it is held"]
pub struct SubmissionPermit<'g> {
    guards: Vec<MutexGuard<'g, ()>>,
}

impl std::fmt::Debug for SubmissionPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmissionPermit")
            .field("shards", &self.guards.len())
            .finish()
    }
}

/// One generational slot of the node slab. The generation counts how many
/// times the slot has been recycled; an id minted against an older
/// generation fails the compare in [`NodeShard::get`] and reads as retired.
#[derive(Debug, Default)]
struct Slot {
    generation: u32,
    node: Option<Arc<TaskNode>>,
}

/// One shard of the node slab: recyclable generational slots addressed
/// directly by the slot field of the packed [`TaskId`] — there is no
/// id → slot map to probe or to grow. Retiring a node vacates its slot,
/// bumps the generation and pushes the slot onto the free list, so the
/// shard's footprint follows the *live* task window, not the total
/// submitted count.
#[derive(Debug, Default)]
struct NodeShard {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl NodeShard {
    /// Allocates a slot (recycling the free list first), mints the packed
    /// id from `(shard, slot, generation)` and constructs the node in
    /// place. Called under the shard's write lock.
    fn insert(&mut self, shard_index: usize, seq: u64, desc: TaskDesc) -> Arc<TaskNode> {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slots.push(Slot::default());
                u32::try_from(self.slots.len() - 1).expect("slab shard exceeds u32 slots")
            }
        };
        let entry = &mut self.slots[slot as usize];
        debug_assert!(entry.node.is_none(), "allocated slot must be vacant");
        let node = Arc::new(TaskNode {
            id: TaskId::pack(shard_index, slot, entry.generation),
            seq,
            desc,
            unresolved: AtomicUsize::new(1),
            state: AtomicU8::new(NodeState::WaitingDeps.as_u8()),
            successors: Mutex::new(SuccessorSlot::default()),
            retire_holds: AtomicUsize::new(1),
            preds: Mutex::new(Vec::new()),
        });
        entry.node = Some(Arc::clone(&node));
        node
    }

    /// The hot-path lookup: bounds check + generation compare + `Arc`
    /// clone. A stale generation (the slot was recycled since the id was
    /// minted) reads as `None` = retired = finished.
    fn get(&self, slot: u32, generation: u32) -> Option<Arc<TaskNode>> {
        let entry = self.slots.get(slot as usize)?;
        if entry.generation != generation {
            return None;
        }
        entry.node.as_ref().map(Arc::clone)
    }

    /// Vacates a slot, bumps its generation (invalidating every id minted
    /// against the old one) and recycles it. Called under the shard's
    /// write lock by the releaser of the node's last retire hold.
    fn remove(&mut self, slot: u32, generation: u32) {
        let entry = &mut self.slots[slot as usize];
        debug_assert_eq!(entry.generation, generation, "retiring a stale generation");
        debug_assert!(entry.node.is_some(), "retiring a vacant slot");
        entry.node = None;
        entry.generation = entry.generation.wrapping_add(1) & TaskId::GEN_MASK;
        self.free.push(slot);
    }
}

/// The Task Dependence Graph plus the per-region bookkeeping needed to build it.
#[derive(Debug)]
pub struct TaskGraph {
    /// Sharded node slab, addressed by the shard/slot/generation fields of
    /// the packed [`TaskId`]. Shards are chosen round-robin by submission
    /// sequence number; slots are recycled (with a generation bump) as
    /// nodes retire.
    shards: Vec<RwLock<NodeShard>>,
    /// Accesses of unfinished tasks, indexed per region and sharded by
    /// region id. Finished tasks are pruned, so lookups only scan live
    /// accessors (a handful per region in the block-structured benchmarks).
    live: Vec<LiveShard>,
    /// Per-shard submission locks, one per live-index shard. A submitter
    /// locks the shards its accesses touch (ascending, deadlock-free);
    /// conflicting submitters always share a shard, disjoint ones never
    /// contend (see the module docs). Completions never take these.
    submission: Vec<Mutex<()>>,
    /// Monotonic submission sequence counter: assigns each task its dense
    /// creation-order rank ([`TaskNode::seq`]) and picks its slab shard
    /// (`seq % NODE_SHARDS`).
    next_seq: AtomicU64,
    finished: AtomicU64,
    retired: AtomicU64,
}

impl Default for TaskGraph {
    fn default() -> Self {
        TaskGraph {
            shards: (0..NODE_SHARDS)
                .map(|_| RwLock::new(NodeShard::default()))
                .collect(),
            live: (0..LIVE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            submission: (0..LIVE_SHARDS).map(|_| Mutex::new(())).collect(),
            next_seq: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            retired: AtomicU64::new(0),
        }
    }
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks ever submitted.
    pub fn len(&self) -> usize {
        self.next_seq.load(Ordering::SeqCst) as usize
    }

    /// True when no task was ever submitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of finished tasks.
    pub fn finished_count(&self) -> u64 {
        self.finished.load(Ordering::SeqCst)
    }

    /// Number of retired tasks (finished, all successors finished, slab
    /// slot freed).
    pub fn retired_count(&self) -> u64 {
        self.retired.load(Ordering::SeqCst)
    }

    /// Number of nodes currently resident in the slab (submitted minus
    /// retired). In steady state this follows the live task window, not the
    /// total submitted count.
    pub fn live_nodes(&self) -> u64 {
        // Load `retired` first: a submission landing between the two loads
        // then over-counts the gauge instead of underflowing it (retired
        // can never exceed the submitted count it was read against).
        let retired = self.retired.load(Ordering::SeqCst);
        self.next_seq.load(Ordering::SeqCst).saturating_sub(retired)
    }

    /// The node of a task, if it has not retired yet. `None` means the task
    /// finished, all its successors finished, and its slot was recycled
    /// (the generation compare fails for the stale id). A bounds check plus
    /// a generation compare under the shard's read lock — no hash probe.
    pub fn try_node(&self, id: TaskId) -> Option<Arc<TaskNode>> {
        self.shards[id.shard()]
            .read()
            .get(id.slot(), id.generation())
    }

    /// The node of a task.
    ///
    /// # Panics
    /// Panics when the task has already retired; use [`TaskGraph::try_node`]
    /// for lookups that may race retirement.
    pub fn node(&self, id: TaskId) -> Arc<TaskNode> {
        self.try_node(id)
            .unwrap_or_else(|| panic!("{id} has retired (or was never submitted)"))
    }

    fn live_shard_index(region: RegionId) -> usize {
        region.index() % LIVE_SHARDS
    }

    /// Locks the submission shards the given regions map to, in ascending
    /// shard order (deadlock-free by hierarchy), and returns the permit.
    /// Conflicting submitters share a region and therefore block on a
    /// common shard; disjoint ones acquire disjoint locks and run
    /// concurrently. An empty region set locks nothing.
    pub fn lock_submission(
        &self,
        regions: impl IntoIterator<Item = RegionId>,
    ) -> SubmissionPermit<'_> {
        let mut touched = [false; LIVE_SHARDS];
        for region in regions {
            touched[Self::live_shard_index(region)] = true;
        }
        SubmissionPermit {
            guards: self
                .submission
                .iter()
                .enumerate()
                .filter(|(i, _)| touched[*i])
                .map(|(_, lock)| lock.lock())
                .collect(),
        }
    }

    /// True when at least one unfinished task declares an access on
    /// `region`. Sampled under the region's live-index shard lock; hold the
    /// region's [`TaskGraph::lock_submission`] permit to keep the answer
    /// stable against concurrent submitters (deregistration does).
    pub fn region_has_live_accessors(&self, region: RegionId) -> bool {
        self.live[Self::live_shard_index(region)]
            .lock()
            .get(&region)
            .is_some_and(|accessors| !accessors.is_empty())
    }

    /// Number of regions currently present in the live-accessor index
    /// (regions with at least one unfinished accessor). Entries are pruned
    /// as their last live task finishes, so this gauge follows the live
    /// working set, not every region ever touched.
    pub fn live_index_regions(&self) -> usize {
        self.live.iter().map(|shard| shard.lock().len()).sum()
    }

    /// Releases one retire hold on `node`; the releaser of the last hold
    /// frees the slab slot.
    fn release_retire_hold(&self, node: &TaskNode) {
        let prev = node.retire_holds.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "retire hold released twice");
        if prev == 1 {
            debug_assert_eq!(node.state(), NodeState::Finished);
            self.shards[node.id.shard()]
                .write()
                .remove(node.id.slot(), node.id.generation());
            self.retired.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Inserts a task, computes its dependences and returns `(id, ready)`.
    ///
    /// `ready == true` means the submitter owns the task's transition to the
    /// Ready Queue. `ready == false` means a predecessor was still in flight
    /// at registration time; whichever predecessor performs the final
    /// release will report the task as newly ready from [`TaskGraph::finish`].
    ///
    /// Conflicting submissions are serialised internally (per submission
    /// shard — see the module docs); completions run concurrently and never
    /// take a submission lock. This is the lean single-task path — no batch
    /// scaffolding allocated; see [`TaskGraph::submit_batch`] for the
    /// lock-amortised wave path. The two are semantically identical
    /// (property-tested against each other).
    pub fn submit(&self, desc: TaskDesc) -> (TaskId, bool) {
        let permit = self.lock_submission(desc.accesses.iter().map(|a| a.region));
        self.submit_with(&permit, desc)
    }

    /// The body of [`TaskGraph::submit`], for callers that already hold the
    /// permit covering the descriptor's regions (the runtime validates the
    /// descriptor against the store inside the same critical section, so a
    /// region cannot retire between the check and the insertion).
    pub fn submit_with(&self, _permit: &SubmissionPermit<'_>, desc: TaskDesc) -> (TaskId, bool) {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let shard_index = (seq as usize) % NODE_SHARDS;

        // Insert the node into the slab *before* registering edges: a
        // predecessor finishing mid-registration must be able to look the
        // node up. The submission guard (unresolved = 1) keeps the task
        // from becoming ready until registration is complete. The id is
        // minted inside the shard (it packs the slot the node lands in).
        let node = self.shards[shard_index]
            .write()
            .insert(shard_index, seq, desc);
        let id = node.id();

        // Collect unique predecessors among live (unfinished) accessors,
        // registering this task's own accesses as live in the same pass.
        let mut preds: BTreeSet<TaskId> = BTreeSet::new();
        for access in &node.desc.accesses {
            let mut shard = self.live[Self::live_shard_index(access.region)].lock();
            let per_region = shard.entry(access.region).or_default();
            for (tid, prev_accesses) in per_region.iter() {
                if *tid != id && prev_accesses.iter().any(|prev| access.conflicts_with(prev)) {
                    preds.insert(*tid);
                }
            }
            per_region.entry(id).or_default().push(access.clone());
        }

        // Register one edge per predecessor (see `wire_edges`).
        self.wire_edges(&node, &preds);

        // Release the submission guard. Exactly one decrement observes the
        // counter reach zero; if it is ours, the task is ready now.
        let ready = node.unresolved.fetch_sub(1, Ordering::SeqCst) == 1;
        if ready {
            node.set_state(NodeState::Ready);
        }
        (id, ready)
    }

    /// Registers one edge per predecessor of `node`. Holding the
    /// predecessor's successor lock while incrementing `unresolved` (and
    /// taking the retire hold) guarantees the matching decrement —
    /// performed by the predecessor's finish, which needs the same lock to
    /// close the list — cannot arrive first. A predecessor observed live
    /// during the dependence pass may have finished (closed list) or even
    /// retired (gone from the slab) since: both mean the dependence is
    /// already satisfied.
    fn wire_edges<'a>(&self, node: &Arc<TaskNode>, preds: impl IntoIterator<Item = &'a TaskId>) {
        for pred in preds {
            let Some(pred_node) = self.try_node(*pred) else {
                continue;
            };
            let registered = {
                let mut slot = pred_node.successors.lock();
                if slot.closed {
                    false
                } else {
                    slot.list.push(node.id);
                    node.unresolved.fetch_add(1, Ordering::SeqCst);
                    pred_node.retire_holds.fetch_add(1, Ordering::SeqCst);
                    true
                }
            };
            if registered {
                node.preds.lock().push(pred_node);
            }
        }
    }

    /// Inserts a batch of tasks, computes their dependences (including the
    /// dependences *between* batch members) and returns one `(id, ready)`
    /// per task, in submission order.
    ///
    /// The amortisation over [`TaskGraph::submit`] in a loop: the touched
    /// submission shards are locked once, each touched slab shard's write
    /// lock is taken once, and each touched live-index shard is locked once
    /// for the whole dependence pass — instead of once per task. Dependence
    /// edges are wired in a single pass; the semantics (ids, edges, ready
    /// transitions) are exactly those of submitting the descriptors one by
    /// one.
    pub fn submit_batch(&self, descs: Vec<TaskDesc>) -> Vec<(TaskId, bool)> {
        let permit = self.lock_submission(
            descs
                .iter()
                .flat_map(|d| d.accesses.iter().map(|a| a.region)),
        );
        self.submit_batch_with(&permit, descs, false)
    }

    /// The body of [`TaskGraph::submit_batch`], for callers that already
    /// hold the permit covering every region in the batch.
    ///
    /// `independent == true` declares that no two batch members conflict
    /// with **each other** (dependences on earlier, non-batch tasks are
    /// still computed): the dependence pass then scans only the pre-batch
    /// live accessors and bulk-registers the batch's accesses afterwards,
    /// skipping the member-vs-earlier-member conflict scan — O(B·live)
    /// instead of O(B²·live) for B batch members sharing regions. The
    /// declaration is trusted in release builds; debug builds verify it and
    /// panic on a lie (a wrong declaration silently drops intra-batch
    /// edges, i.e. races).
    pub fn submit_batch_with(
        &self,
        _permit: &SubmissionPermit<'_>,
        descs: Vec<TaskDesc>,
        independent: bool,
    ) -> Vec<(TaskId, bool)> {
        if descs.is_empty() {
            return Vec::new();
        }
        debug_assert!(
            !independent || Self::batch_is_internally_independent(&descs),
            "submit_batch_with(independent = true) on a batch with internal conflicts"
        );
        let batch_len = descs.len();
        let first = self.next_seq.fetch_add(batch_len as u64, Ordering::SeqCst);

        // Slab insertion (which creates the nodes and mints their packed
        // ids) happens *before* edge registration — a predecessor finishing
        // mid-registration must be able to look a batch member up — with
        // one write lock per touched shard. Members land in the same shards
        // and draw the same ids as the equivalent one-by-one submissions
        // (`seq % NODE_SHARDS`, slots recycled LIFO), which is what keeps
        // the two paths property-testable against each other. The
        // submission guard (unresolved = 1) keeps each task from becoming
        // ready until its edges are wired.
        let mut descs: Vec<Option<TaskDesc>> = descs.into_iter().map(Some).collect();
        let mut nodes: Vec<Option<Arc<TaskNode>>> = (0..batch_len).map(|_| None).collect();
        for (shard_index, shard) in self.shards.iter().enumerate() {
            let mut members = (0..batch_len)
                .filter(|offset| ((first + *offset as u64) as usize) % NODE_SHARDS == shard_index)
                .peekable();
            if members.peek().is_none() {
                continue;
            }
            let mut shard = shard.write();
            for offset in members {
                let desc = descs[offset].take().expect("each descriptor moves once");
                nodes[offset] = Some(shard.insert(shard_index, first + offset as u64, desc));
            }
        }
        let nodes: Vec<Arc<TaskNode>> = nodes
            .into_iter()
            .map(|n| n.expect("every member was inserted"))
            .collect();

        // Dependence pass: lock every touched live-index shard once, then
        // walk the batch in submission order — earlier batch members become
        // visible as live accessors to later ones, exactly as in the
        // one-by-one path. (Completions lock live shards one at a time and
        // never wait on a second one while holding a first, so holding the
        // whole touched set here cannot deadlock.)
        let mut touched = [false; LIVE_SHARDS];
        for node in &nodes {
            for access in &node.desc.accesses {
                touched[Self::live_shard_index(access.region)] = true;
            }
        }
        let mut preds_per_task: Vec<BTreeSet<TaskId>> = Vec::with_capacity(nodes.len());
        {
            let mut guards: Vec<Option<MutexGuard<'_, LiveMap>>> = self
                .live
                .iter()
                .enumerate()
                .map(|(i, shard)| touched[i].then(|| shard.lock()))
                .collect();
            if independent {
                // Fast path: every member's predecessors come from the
                // pre-batch live set only, so scan first (without
                // registering anything — members must not see each other)…
                for node in &nodes {
                    let mut preds: BTreeSet<TaskId> = BTreeSet::new();
                    for access in &node.desc.accesses {
                        let shard = guards[Self::live_shard_index(access.region)]
                            .as_mut()
                            .expect("touched shard is locked");
                        if let Some(per_region) = shard.get(&access.region) {
                            for (tid, prev_accesses) in per_region.iter() {
                                if prev_accesses.iter().any(|prev| access.conflicts_with(prev)) {
                                    preds.insert(*tid);
                                }
                            }
                        }
                    }
                    preds_per_task.push(preds);
                }
                // …then bulk-register the whole batch's accesses.
                for node in &nodes {
                    for access in &node.desc.accesses {
                        let shard = guards[Self::live_shard_index(access.region)]
                            .as_mut()
                            .expect("touched shard is locked");
                        shard
                            .entry(access.region)
                            .or_default()
                            .entry(node.id)
                            .or_default()
                            .push(access.clone());
                    }
                }
            } else {
                for node in &nodes {
                    let mut preds: BTreeSet<TaskId> = BTreeSet::new();
                    for access in &node.desc.accesses {
                        let shard = guards[Self::live_shard_index(access.region)]
                            .as_mut()
                            .expect("touched shard is locked");
                        let per_region = shard.entry(access.region).or_default();
                        for (tid, prev_accesses) in per_region.iter() {
                            if *tid != node.id
                                && prev_accesses.iter().any(|prev| access.conflicts_with(prev))
                            {
                                preds.insert(*tid);
                            }
                        }
                        per_region.entry(node.id).or_default().push(access.clone());
                    }
                    preds_per_task.push(preds);
                }
            }
        }

        // Edge wiring, one pass over the batch.
        for (node, preds) in nodes.iter().zip(&preds_per_task) {
            self.wire_edges(node, preds);
        }

        // Release the submission guards in id order. Exactly one decrement
        // observes each counter reach zero; if it is ours, the task is
        // ready now.
        nodes
            .iter()
            .map(|node| {
                let ready = node.unresolved.fetch_sub(1, Ordering::SeqCst) == 1;
                if ready {
                    node.set_state(NodeState::Ready);
                }
                (node.id, ready)
            })
            .collect()
    }

    /// Debug-build check backing the `independent` fast-path declaration:
    /// true when no two distinct batch members declare conflicting accesses.
    fn batch_is_internally_independent(descs: &[TaskDesc]) -> bool {
        for (i, earlier) in descs.iter().enumerate() {
            for later in &descs[i + 1..] {
                for access in &earlier.accesses {
                    if later.accesses.iter().any(|b| access.conflicts_with(b)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Marks a ready task as picked up by a worker and returns its node, so
    /// the worker reaches the descriptor without a second lookup or a clone.
    pub fn start_running(&self, id: TaskId) -> Arc<TaskNode> {
        let node = self.node(id);
        debug_assert_eq!(
            node.state(),
            NodeState::Ready,
            "only ready tasks can start running"
        );
        node.set_state(NodeState::Running);
        node
    }

    /// Marks a ready task as picked up by a worker.
    pub fn mark_running(&self, id: TaskId) {
        let _ = self.start_running(id);
    }

    /// Marks a running task as deferred to an in-flight producer.
    ///
    /// The producer may complete the task *before* the deferring worker gets
    /// here: the deferral registration (inside the interceptor) is visible
    /// to the producer's completion path as soon as it happens, so the
    /// producer can legally call [`TaskGraph::finish`] on a still-`Running`
    /// waiter. In that case the task is already `Finished` (it may even have
    /// retired) and this call is a no-op — only a `Running` task actually
    /// moves to `Deferred`.
    pub fn mark_deferred(&self, id: TaskId) {
        let Some(node) = self.try_node(id) else {
            // Finished, all successors finished, slot recycled: the same
            // tolerated no-op as the already-`Finished` case below.
            return;
        };
        if node
            .state
            .compare_exchange(
                NodeState::Running.as_u8(),
                NodeState::Deferred.as_u8(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_err()
        {
            debug_assert_eq!(
                node.state(),
                NodeState::Finished,
                "only running tasks (or tasks already completed by their producer) can be deferred"
            );
        }
    }

    /// The PR-4 deferred hand-off bug, preserved verbatim as a regression
    /// seed for the `atm-check` model suite (`tests/model/ikt_regression.rs`):
    /// it *asserts* the task is still `Running` and then stores `Deferred`,
    /// instead of tolerating a producer that already finished the waiter.
    /// The checker must rediscover the resulting panic deterministically
    /// within a bounded schedule budget; [`TaskGraph::mark_deferred`] (the
    /// shipped CAS fix) must pass the same budget clean. Never call this
    /// from production code.
    #[doc(hidden)]
    pub fn mark_deferred_legacy(&self, id: TaskId) {
        let node = self.node(id);
        // BUG (shipped in PR 4): between the deferral registration and this
        // call, the in-flight producer can finish the waiter; the state is
        // then `Finished`, not `Running`, and the worker dies here.
        assert_eq!(
            node.state(),
            NodeState::Running,
            "only running tasks can be deferred"
        );
        node.set_state(NodeState::Deferred);
    }

    /// Completes a task by id (looks the node up first); see
    /// [`TaskGraph::finish_node`] for the lookup-free variant a worker uses
    /// with the node it already holds.
    pub fn finish(&self, id: TaskId) -> Vec<TaskId> {
        self.finish_node(&self.node(id))
    }

    /// Allocating convenience wrapper around
    /// [`TaskGraph::finish_node_into`]: returns the newly-ready successors
    /// in a fresh `Vec`. Tests and one-shot callers use this; the worker
    /// hot path reuses a per-worker scratch buffer instead.
    pub fn finish_node(&self, node: &TaskNode) -> Vec<TaskId> {
        let mut newly_ready = Vec::new();
        self.finish_node_into(node, &mut newly_ready);
        newly_ready
    }

    /// Completes a task: prunes its live accesses, releases its successors,
    /// releases its retirement holds (its own and those it took on its
    /// predecessors) and **appends** the successors that became ready to
    /// `newly_ready` — the caller-owned scratch that lets a worker
    /// aggregate the releases of a whole finish cycle (the executed task
    /// plus its producer-completed deferred waiters) into one ready-queue
    /// packet without allocating per finish.
    ///
    /// Takes no graph-wide lock: only the live-index shards of the regions
    /// this task touched, the node's own successor lock, one atomic
    /// decrement per successor — and, for each node this completion
    /// actually retires, one slab-shard write lock to free the slot.
    pub fn finish_node_into(&self, node: &TaskNode, newly_ready: &mut Vec<TaskId>) {
        let id = node.id();
        let state = node.state();
        assert!(
            matches!(state, NodeState::Running | NodeState::Deferred),
            "finish() on a task that is not running or deferred: {state:?}"
        );
        node.set_state(NodeState::Finished);
        self.finished.fetch_add(1, Ordering::SeqCst);

        // Prune live accesses of this task (per-region shard locks only).
        for access in &node.desc.accesses {
            let mut shard = self.live[Self::live_shard_index(access.region)].lock();
            if let Some(per_region) = shard.get_mut(&access.region) {
                per_region.remove(&id);
                if per_region.is_empty() {
                    shard.remove(&access.region);
                }
            }
        }

        // Close the successor list: from here on, new submissions treat this
        // task as finished and register no edges onto it.
        let successors = {
            let mut slot = node.successors.lock();
            slot.closed = true;
            std::mem::take(&mut slot.list)
        };

        for succ in successors {
            // Successors with an unreleased edge cannot retire (their own
            // completion hold is still pending), so the lookup must succeed.
            let succ_node = self.node(succ);
            let prev = succ_node.unresolved.fetch_sub(1, Ordering::SeqCst);
            debug_assert!(prev > 0, "successor with no unresolved dependences");
            if prev == 1 {
                debug_assert_eq!(succ_node.state(), NodeState::WaitingDeps);
                succ_node.set_state(NodeState::Ready);
                newly_ready.push(succ);
            }
        }

        // Retirement: hand back the holds this task took on its
        // predecessors, then its own completion hold. Whoever releases a
        // node's last hold frees its slot.
        let preds = std::mem::take(&mut *node.preds.lock());
        for pred in &preds {
            self.release_retire_hold(pred);
        }
        self.release_retire_hold(node);
    }

    /// Current state of a task. Retired tasks (slot already recycled) are,
    /// by the retirement condition, finished.
    pub fn state(&self, id: TaskId) -> NodeState {
        self.try_node(id)
            .map_or(NodeState::Finished, |node| node.state())
    }

    /// Direct successors of a task so far (for tests and diagnostics;
    /// empty for retired tasks).
    pub fn successors(&self, id: TaskId) -> Vec<TaskId> {
        self.try_node(id)
            .map_or_else(Vec::new, |node| node.successors.lock().list.clone())
    }

    /// Number of unresolved predecessors of a task (for tests and
    /// diagnostics; zero for retired tasks). The submission guard is
    /// released before [`TaskGraph::submit`] returns, so this is exactly
    /// the number of in-flight predecessors.
    pub fn unresolved(&self, id: TaskId) -> usize {
        self.try_node(id)
            .map_or(0, |node| node.unresolved.load(Ordering::SeqCst))
    }

    /// Checks the structural invariant that every edge goes from an earlier
    /// submission (smaller [`TaskNode::seq`]) to a later one — which makes
    /// the TDG acyclic by construction. Walks the resident nodes of every
    /// shard; a successor that has already retired is skipped (retired =
    /// finished, so the edge was consumed — a retired successor can still
    /// appear in a live predecessor's list when the predecessor stays
    /// resident on behalf of another unfinished successor). Used by tests.
    pub fn edges_respect_submission_order(&self) -> bool {
        let mut resident: Vec<Arc<TaskNode>> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            resident.extend(shard.slots.iter().filter_map(|s| s.node.clone()));
        }
        resident.iter().all(|node| {
            node.successors.lock().list.iter().all(|succ| {
                self.try_node(*succ)
                    .is_none_or(|succ_node| succ_node.seq() > node.seq())
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use crate::region::{DataStore, Region};
    use crate::task::TaskTypeId;

    fn store_with_regions(n: usize) -> (DataStore, Vec<Region<f32>>) {
        let store = DataStore::new();
        let ids = (0..n)
            .map(|i| store.register_zeros::<f32>(format!("r{i}"), 16).unwrap())
            .collect();
        (store, ids)
    }

    fn desc(accesses: Vec<Access>) -> TaskDesc {
        TaskDesc::new(TaskTypeId(0), accesses)
    }

    #[test]
    fn independent_tasks_are_immediately_ready() {
        let (_store, r) = store_with_regions(2);
        let g = TaskGraph::new();
        let (a, ra) = g.submit(desc(vec![Access::write(&r[0])]));
        let (b, rb) = g.submit(desc(vec![Access::write(&r[1])]));
        assert!(ra && rb);
        assert_eq!(g.state(a), NodeState::Ready);
        assert_eq!(g.state(b), NodeState::Ready);
        assert!(g.edges_respect_submission_order());
    }

    #[test]
    fn raw_dependence_orders_producer_before_consumer() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (producer, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (consumer, ready) = g.submit(desc(vec![Access::read(&r[0])]));
        assert!(!ready);
        assert_eq!(g.unresolved(consumer), 1);
        assert_eq!(g.successors(producer), vec![consumer]);

        g.mark_running(producer);
        let newly = g.finish(producer);
        assert_eq!(newly, vec![consumer]);
        assert_eq!(g.state(consumer), NodeState::Ready);
    }

    #[test]
    fn war_and_waw_dependences_are_created() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (reader, _) = g.submit(desc(vec![Access::read(&r[0])]));
        let (writer1, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (writer2, w2_ready) = g.submit(desc(vec![Access::write(&r[0])]));
        // WAR: writer1 depends on reader. WAW: writer2 depends on writer1
        // (and also on reader through the WAR chain; exact edge count may
        // include both since the reader is still live).
        assert_eq!(g.unresolved(writer1), 1);
        assert!(!w2_ready);
        assert!(g.successors(reader).contains(&writer1));
        assert!(g.successors(writer1).contains(&writer2));
    }

    #[test]
    fn two_readers_do_not_depend_on_each_other() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (_w, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (a, _) = g.submit(desc(vec![Access::read(&r[0])]));
        let (b, _) = g.submit(desc(vec![Access::read(&r[0])]));
        // Both readers depend only on the writer, not on each other.
        assert_eq!(g.unresolved(a), 1);
        assert_eq!(g.unresolved(b), 1);
        assert!(g.successors(a).is_empty());
    }

    #[test]
    fn finished_predecessors_do_not_create_dependences() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (w, _) = g.submit(desc(vec![Access::write(&r[0])]));
        g.mark_running(w);
        g.finish(w);
        let (reader, ready) = g.submit(desc(vec![Access::read(&r[0])]));
        assert!(
            ready,
            "a reader submitted after the writer finished must be immediately ready"
        );
        assert_eq!(g.unresolved(reader), 0);
    }

    #[test]
    fn ranged_accesses_only_conflict_when_overlapping() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (_w1, _) = g.submit(desc(vec![Access::write(&r[0]).with_range(0..32)]));
        let (w2, ready2) = g.submit(desc(vec![Access::write(&r[0]).with_range(32..64)]));
        assert!(ready2, "disjoint block writers must be independent");
        let (reader, ready3) = g.submit(desc(vec![Access::read(&r[0]).with_range(16..48)]));
        assert!(
            !ready3,
            "a reader straddling both blocks depends on both writers"
        );
        assert_eq!(g.unresolved(reader), 2);
        let _ = w2;
    }

    #[test]
    fn deferred_tasks_complete_like_executed_ones() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (producer, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (deferred, _) = g.submit(desc(vec![Access::read_write(&r[0])]));
        let (consumer, _) = g.submit(desc(vec![Access::read(&r[0])]));
        g.mark_running(producer);
        assert_eq!(g.finish(producer), vec![deferred]);
        g.mark_running(deferred);
        g.mark_deferred(deferred);
        assert_eq!(g.state(deferred), NodeState::Deferred);
        let newly = g.finish(deferred);
        assert_eq!(newly, vec![consumer]);
        assert_eq!(g.finished_count(), 2);
    }

    #[test]
    fn diamond_dependence_pattern() {
        // a writes r0; b and c read r0 and write r1/r2; d reads r1 and r2.
        let (_store, r) = store_with_regions(3);
        let g = TaskGraph::new();
        let (a, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (b, _) = g.submit(desc(vec![Access::read(&r[0]), Access::write(&r[1])]));
        let (c, _) = g.submit(desc(vec![Access::read(&r[0]), Access::write(&r[2])]));
        let (d, _) = g.submit(desc(vec![Access::read(&r[1]), Access::read(&r[2])]));
        assert_eq!(g.unresolved(d), 2);
        g.mark_running(a);
        let ready_after_a: BTreeSet<TaskId> = g.finish(a).into_iter().collect();
        assert_eq!(ready_after_a, [b, c].into_iter().collect());
        g.mark_running(b);
        assert!(g.finish(b).is_empty());
        g.mark_running(c);
        assert_eq!(g.finish(c), vec![d]);
    }

    #[test]
    #[should_panic(expected = "not running or deferred")]
    fn finishing_a_waiting_task_panics() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (_w, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (waiting, _) = g.submit(desc(vec![Access::read(&r[0])]));
        g.finish(waiting);
    }

    /// The IKT hand-off race: an in-flight producer may finish (and
    /// complete) a deferred waiter before the waiter's worker reaches
    /// `mark_deferred`. The late `mark_deferred` must be a tolerated no-op,
    /// not a panic that kills the worker thread.
    #[test]
    fn late_mark_deferred_after_producer_completion_is_tolerated() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (waiter, _) = g.submit(desc(vec![Access::write(&r[0])]));
        g.mark_running(waiter);
        // Producer's after_execute completes the waiter first…
        assert!(g.finish(waiter).is_empty());
        // …then the deferring worker's mark_deferred arrives late.
        g.mark_deferred(waiter);
        assert_eq!(g.state(waiter), NodeState::Finished);
        assert_eq!(g.finished_count(), 1);
    }

    #[test]
    fn a_task_reading_and_writing_the_same_region_does_not_self_depend() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (t, ready) = g.submit(desc(vec![Access::read(&r[0]), Access::write(&r[0])]));
        assert!(ready, "a task never depends on itself");
        assert_eq!(g.unresolved(t), 0);
    }

    #[test]
    fn node_handle_exposes_the_descriptor_without_cloning() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (id, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let node = g.start_running(id);
        assert_eq!(node.desc().accesses.len(), 1);
        assert_eq!(g.state(id), NodeState::Running);
    }

    #[test]
    fn an_independent_task_retires_at_finish() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (t, _) = g.submit(desc(vec![Access::write(&r[0])]));
        assert_eq!(g.live_nodes(), 1);
        g.mark_running(t);
        g.finish(t);
        assert_eq!(g.retired_count(), 1);
        assert_eq!(g.live_nodes(), 0);
        assert!(g.try_node(t).is_none(), "the slot must be freed");
        assert_eq!(g.state(t), NodeState::Finished, "retired implies finished");
    }

    #[test]
    fn a_predecessor_retires_only_after_its_successors_finish() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (producer, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (consumer, _) = g.submit(desc(vec![Access::read(&r[0])]));
        g.mark_running(producer);
        g.finish(producer);
        // The producer finished but its successor has not: the edge keeps a
        // retire hold, so the node stays resident.
        assert_eq!(g.retired_count(), 0);
        assert!(g.try_node(producer).is_some());
        g.mark_running(consumer);
        g.finish(consumer);
        // The consumer's finish releases the producer's last hold and its
        // own; both retire.
        assert_eq!(g.retired_count(), 2);
        assert_eq!(g.live_nodes(), 0);
    }

    #[test]
    fn retired_slots_are_recycled_by_later_submissions() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        // Drive many more tasks than slots through one chain; every task
        // must fit in the recycled slots of its retired predecessors.
        let mut ids = Vec::new();
        for _ in 0..10 * NODE_SHARDS {
            let (t, _) = g.submit(desc(vec![Access::write(&r[0])]));
            g.mark_running(t);
            g.finish(t);
            ids.push(t);
        }
        assert_eq!(g.live_nodes(), 0);
        assert_eq!(g.retired_count(), 10 * NODE_SHARDS as u64);
        // Every retired id fails the generation compare: gone = finished.
        for id in &ids {
            assert!(g.try_node(*id).is_none());
            assert_eq!(g.state(*id), NodeState::Finished);
        }
        // Recycling never mints the same id twice (the generation bump).
        let distinct: BTreeSet<TaskId> = ids.iter().copied().collect();
        assert_eq!(distinct.len(), ids.len());
        // The slab recycled slots instead of growing — and with the id →
        // slot map gone, shard memory is a handful of slots regardless of
        // how many ids were ever submitted.
        for shard in &g.shards {
            assert!(
                shard.read().slots.len() <= 2,
                "slots must be recycled, not appended"
            );
        }
    }

    /// Slot-reuse/ABA regression: a slot recycled through several
    /// generations must never let a stale id of a retired occupant alias
    /// the slot's current occupant.
    #[test]
    fn stale_ids_of_recycled_slots_never_alias_the_new_occupant() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let mut retired = Vec::new();
        // One full round of NODE_SHARDS submissions returns to the same
        // shard and (LIFO free list, empty graph) the same slot — each
        // round is one generation of that slot.
        for generation in 0..4u32 {
            let (t, _) = g.submit(desc(vec![Access::write(&r[0])]));
            assert_eq!(t.generation(), generation);
            assert_eq!(t.slot(), 0);
            assert_eq!(t.shard(), 0);
            g.mark_running(t);
            g.finish(t);
            retired.push(t);
            for _ in 1..NODE_SHARDS {
                let (filler, _) = g.submit(desc(vec![Access::write(&r[0])]));
                g.mark_running(filler);
                g.finish(filler);
            }
        }
        // A live occupant of the recycled slot…
        let (live, _) = g.submit(desc(vec![Access::write(&r[0])]));
        assert_eq!((live.shard(), live.slot()), (0, 0));
        // …is invisible through every stale generation of the same slot.
        for stale in &retired {
            assert_ne!(*stale, live);
            assert!(g.try_node(*stale).is_none(), "{stale} must read as gone");
            assert_eq!(g.state(*stale), NodeState::Finished);
            assert_eq!(g.unresolved(*stale), 0);
            assert!(g.successors(*stale).is_empty());
        }
        assert!(g.try_node(live).is_some());
        g.mark_running(live);
        g.finish(live);
    }

    #[test]
    fn batch_submission_matches_one_by_one_semantics() {
        let (_store, r) = store_with_regions(2);
        let singleton = TaskGraph::new();
        let batched = TaskGraph::new();
        let program = || {
            vec![
                desc(vec![Access::write(&r[0])]),
                desc(vec![Access::read(&r[0]), Access::write(&r[1])]),
                desc(vec![Access::read(&r[1])]),
                desc(vec![Access::read(&r[0])]),
            ]
        };
        let one_by_one: Vec<(TaskId, bool)> =
            program().into_iter().map(|d| singleton.submit(d)).collect();
        let as_batch = batched.submit_batch(program());
        // Id allocation is deterministic (`seq % NODE_SHARDS` sharding,
        // LIFO slot recycling), so two fresh graphs given the same program
        // mint identical ids — which makes the graphs directly comparable.
        assert_eq!(one_by_one, as_batch);
        for (id, _) in &one_by_one {
            assert_eq!(singleton.successors(*id), batched.successors(*id), "{id}");
            assert_eq!(singleton.unresolved(*id), batched.unresolved(*id), "{id}");
        }
        assert!(batched.edges_respect_submission_order());
    }

    #[test]
    fn batch_members_depend_on_earlier_batch_members() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let results = g.submit_batch(vec![
            desc(vec![Access::read_write(&r[0])]),
            desc(vec![Access::read_write(&r[0])]),
            desc(vec![Access::read_write(&r[0])]),
        ]);
        assert_eq!(
            results.iter().map(|(_, ready)| *ready).collect::<Vec<_>>(),
            vec![true, false, false],
            "an inout chain inside one batch serialises"
        );
        let chain: Vec<TaskId> = results.into_iter().map(|(id, _)| id).collect();
        g.mark_running(chain[0]);
        assert_eq!(g.finish(chain[0]), vec![chain[1]]);
        g.mark_running(chain[1]);
        assert_eq!(g.finish(chain[1]), vec![chain[2]]);
        g.mark_running(chain[2]);
        assert!(g.finish(chain[2]).is_empty());
        assert_eq!(g.retired_count(), 3, "the whole chain retires at the end");
    }

    #[test]
    fn batch_sees_live_tasks_submitted_before_it() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let (earlier, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let results = g.submit_batch(vec![
            desc(vec![Access::read(&r[0])]),
            desc(vec![Access::read(&r[0])]),
        ]);
        assert!(results.iter().all(|(_, ready)| !ready));
        g.mark_running(earlier);
        let released = g.finish(earlier);
        assert_eq!(released.len(), 2);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let g = TaskGraph::new();
        assert!(g.submit_batch(Vec::new()).is_empty());
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn live_accessor_gauges_follow_the_live_set() {
        let (_store, r) = store_with_regions(2);
        let g = TaskGraph::new();
        assert_eq!(g.live_index_regions(), 0);
        assert!(!g.region_has_live_accessors(r[0].id()));
        let (t, _) = g.submit(desc(vec![Access::write(&r[0]), Access::read(&r[1])]));
        assert!(g.region_has_live_accessors(r[0].id()));
        assert!(g.region_has_live_accessors(r[1].id()));
        assert_eq!(g.live_index_regions(), 2);
        g.mark_running(t);
        g.finish(t);
        assert!(!g.region_has_live_accessors(r[0].id()));
        assert_eq!(g.live_index_regions(), 0, "pruned entries leave the index");
    }

    /// Truly concurrent submitters on disjoint regions never share a
    /// submission shard lock by construction of the test (one region per
    /// thread, spread across shards) — and even where shards do collide the
    /// graph must stay consistent: every edge obeys id order and every
    /// chain serialises on its own region.
    #[test]
    fn disjoint_concurrent_submitters_build_a_consistent_graph() {
        let (_store, r) = store_with_regions(4);
        let g = Arc::new(TaskGraph::new());
        let chains: Vec<Vec<TaskId>> = (0..4)
            .map(|t| {
                let g = Arc::clone(&g);
                let region = r[t];
                std::thread::spawn(move || {
                    (0..50)
                        .map(|_| g.submit(desc(vec![Access::read_write(&region)])).0)
                        .collect::<Vec<TaskId>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        assert_eq!(g.len(), 200);
        assert!(g.edges_respect_submission_order());
        // Each inout chain serialises on its own region: member i waits on
        // all i live earlier members, and submission sequence numbers grow
        // along the chain (the packed ids themselves carry no order).
        for chain in &chains {
            assert!(chain
                .windows(2)
                .all(|w| g.node(w[0]).seq() < g.node(w[1]).seq()));
            for (i, id) in chain.iter().enumerate() {
                assert_eq!(g.unresolved(*id), i);
            }
        }
        // Drive everything to completion through the release protocol.
        let mut ready: Vec<TaskId> = chains.iter().map(|c| c[0]).collect();
        while let Some(id) = ready.pop() {
            g.mark_running(id);
            ready.extend(g.finish(id));
        }
        assert_eq!(g.finished_count(), 200);
        assert_eq!(g.live_nodes(), 0);
    }

    #[test]
    fn independent_batch_fast_path_matches_slow_path_semantics() {
        let (_store, r) = store_with_regions(5);
        let g = TaskGraph::new();
        // A live pre-batch writer: the fast path must still find it.
        let (earlier, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let batch: Vec<TaskDesc> = (0..4)
            .map(|i| desc(vec![Access::read(&r[0]), Access::write(&r[i + 1])]))
            .collect();
        let permit = g.lock_submission(
            batch
                .iter()
                .flat_map(|d| d.accesses.iter().map(|a| a.region)),
        );
        let results = g.submit_batch_with(&permit, batch, true);
        drop(permit);
        assert_eq!(results.len(), 4);
        assert!(
            results.iter().all(|(_, ready)| !ready),
            "every member still depends on the pre-batch writer"
        );
        for (id, _) in &results {
            assert_eq!(g.unresolved(*id), 1);
        }
        g.mark_running(earlier);
        assert_eq!(g.finish(earlier).len(), 4);
        // The batch's own accesses were registered: a later writer of r1
        // depends on the member that wrote it.
        let (later, ready) = g.submit(desc(vec![Access::write(&r[1])]));
        assert!(!ready);
        assert_eq!(g.unresolved(later), 1);
        assert!(g.edges_respect_submission_order());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "internal conflicts")]
    fn lying_independence_declaration_is_caught_in_debug_builds() {
        let (_store, r) = store_with_regions(1);
        let g = TaskGraph::new();
        let batch = vec![
            desc(vec![Access::read_write(&r[0])]),
            desc(vec![Access::read_write(&r[0])]),
        ];
        let permit = g.lock_submission(
            batch
                .iter()
                .flat_map(|d| d.accesses.iter().map(|a| a.region)),
        );
        let _ = g.submit_batch_with(&permit, batch, true);
    }

    /// Concurrent finishes racing a stream of submissions never lose a
    /// release: every task completes exactly once.
    #[test]
    fn concurrent_finishes_and_submissions_release_exactly_once() {
        use std::sync::mpsc;
        let (_store, r) = store_with_regions(4);
        let g = Arc::new(TaskGraph::new());
        let (ready_tx, ready_rx) = mpsc::channel::<TaskId>();

        // Worker: finishes whatever becomes ready, forwarding releases.
        let worker_graph = Arc::clone(&g);
        let worker_tx = ready_tx.clone();
        let worker = std::thread::spawn(move || {
            let mut finished = 0u64;
            for id in ready_rx {
                worker_graph.mark_running(id);
                for next in worker_graph.finish(id) {
                    worker_tx.send(next).unwrap();
                }
                finished += 1;
                if finished == 400 {
                    break;
                }
            }
            finished
        });

        // Master: submits 100 chains of 4 inout tasks each.
        for chain in 0..100 {
            for _ in 0..4 {
                let (id, ready) = g.submit(desc(vec![Access::read_write(&r[chain % 4])]));
                if ready {
                    ready_tx.send(id).unwrap();
                }
            }
        }
        drop(ready_tx);
        assert_eq!(worker.join().unwrap(), 400);
        assert_eq!(g.finished_count(), 400);
        assert!(g.edges_respect_submission_order());
    }
}
