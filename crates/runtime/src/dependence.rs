//! Dependence tracking and the Task Dependence Graph (TDG).
//!
//! When a task is submitted, the runtime compares its declared accesses with
//! the accesses of every *unfinished* previously-submitted task on the same
//! regions. Any overlap involving at least one writer creates a dependence
//! edge (this covers read-after-write, write-after-read and
//! write-after-write orderings). A task becomes ready when all its
//! predecessors have finished; the scheduler then moves it to the Ready
//! Queue, exactly as described in §II-C of the paper.

use crate::access::Access;
use crate::region::RegionId;
use crate::task::{TaskDesc, TaskId};
use std::collections::{BTreeSet, HashMap};

/// Lifecycle of a task inside the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Waiting for one or more predecessors to finish.
    WaitingDeps,
    /// All dependences satisfied; the task is in (or on its way to) the Ready Queue.
    Ready,
    /// A worker is processing the task (executing it or deciding to memoize it).
    Running,
    /// The task hit the In-flight Key Table: an in-flight producer will
    /// provide its outputs and complete it.
    Deferred,
    /// The task is complete (executed, memoized, or completed by a producer).
    Finished,
}

/// One task node in the TDG.
#[derive(Debug)]
struct TaskNode {
    desc: TaskDesc,
    unresolved: usize,
    successors: Vec<TaskId>,
    state: NodeState,
}

/// The Task Dependence Graph plus the per-region bookkeeping needed to build it.
#[derive(Debug, Default)]
pub struct TaskGraph {
    nodes: Vec<TaskNode>,
    /// Accesses of unfinished tasks, per region. Finished tasks are pruned,
    /// so lookups only scan live accessors (a handful per region in the
    /// block-structured benchmarks).
    live: HashMap<RegionId, Vec<(TaskId, Access)>>,
    finished: u64,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks ever submitted.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no task was ever submitted.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of finished tasks.
    pub fn finished_count(&self) -> u64 {
        self.finished
    }

    /// Inserts a task, computes its dependences and returns `(id, ready)`.
    pub fn submit(&mut self, desc: TaskDesc) -> (TaskId, bool) {
        let id = TaskId(self.nodes.len() as u64);

        // Collect unique predecessors among live (unfinished) accessors.
        let mut preds: BTreeSet<TaskId> = BTreeSet::new();
        for access in &desc.accesses {
            if let Some(live) = self.live.get(&access.region) {
                for (tid, prev) in live {
                    if *tid != id
                        && access.conflicts_with(prev)
                        && self.nodes[tid.index()].state != NodeState::Finished
                    {
                        preds.insert(*tid);
                    }
                }
            }
        }

        for pred in &preds {
            self.nodes[pred.index()].successors.push(id);
        }
        let unresolved = preds.len();

        // Register this task's accesses as live.
        for access in &desc.accesses {
            self.live
                .entry(access.region)
                .or_default()
                .push((id, access.clone()));
        }

        let ready = unresolved == 0;
        self.nodes.push(TaskNode {
            desc,
            unresolved,
            successors: Vec::new(),
            state: if ready {
                NodeState::Ready
            } else {
                NodeState::WaitingDeps
            },
        });
        (id, ready)
    }

    /// Marks a ready task as picked up by a worker.
    pub fn mark_running(&mut self, id: TaskId) {
        let node = &mut self.nodes[id.index()];
        debug_assert_eq!(
            node.state,
            NodeState::Ready,
            "only ready tasks can start running"
        );
        node.state = NodeState::Running;
    }

    /// Marks a running task as deferred to an in-flight producer.
    pub fn mark_deferred(&mut self, id: TaskId) {
        let node = &mut self.nodes[id.index()];
        debug_assert_eq!(
            node.state,
            NodeState::Running,
            "only running tasks can be deferred"
        );
        node.state = NodeState::Deferred;
    }

    /// Completes a task: prunes its live accesses, releases its successors
    /// and returns the successors that became ready.
    pub fn finish(&mut self, id: TaskId) -> Vec<TaskId> {
        let state = self.nodes[id.index()].state;
        assert!(
            matches!(state, NodeState::Running | NodeState::Deferred),
            "finish() on a task that is not running or deferred: {state:?}"
        );
        self.nodes[id.index()].state = NodeState::Finished;
        self.finished += 1;

        // Prune live accesses of this task.
        for access in &self.nodes[id.index()].desc.accesses.clone() {
            if let Some(live) = self.live.get_mut(&access.region) {
                live.retain(|(tid, _)| *tid != id);
                if live.is_empty() {
                    self.live.remove(&access.region);
                }
            }
        }

        // Release successors.
        let successors = self.nodes[id.index()].successors.clone();
        let mut newly_ready = Vec::new();
        for succ in successors {
            let node = &mut self.nodes[succ.index()];
            debug_assert!(
                node.unresolved > 0,
                "successor with no unresolved dependences"
            );
            node.unresolved -= 1;
            if node.unresolved == 0 && node.state == NodeState::WaitingDeps {
                node.state = NodeState::Ready;
                newly_ready.push(succ);
            }
        }
        newly_ready
    }

    /// Current state of a task.
    pub fn state(&self, id: TaskId) -> NodeState {
        self.nodes[id.index()].state
    }

    /// The descriptor of a task.
    pub fn desc(&self, id: TaskId) -> &TaskDesc {
        &self.nodes[id.index()].desc
    }

    /// Direct successors of a task (for tests and diagnostics).
    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.nodes[id.index()].successors
    }

    /// Number of unresolved predecessors of a task (for tests and diagnostics).
    pub fn unresolved(&self, id: TaskId) -> usize {
        self.nodes[id.index()].unresolved
    }

    /// Checks the structural invariant that every edge goes from an earlier
    /// submission to a later one — which makes the TDG acyclic by
    /// construction. Used by tests.
    pub fn edges_respect_submission_order(&self) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, node)| node.successors.iter().all(|s| s.index() > i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use crate::region::{DataStore, Region};
    use crate::task::TaskTypeId;

    fn store_with_regions(n: usize) -> (DataStore, Vec<Region<f32>>) {
        let store = DataStore::new();
        let ids = (0..n)
            .map(|i| store.register_zeros::<f32>(format!("r{i}"), 16).unwrap())
            .collect();
        (store, ids)
    }

    fn desc(accesses: Vec<Access>) -> TaskDesc {
        TaskDesc::new(TaskTypeId(0), accesses)
    }

    #[test]
    fn independent_tasks_are_immediately_ready() {
        let (_store, r) = store_with_regions(2);
        let mut g = TaskGraph::new();
        let (a, ra) = g.submit(desc(vec![Access::write(&r[0])]));
        let (b, rb) = g.submit(desc(vec![Access::write(&r[1])]));
        assert!(ra && rb);
        assert_eq!(g.state(a), NodeState::Ready);
        assert_eq!(g.state(b), NodeState::Ready);
        assert!(g.edges_respect_submission_order());
    }

    #[test]
    fn raw_dependence_orders_producer_before_consumer() {
        let (_store, r) = store_with_regions(1);
        let mut g = TaskGraph::new();
        let (producer, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (consumer, ready) = g.submit(desc(vec![Access::read(&r[0])]));
        assert!(!ready);
        assert_eq!(g.unresolved(consumer), 1);
        assert_eq!(g.successors(producer), &[consumer]);

        g.mark_running(producer);
        let newly = g.finish(producer);
        assert_eq!(newly, vec![consumer]);
        assert_eq!(g.state(consumer), NodeState::Ready);
    }

    #[test]
    fn war_and_waw_dependences_are_created() {
        let (_store, r) = store_with_regions(1);
        let mut g = TaskGraph::new();
        let (reader, _) = g.submit(desc(vec![Access::read(&r[0])]));
        let (writer1, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (writer2, w2_ready) = g.submit(desc(vec![Access::write(&r[0])]));
        // WAR: writer1 depends on reader. WAW: writer2 depends on writer1
        // (and also on reader through the WAR chain; exact edge count may
        // include both since the reader is still live).
        assert_eq!(g.unresolved(writer1), 1);
        assert!(!w2_ready);
        assert!(g.successors(reader).contains(&writer1));
        assert!(g.successors(writer1).contains(&writer2));
    }

    #[test]
    fn two_readers_do_not_depend_on_each_other() {
        let (_store, r) = store_with_regions(1);
        let mut g = TaskGraph::new();
        let (_w, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (a, _) = g.submit(desc(vec![Access::read(&r[0])]));
        let (b, _) = g.submit(desc(vec![Access::read(&r[0])]));
        // Both readers depend only on the writer, not on each other.
        assert_eq!(g.unresolved(a), 1);
        assert_eq!(g.unresolved(b), 1);
        assert!(g.successors(a).is_empty());
    }

    #[test]
    fn finished_predecessors_do_not_create_dependences() {
        let (_store, r) = store_with_regions(1);
        let mut g = TaskGraph::new();
        let (w, _) = g.submit(desc(vec![Access::write(&r[0])]));
        g.mark_running(w);
        g.finish(w);
        let (reader, ready) = g.submit(desc(vec![Access::read(&r[0])]));
        assert!(
            ready,
            "a reader submitted after the writer finished must be immediately ready"
        );
        assert_eq!(g.unresolved(reader), 0);
    }

    #[test]
    fn ranged_accesses_only_conflict_when_overlapping() {
        let (_store, r) = store_with_regions(1);
        let mut g = TaskGraph::new();
        let (_w1, _) = g.submit(desc(vec![Access::write(&r[0]).with_range(0..32)]));
        let (w2, ready2) = g.submit(desc(vec![Access::write(&r[0]).with_range(32..64)]));
        assert!(ready2, "disjoint block writers must be independent");
        let (reader, ready3) = g.submit(desc(vec![Access::read(&r[0]).with_range(16..48)]));
        assert!(
            !ready3,
            "a reader straddling both blocks depends on both writers"
        );
        assert_eq!(g.unresolved(reader), 2);
        let _ = w2;
    }

    #[test]
    fn deferred_tasks_complete_like_executed_ones() {
        let (_store, r) = store_with_regions(1);
        let mut g = TaskGraph::new();
        let (producer, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (deferred, _) = g.submit(desc(vec![Access::read_write(&r[0])]));
        let (consumer, _) = g.submit(desc(vec![Access::read(&r[0])]));
        g.mark_running(producer);
        assert_eq!(g.finish(producer), vec![deferred]);
        g.mark_running(deferred);
        g.mark_deferred(deferred);
        assert_eq!(g.state(deferred), NodeState::Deferred);
        let newly = g.finish(deferred);
        assert_eq!(newly, vec![consumer]);
        assert_eq!(g.finished_count(), 2);
    }

    #[test]
    fn diamond_dependence_pattern() {
        // a writes r0; b and c read r0 and write r1/r2; d reads r1 and r2.
        let (_store, r) = store_with_regions(3);
        let mut g = TaskGraph::new();
        let (a, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (b, _) = g.submit(desc(vec![Access::read(&r[0]), Access::write(&r[1])]));
        let (c, _) = g.submit(desc(vec![Access::read(&r[0]), Access::write(&r[2])]));
        let (d, _) = g.submit(desc(vec![Access::read(&r[1]), Access::read(&r[2])]));
        assert_eq!(g.unresolved(d), 2);
        g.mark_running(a);
        let ready_after_a: BTreeSet<TaskId> = g.finish(a).into_iter().collect();
        assert_eq!(ready_after_a, [b, c].into_iter().collect());
        g.mark_running(b);
        assert!(g.finish(b).is_empty());
        g.mark_running(c);
        assert_eq!(g.finish(c), vec![d]);
    }

    #[test]
    #[should_panic(expected = "not running or deferred")]
    fn finishing_a_waiting_task_panics() {
        let (_store, r) = store_with_regions(1);
        let mut g = TaskGraph::new();
        let (_w, _) = g.submit(desc(vec![Access::write(&r[0])]));
        let (waiting, _) = g.submit(desc(vec![Access::read(&r[0])]));
        g.finish(waiting);
    }
}
