//! The interceptor hook that plugs ATM (or any other task-bypassing
//! mechanism) into the scheduler.
//!
//! The scheduler calls [`TaskInterceptor::before_execute`] right after
//! pulling a task from the Ready Queue — this is where ATM computes the hash
//! key, probes the Task History Table and the In-flight Key Table and either
//! provides the outputs (memoization), defers the task to an in-flight
//! producer, or lets it run. [`TaskInterceptor::after_execute`] is called
//! when a task completes; ATM uses it to update the THT/IKT, run the Dynamic
//! ATM training comparison, and perform the postponed copy-outs for tasks
//! that were deferred onto this one.

use crate::region::DataStore;
use crate::task::{TaskId, TaskView};
use crate::trace::Tracer;
use atm_obs::{EngineObservation, StoreObservation};

/// What the scheduler should do with a task that is about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Run the task kernel normally.
    Execute,
    /// The interceptor already produced the task's outputs (THT hit): skip
    /// the kernel and complete the task immediately.
    Memoized,
    /// An in-flight task with the same key will produce the outputs (IKT
    /// hit): skip the kernel and do **not** complete the task yet — the
    /// producer's `after_execute` will return this task's id once the
    /// outputs have been copied.
    Deferred,
}

/// Hook invoked by the scheduler around task execution.
pub trait TaskInterceptor: Send + Sync {
    /// Called after a task is pulled from the Ready Queue, before its kernel
    /// runs. `worker` is the index of the calling worker thread and `tracer`
    /// can be used to attribute time to ATM-specific states.
    fn before_execute(
        &self,
        task: TaskView<'_>,
        store: &DataStore,
        tracer: &Tracer,
        worker: usize,
    ) -> Decision {
        let _ = (task, store, tracer, worker);
        Decision::Execute
    }

    /// Called after a task completes. `executed` is true when the kernel
    /// actually ran (false when the task was memoized in `before_execute`).
    /// Returns the ids of previously-deferred tasks that this completion has
    /// satisfied; the scheduler will mark them finished.
    fn after_execute(
        &self,
        task: TaskView<'_>,
        store: &DataStore,
        tracer: &Tracer,
        worker: usize,
        executed: bool,
    ) -> Vec<TaskId> {
        let _ = (task, store, tracer, worker, executed);
        Vec::new()
    }

    /// Cross-layer counter snapshots for [`crate::Runtime::observe`]: the
    /// memoization engine's aggregate counters and its backing store's.
    /// Interceptors that do not memoize (the default) report `None`.
    fn observe(&self) -> Option<(EngineObservation, StoreObservation)> {
        None
    }
}

/// The default interceptor: never memoizes anything (the "no ATM" baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopInterceptor;

impl TaskInterceptor for NoopInterceptor {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{TaskTypeBuilder, TaskTypeId};

    #[test]
    fn noop_interceptor_always_executes() {
        let store = DataStore::new();
        let tracer = Tracer::new(false);
        let info = TaskTypeBuilder::new("t", |_| {}).build();
        let view = TaskView {
            id: TaskId(0),
            type_id: TaskTypeId(0),
            info: &info,
            accesses: &[],
            memo: None,
        };
        let noop = NoopInterceptor;
        assert_eq!(
            noop.before_execute(view, &store, &tracer, 0),
            Decision::Execute
        );
        assert!(noop
            .after_execute(view, &store, &tracer, 0, true)
            .is_empty());
    }
}
