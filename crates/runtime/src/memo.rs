//! Per-task-type approximation policy: the [`MemoSpec`].
//!
//! The paper applies ATM *per task type*: each type independently trains its
//! own selection percentage `p` against its own `τ_max` (§III-D, Table II).
//! The `MemoSpec` makes that a first-class, declarative API — the
//! approximation policy is stated where the kernel is registered
//! ([`crate::TaskTypeBuilder::memo`]) and travels with the task type through
//! keying, training and statistics, instead of hanging off one engine-global
//! mode:
//!
//! ```
//! use atm_runtime::prelude::*;
//!
//! let info = TaskTypeBuilder::new("field_update", |_ctx| { /* … */ })
//!     .arg::<i32>()   // small control argument
//!     .arg::<f64>()   // large field argument
//!     .out::<f64>()
//!     .memo(
//!         MemoSpec::approximate()
//!             .tau(1e-3)
//!             .metric(ErrorMetric::RelL2)
//!             .training_window(32)
//!             .arg_exact(0) // hash the control argument exactly, always
//!     )
//!     .build();
//! assert!(info.memoizable());
//! ```
//!
//! Three policies are available:
//!
//! * [`MemoSpec::exact`] — exact memoization (`p = 100 %`), bit-identical
//!   results (the paper's Static ATM, now selectable per type);
//! * [`MemoSpec::approximate`] — the runtime trains `p` against the spec's
//!   [`tau`](MemoSpec::tau), [`training_window`](MemoSpec::training_window)
//!   and [`metric`](MemoSpec::metric) (the paper's Dynamic ATM);
//! * [`MemoSpec::fixed_precision`] — a constant `p` chosen offline (the
//!   paper's Oracle configurations, now declarable per type).
//!
//! On top of the type-wide precision, [`MemoSpec::arg_precision`] /
//! [`MemoSpec::arg_exact`] override the precision of individual arguments,
//! so a small control argument can be hashed exactly while a large field
//! argument is hashed approximately. Overrides are validated against the
//! task type's declared access signature at registration (and against the
//! actual accesses at submission, for per-instance specs).

use crate::access::Access;
use crate::task::TaskSignature;

/// How a task type's inputs are selected for hashing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoPolicy {
    /// Exact memoization: every input byte is hashed (`p = 100 %`), a hit is
    /// only possible on bit-identical inputs.
    Exact,
    /// Adaptive approximation: the runtime trains the smallest selection
    /// percentage `p` that keeps the per-task error below the spec's `τ_max`
    /// (§III-D).
    Approximate,
    /// A constant selection fraction chosen offline (the evaluation's Oracle
    /// configurations).
    FixedPrecision(f64),
}

/// The error metric the training phase evaluates per output region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorMetric {
    /// Chebyshev relative error (Eq. 1 of the paper, the default): max
    /// absolute difference over max absolute correct value. Does not
    /// accumulate floating-point error and correlates well with program
    /// correctness.
    #[default]
    Chebyshev,
    /// Relative L2-norm error: `‖correct − approx‖₂ / ‖correct‖₂`. A
    /// norm-scale threshold for vector outputs.
    RelL2,
    /// Maximum units-in-last-place distance. `τ_max` is interpreted as a ULP
    /// *count*; meaningful near zero and across magnitudes.
    MaxUlp,
}

impl std::fmt::Display for ErrorMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorMetric::Chebyshev => "chebyshev",
            ErrorMetric::RelL2 => "rel-l2",
            ErrorMetric::MaxUlp => "max-ulp",
        })
    }
}

/// A per-argument precision override.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgPrecision {
    /// Hash every byte of this argument, regardless of the type's `p`.
    Exact,
    /// Hash this fraction of the argument's bytes, regardless of the type's
    /// `p`.
    Fraction(f64),
}

/// Why a [`MemoSpec`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoSpecError {
    /// The error threshold is not a positive finite number.
    InvalidTau {
        /// The offending threshold.
        tau: f64,
    },
    /// A precision fraction (type-wide or per-argument) is outside `(0, 1]`.
    InvalidPrecision {
        /// The offending fraction.
        precision: f64,
    },
    /// The training window must admit at least one comparison.
    ZeroTrainingWindow,
    /// A per-argument override names a parameter position the task does not
    /// have.
    ArgIndexOutOfRange {
        /// The overridden position.
        index: usize,
        /// Number of positional parameters the task declares.
        arity: usize,
    },
    /// A per-argument override names a write-only parameter; precision only
    /// applies to hashed (read) bytes.
    ArgNotRead {
        /// The overridden position.
        index: usize,
    },
    /// Two overrides name the same parameter position.
    DuplicateArgOverride {
        /// The position overridden twice.
        index: usize,
    },
    /// A type-level spec declares per-argument overrides but the task type
    /// declared no access signature to validate them against.
    OverridesRequireSignature,
    /// The down-shift margin must be a fraction strictly between 0 and 1
    /// (an acceptance counts as over-precise when its error is below
    /// `margin · τ_max`).
    InvalidDownShiftMargin {
        /// The offending margin.
        margin: f64,
    },
}

impl std::fmt::Display for MemoSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoSpecError::InvalidTau { tau } => {
                write!(f, "the error threshold must be a positive finite number, got {tau}")
            }
            MemoSpecError::InvalidPrecision { precision } => {
                write!(f, "a precision fraction must be in (0, 1], got {precision}")
            }
            MemoSpecError::ZeroTrainingWindow => {
                write!(f, "the training window must be at least 1")
            }
            MemoSpecError::ArgIndexOutOfRange { index, arity } => write!(
                f,
                "argument override #{index} is out of range: the task declares {arity} positional parameters"
            ),
            MemoSpecError::ArgNotRead { index } => write!(
                f,
                "argument override #{index} names a write-only parameter; precision applies to hashed (read) bytes"
            ),
            MemoSpecError::DuplicateArgOverride { index } => {
                write!(f, "argument #{index} has more than one precision override")
            }
            MemoSpecError::OverridesRequireSignature => write!(
                f,
                "per-argument overrides require the task type to declare an access signature"
            ),
            MemoSpecError::InvalidDownShiftMargin { margin } => write!(
                f,
                "the down-shift margin must be strictly between 0 and 1, got {margin}"
            ),
        }
    }
}

impl std::error::Error for MemoSpecError {}

/// The approximation policy of one memoizable task type (or of one task
/// instance, when attached through [`crate::TaskBuilder::memo`]).
///
/// Built fluently from one of the three policy constructors; see the
/// [module docs](self) for the full picture.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoSpec {
    policy: MemoPolicy,
    tau: f64,
    training_window: usize,
    metric: ErrorMetric,
    type_aware: bool,
    down_shift: Option<f64>,
    arg_overrides: Vec<(usize, ArgPrecision)>,
}

impl Default for MemoSpec {
    /// The paper's Dynamic ATM defaults: approximate, `τ_max = 1 %`,
    /// `L_training = 15`, Chebyshev metric, type-aware byte selection.
    fn default() -> Self {
        MemoSpec::approximate()
    }
}

impl MemoSpec {
    fn new(policy: MemoPolicy) -> Self {
        MemoSpec {
            policy,
            // τ_max = 1 % "provides good results" for most benchmarks
            // (§IV-A); at least 15 training tasks are needed to let the
            // trained p reach 100 %.
            tau: 0.01,
            training_window: 15,
            metric: ErrorMetric::Chebyshev,
            type_aware: true,
            down_shift: None,
            arg_overrides: Vec::new(),
        }
    }

    /// Exact memoization: hash everything, hit only on identical inputs.
    pub fn exact() -> Self {
        MemoSpec::new(MemoPolicy::Exact)
    }

    /// Adaptive approximation with the paper's default training parameters
    /// (`τ_max = 1 %`, `L_training = 15`, Chebyshev).
    pub fn approximate() -> Self {
        MemoSpec::new(MemoPolicy::Approximate)
    }

    /// A constant selection fraction in `(0, 1]`, chosen offline.
    pub fn fixed_precision(p: f64) -> Self {
        MemoSpec::new(MemoPolicy::FixedPrecision(p))
    }

    /// Sets the maximum tolerated per-task error `τ_max` (a relative error
    /// for [`ErrorMetric::Chebyshev`]/[`ErrorMetric::RelL2`], a ULP count
    /// for [`ErrorMetric::MaxUlp`]).
    #[must_use]
    pub fn tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Sets the number of correctly-approximated training tasks required
    /// before `p` is frozen (the paper's `L_training`).
    #[must_use]
    pub fn training_window(mut self, window: usize) -> Self {
        self.training_window = window;
        self
    }

    /// Selects the error metric evaluated per output region during training.
    #[must_use]
    pub fn metric(mut self, metric: ErrorMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Enables or disables the significance-ordered (MSB-first) byte
    /// selection of §III-C. On by default.
    #[must_use]
    pub fn type_aware(mut self, type_aware: bool) -> Self {
        self.type_aware = type_aware;
        self
    }

    /// Opts an [`MemoSpec::approximate`] type into the adaptive
    /// **down-shift**: when a full training window of acceptances stays
    /// below `margin · τ_max` (far more precise than required), the trained
    /// `p` is *halved* again and the window restarts, instead of freezing
    /// an over-precise selection percentage. Off by default — the default
    /// controller only ever doubles `p`, exactly as in the paper.
    ///
    /// `margin` must be strictly between 0 and 1.
    #[must_use]
    pub fn down_shift(mut self, margin: f64) -> Self {
        self.down_shift = Some(margin);
        self
    }

    /// Overrides the precision of the positional parameter `index` to a
    /// constant fraction of its bytes, independent of the type-wide `p`.
    #[must_use]
    pub fn arg_precision(mut self, index: usize, fraction: f64) -> Self {
        self.arg_overrides
            .push((index, ArgPrecision::Fraction(fraction)));
        self
    }

    /// Hashes the positional parameter `index` exactly (every byte), so a
    /// small control argument never aliases under approximation while the
    /// large data arguments are still hashed at the type's `p`.
    #[must_use]
    pub fn arg_exact(mut self, index: usize) -> Self {
        self.arg_overrides.push((index, ArgPrecision::Exact));
        self
    }

    /// The selection policy.
    pub fn policy(&self) -> MemoPolicy {
        self.policy
    }

    /// The error threshold `τ_max`.
    pub fn tau_max(&self) -> f64 {
        self.tau
    }

    /// The training window `L_training`.
    pub fn training_window_len(&self) -> usize {
        self.training_window
    }

    /// The training error metric.
    pub fn error_metric(&self) -> ErrorMetric {
        self.metric
    }

    /// Whether significance-ordered byte selection is enabled.
    pub fn is_type_aware(&self) -> bool {
        self.type_aware
    }

    /// The adaptive down-shift margin, when the spec opted in.
    pub fn down_shift_margin(&self) -> Option<f64> {
        self.down_shift
    }

    /// The declared per-argument overrides, in declaration order.
    pub fn arg_overrides(&self) -> &[(usize, ArgPrecision)] {
        &self.arg_overrides
    }

    /// The precision override of positional parameter `index`, if any.
    pub fn precision_override(&self, index: usize) -> Option<ArgPrecision> {
        self.arg_overrides
            .iter()
            .find(|(i, _)| *i == index)
            .map(|&(_, p)| p)
    }

    /// Checks the numeric fields and the override list itself (duplicates,
    /// fraction ranges) — everything that can be validated without knowing
    /// the task's parameters.
    fn validate_values(&self) -> Result<(), MemoSpecError> {
        if !(self.tau.is_finite() && self.tau > 0.0) {
            return Err(MemoSpecError::InvalidTau { tau: self.tau });
        }
        if self.training_window == 0 {
            return Err(MemoSpecError::ZeroTrainingWindow);
        }
        if let Some(margin) = self.down_shift {
            if !(margin.is_finite() && margin > 0.0 && margin < 1.0) {
                return Err(MemoSpecError::InvalidDownShiftMargin { margin });
            }
        }
        if let MemoPolicy::FixedPrecision(p) = self.policy {
            if !(p.is_finite() && p > 0.0 && p <= 1.0) {
                return Err(MemoSpecError::InvalidPrecision { precision: p });
            }
        }
        for (index, (arg, precision)) in self.arg_overrides.iter().enumerate() {
            if let ArgPrecision::Fraction(f) = precision {
                if !(f.is_finite() && *f > 0.0 && *f <= 1.0) {
                    return Err(MemoSpecError::InvalidPrecision { precision: *f });
                }
            }
            if self.arg_overrides[..index].iter().any(|(i, _)| i == arg) {
                return Err(MemoSpecError::DuplicateArgOverride { index: *arg });
            }
        }
        Ok(())
    }

    /// Validates a type-level spec against the task type's declared access
    /// signature (called by [`crate::TaskTypeBuilder::build`]).
    pub fn validate(&self, signature: Option<&TaskSignature>) -> Result<(), MemoSpecError> {
        self.validate_values()?;
        if self.arg_overrides.is_empty() {
            return Ok(());
        }
        let Some(signature) = signature else {
            return Err(MemoSpecError::OverridesRequireSignature);
        };
        for &(index, _) in &self.arg_overrides {
            // Overrides address the fixed positional parameters; a variadic
            // tail has no stable positions to override.
            let param = signature.fixed.get(index).ok_or({
                MemoSpecError::ArgIndexOutOfRange {
                    index,
                    arity: signature.fixed.len(),
                }
            })?;
            if !param.mode.is_read() {
                return Err(MemoSpecError::ArgNotRead { index });
            }
        }
        Ok(())
    }

    /// Validates a per-instance spec against the instance's actual accesses
    /// (called by the submission validator after the accesses themselves
    /// passed the signature and store checks).
    pub fn validate_against_accesses(&self, accesses: &[Access]) -> Result<(), MemoSpecError> {
        self.validate_values()?;
        for &(index, _) in &self.arg_overrides {
            let access = accesses
                .get(index)
                .ok_or(MemoSpecError::ArgIndexOutOfRange {
                    index,
                    arity: accesses.len(),
                })?;
            if !access.mode.is_read() {
                return Err(MemoSpecError::ArgNotRead { index });
            }
        }
        Ok(())
    }
}

/// ATM parameters attached to a task type by the programmer — the bridge
/// from the pre-`MemoSpec` API (the paper's extended pragma annotations,
/// §III-E and Table II).
///
/// Converts losslessly into an approximate-policy [`MemoSpec`]; new code
/// should declare a `MemoSpec` directly.
#[deprecated(
    note = "declare a `MemoSpec` (e.g. `MemoSpec::approximate().tau(..).training_window(..)`) instead"
)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtmTaskParams {
    /// Number of correctly-approximated training tasks required before the
    /// Dynamic ATM controller freezes `p` and enters the steady-state phase.
    pub l_training: usize,
    /// Maximum tolerated per-task Chebyshev relative error τ_max.
    pub tau_max: f64,
    /// Whether the hash-key generator uses type-aware (MSB-first) input
    /// selection (§III-C).
    pub type_aware: bool,
}

#[allow(deprecated)]
impl Default for AtmTaskParams {
    fn default() -> Self {
        AtmTaskParams {
            l_training: 15,
            tau_max: 0.01,
            type_aware: true,
        }
    }
}

#[allow(deprecated)]
impl From<AtmTaskParams> for MemoSpec {
    fn from(params: AtmTaskParams) -> MemoSpec {
        MemoSpec::approximate()
            .tau(params.tau_max)
            .training_window(params.l_training)
            .type_aware(params.type_aware)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessMode;
    use crate::task::SigParam;
    use crate::{ElemType, TaskSignature, VariadicSig};

    fn sig(params: &[(AccessMode, ElemType)]) -> TaskSignature {
        TaskSignature {
            fixed: params
                .iter()
                .map(|&(mode, elem)| SigParam { mode, elem })
                .collect(),
            variadic: None,
        }
    }

    #[test]
    fn defaults_match_the_paper() {
        let spec = MemoSpec::default();
        assert_eq!(spec.policy(), MemoPolicy::Approximate);
        assert!((spec.tau_max() - 0.01).abs() < 1e-12);
        assert_eq!(spec.training_window_len(), 15);
        assert_eq!(spec.error_metric(), ErrorMetric::Chebyshev);
        assert!(spec.is_type_aware());
        assert!(spec.arg_overrides().is_empty());
        assert_eq!(spec.down_shift_margin(), None, "down-shift is opt-in");
        assert_eq!(spec.validate(None), Ok(()));
    }

    #[test]
    fn down_shift_margin_is_validated() {
        let spec = MemoSpec::approximate().down_shift(0.1);
        assert_eq!(spec.down_shift_margin(), Some(0.1));
        assert_eq!(spec.validate(None), Ok(()));
        for margin in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(
                matches!(
                    MemoSpec::approximate().down_shift(margin).validate(None),
                    Err(MemoSpecError::InvalidDownShiftMargin { .. })
                ),
                "margin = {margin} must be rejected"
            );
        }
    }

    #[test]
    fn fluent_setters_compose() {
        let spec = MemoSpec::approximate()
            .tau(1e-3)
            .metric(ErrorMetric::RelL2)
            .training_window(32)
            .type_aware(false)
            .arg_exact(0)
            .arg_precision(2, 0.25);
        assert!((spec.tau_max() - 1e-3).abs() < 1e-15);
        assert_eq!(spec.training_window_len(), 32);
        assert_eq!(spec.error_metric(), ErrorMetric::RelL2);
        assert!(!spec.is_type_aware());
        assert_eq!(spec.precision_override(0), Some(ArgPrecision::Exact));
        assert_eq!(
            spec.precision_override(2),
            Some(ArgPrecision::Fraction(0.25))
        );
        assert_eq!(spec.precision_override(1), None);
    }

    #[test]
    fn invalid_tau_is_rejected() {
        for tau in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            // NaN != NaN under PartialEq, so match on the variant.
            assert!(
                matches!(
                    MemoSpec::approximate().tau(tau).validate(None),
                    Err(MemoSpecError::InvalidTau { .. })
                ),
                "tau = {tau} must be rejected"
            );
        }
        assert_eq!(MemoSpec::approximate().tau(0.5).validate(None), Ok(()));
    }

    #[test]
    fn invalid_fixed_precision_is_rejected() {
        for p in [0.0, -0.5, 1.5, f64::INFINITY] {
            assert_eq!(
                MemoSpec::fixed_precision(p).validate(None),
                Err(MemoSpecError::InvalidPrecision { precision: p })
            );
        }
        assert_eq!(MemoSpec::fixed_precision(1.0).validate(None), Ok(()));
    }

    #[test]
    fn invalid_arg_fraction_is_rejected() {
        let signature = sig(&[(AccessMode::In, ElemType::F32)]);
        assert_eq!(
            MemoSpec::approximate()
                .arg_precision(0, 0.0)
                .validate(Some(&signature)),
            Err(MemoSpecError::InvalidPrecision { precision: 0.0 })
        );
    }

    #[test]
    fn zero_training_window_is_rejected() {
        assert_eq!(
            MemoSpec::approximate().training_window(0).validate(None),
            Err(MemoSpecError::ZeroTrainingWindow)
        );
    }

    #[test]
    fn out_of_range_override_is_rejected() {
        let signature = sig(&[
            (AccessMode::In, ElemType::F32),
            (AccessMode::Out, ElemType::F32),
        ]);
        assert_eq!(
            MemoSpec::approximate()
                .arg_exact(2)
                .validate(Some(&signature)),
            Err(MemoSpecError::ArgIndexOutOfRange { index: 2, arity: 2 })
        );
        // A variadic tail has no stable positions: overrides only address
        // the fixed parameters.
        let variadic = TaskSignature {
            fixed: vec![SigParam {
                mode: AccessMode::In,
                elem: ElemType::F32,
            }],
            variadic: Some(VariadicSig {
                mode: Some(AccessMode::In),
                elem: ElemType::F32,
                min: 4,
            }),
        };
        assert_eq!(
            MemoSpec::approximate()
                .arg_exact(3)
                .validate(Some(&variadic)),
            Err(MemoSpecError::ArgIndexOutOfRange { index: 3, arity: 1 })
        );
    }

    #[test]
    fn override_on_write_only_parameter_is_rejected() {
        let signature = sig(&[
            (AccessMode::In, ElemType::F32),
            (AccessMode::Out, ElemType::F32),
        ]);
        assert_eq!(
            MemoSpec::approximate()
                .arg_exact(1)
                .validate(Some(&signature)),
            Err(MemoSpecError::ArgNotRead { index: 1 })
        );
        // InOut parameters are read, so they can be overridden.
        let inout = sig(&[(AccessMode::InOut, ElemType::F32)]);
        assert_eq!(
            MemoSpec::approximate().arg_exact(0).validate(Some(&inout)),
            Ok(())
        );
    }

    #[test]
    fn duplicate_override_is_rejected() {
        let signature = sig(&[(AccessMode::In, ElemType::F32)]);
        assert_eq!(
            MemoSpec::approximate()
                .arg_exact(0)
                .arg_precision(0, 0.5)
                .validate(Some(&signature)),
            Err(MemoSpecError::DuplicateArgOverride { index: 0 })
        );
    }

    #[test]
    fn overrides_without_a_signature_are_rejected() {
        assert_eq!(
            MemoSpec::approximate().arg_exact(0).validate(None),
            Err(MemoSpecError::OverridesRequireSignature)
        );
    }

    #[test]
    fn instance_validation_checks_the_actual_accesses() {
        use crate::region::DataStore;
        let store = DataStore::new();
        let input = store.register_zeros::<f32>("in", 4).unwrap();
        let out = store.register_zeros::<f32>("out", 4).unwrap();
        let accesses = vec![Access::read(&input), Access::write(&out)];
        let ok = MemoSpec::approximate().arg_exact(0);
        assert_eq!(ok.validate_against_accesses(&accesses), Ok(()));
        assert_eq!(
            MemoSpec::approximate()
                .arg_exact(1)
                .validate_against_accesses(&accesses),
            Err(MemoSpecError::ArgNotRead { index: 1 })
        );
        assert_eq!(
            MemoSpec::approximate()
                .arg_exact(5)
                .validate_against_accesses(&accesses),
            Err(MemoSpecError::ArgIndexOutOfRange { index: 5, arity: 2 })
        );
    }

    #[test]
    #[allow(deprecated)]
    fn atm_task_params_bridge_into_an_approximate_spec() {
        let params = AtmTaskParams {
            l_training: 30,
            tau_max: 0.2,
            type_aware: false,
        };
        let spec: MemoSpec = params.into();
        assert_eq!(spec.policy(), MemoPolicy::Approximate);
        assert!((spec.tau_max() - 0.2).abs() < 1e-12);
        assert_eq!(spec.training_window_len(), 30);
        assert!(!spec.is_type_aware());
        let default_spec: MemoSpec = AtmTaskParams::default().into();
        assert_eq!(default_spec, MemoSpec::default());
    }

    #[test]
    fn errors_render_readable_messages() {
        let errors: [MemoSpecError; 7] = [
            MemoSpecError::InvalidTau { tau: -1.0 },
            MemoSpecError::InvalidPrecision { precision: 2.0 },
            MemoSpecError::ZeroTrainingWindow,
            MemoSpecError::ArgIndexOutOfRange { index: 3, arity: 2 },
            MemoSpecError::ArgNotRead { index: 1 },
            MemoSpecError::DuplicateArgOverride { index: 0 },
            MemoSpecError::OverridesRequireSignature,
        ];
        for error in errors {
            assert!(!error.to_string().is_empty());
        }
        assert_eq!(format!("{}", ErrorMetric::RelL2), "rel-l2");
        assert_eq!(format!("{}", ErrorMetric::MaxUlp), "max-ulp");
        assert_eq!(format!("{}", ErrorMetric::Chebyshev), "chebyshev");
    }
}
