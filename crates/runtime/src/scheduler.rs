//! The scheduler: worker pool, task submission, dependence release and the
//! taskwait barrier.
//!
//! The execution model follows §II-C of the paper: the master thread submits
//! tasks (annotated with their data accesses); the runtime builds the task
//! dependence graph; tasks whose dependences are satisfied move to the Ready
//! Queue; idle worker threads pull tasks from the queue and, *before
//! executing them*, give the configured [`TaskInterceptor`] (the ATM engine)
//! the chance to memoize or defer them.

use crate::dependence::TaskGraph;
use crate::interceptor::{Decision, NoopInterceptor, TaskInterceptor};
use crate::ready_queue::{Popped, ReadyQueue};
use crate::region::DataStore;
use crate::stats::{RuntimeStats, RuntimeStatsSnapshot};
use crate::task::{TaskContext, TaskDesc, TaskId, TaskTypeId, TaskTypeInfo, TaskView};
use crate::trace::{ThreadState, Tracer};
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration and construction of a [`Runtime`].
pub struct RuntimeBuilder {
    workers: usize,
    tracing: bool,
    interceptor: Arc<dyn TaskInterceptor>,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeBuilder {
    /// Starts a builder with 1 worker, tracing disabled and no interceptor
    /// (the "no ATM" baseline).
    pub fn new() -> Self {
        RuntimeBuilder { workers: 1, tracing: false, interceptor: Arc::new(NoopInterceptor) }
    }

    /// Sets the number of worker threads (the paper's "number of cores").
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "the runtime needs at least one worker thread");
        self.workers = workers;
        self
    }

    /// Enables execution tracing (Figures 7/8). Disabled by default so the
    /// instrumentation does not distort speedup measurements.
    #[must_use]
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Installs a task interceptor (the ATM engine).
    #[must_use]
    pub fn interceptor(mut self, interceptor: Arc<dyn TaskInterceptor>) -> Self {
        self.interceptor = interceptor;
        self
    }

    /// Builds the runtime and spawns its worker threads.
    pub fn build(self) -> Runtime {
        let tracer = Arc::new(Tracer::new(self.tracing));
        let inner = Arc::new(Inner {
            store: DataStore::new(),
            registry: RwLock::new(Vec::new()),
            graph: Mutex::new(TaskGraph::new()),
            queue: ReadyQueue::new(Arc::clone(&tracer)),
            interceptor: self.interceptor,
            tracer,
            stats: RuntimeStats::new(),
            outstanding: Mutex::new(0),
            all_done: Condvar::new(),
            workers: self.workers,
        });
        let handles = (0..self.workers)
            .map(|worker| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("atm-worker-{worker}"))
                    .spawn(move || worker_loop(&inner, worker))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Runtime { inner, handles }
    }
}

struct Inner {
    store: DataStore,
    registry: RwLock<Vec<TaskTypeInfo>>,
    graph: Mutex<TaskGraph>,
    queue: ReadyQueue,
    interceptor: Arc<dyn TaskInterceptor>,
    tracer: Arc<Tracer>,
    stats: RuntimeStats,
    outstanding: Mutex<u64>,
    all_done: Condvar,
    workers: usize,
}

impl Inner {
    fn finish_task(&self, id: TaskId) {
        let newly_ready = self.graph.lock().finish(id);
        self.queue.push_all(&newly_ready);
        let mut outstanding = self.outstanding.lock();
        debug_assert!(*outstanding > 0, "finishing a task with no outstanding work");
        *outstanding -= 1;
        if *outstanding == 0 {
            self.all_done.notify_all();
        }
    }

    fn task_type(&self, id: TaskTypeId) -> TaskTypeInfo {
        self.registry.read()[id.index()].clone()
    }
}

fn worker_loop(inner: &Arc<Inner>, worker: usize) {
    loop {
        let idle_start = inner.tracer.now_ns();
        let popped = inner.queue.pop();
        inner.tracer.record(worker, ThreadState::Idle, idle_start, inner.tracer.now_ns());
        let id = match popped {
            Popped::Task(id) => id,
            Popped::Closed => break,
        };

        inner.graph.lock().mark_running(id);
        let desc = inner.graph.lock().desc(id).clone();
        let info = inner.task_type(desc.task_type);
        let view = TaskView { id, type_id: desc.task_type, info: &info, accesses: &desc.accesses };

        let decision = inner.interceptor.before_execute(view, &inner.store, &inner.tracer, worker);
        let executed = match decision {
            Decision::Execute => {
                let start = inner.tracer.now_ns();
                let ctx = TaskContext::new(&inner.store, &desc.accesses);
                (info.kernel)(&ctx);
                let end = inner.tracer.now_ns();
                inner.tracer.record(worker, ThreadState::TaskExecution, start, end);
                inner.stats.add(&inner.stats.kernel_ns, end - start);
                inner.stats.incr(&inner.stats.executed);
                true
            }
            Decision::Memoized => {
                inner.stats.incr(&inner.stats.bypassed);
                false
            }
            Decision::Deferred => {
                // The interceptor registered this task with an in-flight
                // producer; its completion will arrive through that
                // producer's `after_execute`. Do not finish it here.
                inner.stats.incr(&inner.stats.deferred);
                inner.graph.lock().mark_deferred(id);
                continue;
            }
        };

        let completed_deferred =
            inner.interceptor.after_execute(view, &inner.store, &inner.tracer, worker, executed);
        inner.finish_task(id);
        for deferred in completed_deferred {
            inner.finish_task(deferred);
        }
    }
}

/// The task-based dataflow runtime.
///
/// Create one with [`RuntimeBuilder`], register regions through
/// [`Runtime::store`], register task types with
/// [`Runtime::register_task_type`], submit work with [`Runtime::submit`] and
/// synchronise with [`Runtime::taskwait`]. Dropping the runtime (or calling
/// [`Runtime::shutdown`]) stops the workers.
pub struct Runtime {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// The data store holding all registered regions.
    pub fn store(&self) -> &DataStore {
        &self.inner.store
    }

    /// The execution tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Registers a task type and returns its id.
    pub fn register_task_type(&self, info: TaskTypeInfo) -> TaskTypeId {
        let mut registry = self.inner.registry.write();
        let id = TaskTypeId(u32::try_from(registry.len()).expect("too many task types"));
        registry.push(info);
        id
    }

    /// Submits one task instance. Dependences on previously submitted,
    /// unfinished tasks are derived from the declared accesses; the task
    /// starts executing as soon as they are satisfied.
    pub fn submit(&self, desc: TaskDesc) -> TaskId {
        let start = self.inner.tracer.now_ns();
        {
            let registry = self.inner.registry.read();
            assert!(
                desc.task_type.index() < registry.len(),
                "task type {:?} was not registered",
                desc.task_type
            );
        }
        *self.inner.outstanding.lock() += 1;
        let (id, ready) = self.inner.graph.lock().submit(desc);
        if ready {
            self.inner.queue.push(id);
        }
        let end = self.inner.tracer.now_ns();
        self.inner.stats.incr(&self.inner.stats.submitted);
        self.inner.stats.add(&self.inner.stats.creation_ns, end - start);
        // The master (submitting) thread is traced as worker index `workers`.
        self.inner.tracer.record(self.inner.workers, ThreadState::TaskCreation, start, end);
        id
    }

    /// Convenience: registers the type and submits in one call (used by tests).
    pub fn submit_simple(&self, task_type: TaskTypeId, accesses: Vec<crate::access::Access>) -> TaskId {
        self.submit(TaskDesc::new(task_type, accesses))
    }

    /// Blocks until every submitted task has finished (the `#pragma omp taskwait`
    /// of the programming model).
    pub fn taskwait(&self) {
        let start = self.inner.tracer.now_ns();
        let mut outstanding = self.inner.outstanding.lock();
        while *outstanding > 0 {
            self.inner.all_done.wait(&mut outstanding);
        }
        drop(outstanding);
        self.inner.tracer.record(self.inner.workers, ThreadState::Idle, start, self.inner.tracer.now_ns());
    }

    /// Snapshot of the runtime counters.
    pub fn stats(&self) -> RuntimeStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Current depth of the ready queue (diagnostic).
    pub fn ready_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Waits for all outstanding tasks and stops the worker threads.
    pub fn shutdown(mut self) {
        self.taskwait();
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.inner.queue.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Do not taskwait here: if the user code panicked mid-submission we
        // only want to stop the workers, not hang.
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;
    use crate::region::{ElemType, RegionData};
    use crate::task::TaskTypeBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_task_executes_and_writes_output() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let out = rt.store().register("out", RegionData::F32(vec![0.0; 4]));
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("fill", |ctx| {
                ctx.write_f32(0, &[1.0, 2.0, 3.0, 4.0]);
            })
            .build(),
        );
        rt.submit(TaskDesc::new(tt, vec![Access::output(out, ElemType::F32)]));
        rt.taskwait();
        assert_eq!(rt.store().read(out).lock().as_f32(), &[1.0, 2.0, 3.0, 4.0]);
        let stats = rt.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.executed, 1);
        rt.shutdown();
    }

    #[test]
    fn dependent_tasks_run_in_dataflow_order() {
        let rt = RuntimeBuilder::new().workers(4).build();
        let a = rt.store().register("a", RegionData::F64(vec![0.0]));
        let b = rt.store().register("b", RegionData::F64(vec![0.0]));
        let produce = rt.register_task_type(
            TaskTypeBuilder::new("produce", |ctx| ctx.write_f64(0, &[21.0])).build(),
        );
        let double = rt.register_task_type(
            TaskTypeBuilder::new("double", |ctx| {
                let x = ctx.read_f64(0)[0];
                ctx.write_f64(1, &[x * 2.0]);
            })
            .build(),
        );
        rt.submit(TaskDesc::new(produce, vec![Access::output(a, ElemType::F64)]));
        rt.submit(TaskDesc::new(
            double,
            vec![Access::input(a, ElemType::F64), Access::output(b, ElemType::F64)],
        ));
        rt.taskwait();
        assert_eq!(rt.store().read(b).lock().as_f64(), &[42.0]);
        rt.shutdown();
    }

    #[test]
    fn chain_of_inout_tasks_is_serialised() {
        let rt = RuntimeBuilder::new().workers(4).build();
        let counter = rt.store().register("counter", RegionData::I32(vec![0]));
        let incr = rt.register_task_type(
            TaskTypeBuilder::new("incr", |ctx| {
                let v = ctx.read_i32(0)[0];
                ctx.write_i32(0, &[v + 1]);
            })
            .build(),
        );
        for _ in 0..100 {
            rt.submit(TaskDesc::new(incr, vec![Access::inout(counter, ElemType::I32)]));
        }
        rt.taskwait();
        assert_eq!(rt.store().read(counter).lock().as_i32(), &[100]);
        rt.shutdown();
    }

    #[test]
    fn independent_tasks_can_run_on_many_workers() {
        let rt = RuntimeBuilder::new().workers(4).build();
        let regions: Vec<_> =
            (0..64).map(|i| rt.store().register(format!("r{i}"), RegionData::F32(vec![0.0]))).collect();
        let executions = Arc::new(AtomicUsize::new(0));
        let executions_in_kernel = Arc::clone(&executions);
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("mark", move |ctx| {
                executions_in_kernel.fetch_add(1, Ordering::Relaxed);
                ctx.write_f32(0, &[1.0]);
            })
            .build(),
        );
        for &r in &regions {
            rt.submit(TaskDesc::new(tt, vec![Access::output(r, ElemType::F32)]));
        }
        rt.taskwait();
        assert_eq!(executions.load(Ordering::Relaxed), 64);
        for &r in &regions {
            assert_eq!(rt.store().read(r).lock().as_f32(), &[1.0]);
        }
        rt.shutdown();
    }

    #[test]
    fn taskwait_can_be_called_repeatedly_between_submission_waves() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let acc = rt.store().register("acc", RegionData::F64(vec![0.0]));
        let add_one =
            rt.register_task_type(TaskTypeBuilder::new("add", |ctx| {
                let v = ctx.read_f64(0)[0];
                ctx.write_f64(0, &[v + 1.0]);
            })
            .build());
        for _wave in 0..5 {
            for _ in 0..10 {
                rt.submit(TaskDesc::new(add_one, vec![Access::inout(acc, ElemType::F64)]));
            }
            rt.taskwait();
        }
        assert_eq!(rt.store().read(acc).lock().as_f64(), &[50.0]);
        rt.shutdown();
    }

    #[test]
    fn stats_and_tracer_capture_execution() {
        let rt = RuntimeBuilder::new().workers(1).tracing(true).build();
        let r = rt.store().register("r", RegionData::F32(vec![0.0; 128]));
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("work", |ctx| {
                let v: Vec<f32> = (0..128).map(|i| (i as f32).sin()).collect();
                ctx.write_f32(0, &v);
            })
            .build(),
        );
        for _ in 0..10 {
            rt.submit(TaskDesc::new(tt, vec![Access::inout(r, ElemType::F32)]));
        }
        rt.taskwait();
        let stats = rt.stats();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.executed, 10);
        assert!(stats.kernel_ns > 0);
        let summary = rt.tracer().summary();
        assert!(summary.state_ns(ThreadState::TaskExecution) > 0);
        assert!(summary.state_ns(ThreadState::TaskCreation) > 0);
        assert!(!rt.tracer().ready_samples().is_empty());
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "was not registered")]
    fn submitting_unregistered_task_type_panics() {
        let rt = RuntimeBuilder::new().workers(1).build();
        let r = rt.store().register("r", RegionData::F32(vec![0.0]));
        rt.submit(TaskDesc::new(TaskTypeId(5), vec![Access::output(r, ElemType::F32)]));
    }

    #[test]
    fn drop_without_shutdown_does_not_hang() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let r = rt.store().register("r", RegionData::F32(vec![0.0]));
        let tt = rt.register_task_type(TaskTypeBuilder::new("t", |_| {}).build());
        rt.submit(TaskDesc::new(tt, vec![Access::output(r, ElemType::F32)]));
        rt.taskwait();
        drop(rt);
    }
}
