//! The scheduler: worker pool, task submission, dependence release and the
//! taskwait barrier.
//!
//! The execution model follows §II-C of the paper: the master thread submits
//! tasks (annotated with their data accesses); the runtime builds the task
//! dependence graph; tasks whose dependences are satisfied move to the Ready
//! Queue; idle worker threads pull tasks from the queue and, *before
//! executing them*, give the configured [`TaskInterceptor`] (the ATM engine)
//! the chance to memoize or defer them.
//!
//! Submissions go through the fluent [`Runtime::task`] builder (or the
//! lower-level [`Runtime::try_submit`]): every descriptor is validated
//! against the task type's declared signature and against the store before
//! it enters the dependence graph, so malformed tasks are rejected with a
//! [`SubmitError`] on the submitting thread instead of panicking inside a
//! worker.

use crate::dependence::TaskGraph;
use crate::interceptor::{Decision, NoopInterceptor, TaskInterceptor};
use crate::ready_queue::{Popped, ReadyQueue};
use crate::region::DataStore;
use crate::stats::{RuntimeStats, RuntimeStatsSnapshot};
use crate::submit::{check_memo, check_signature, check_store, SubmitError, TaskBuilder};
use crate::task::{TaskContext, TaskDesc, TaskId, TaskTypeId, TaskTypeInfo, TaskView};
use crate::trace::{ThreadState, Tracer};
use atm_sync::{Condvar, Mutex, RwLock};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration and construction of a [`Runtime`].
pub struct RuntimeBuilder {
    workers: usize,
    tracing: bool,
    interceptor: Arc<dyn TaskInterceptor>,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeBuilder {
    /// Starts a builder with 1 worker, tracing disabled and no interceptor
    /// (the "no ATM" baseline).
    pub fn new() -> Self {
        RuntimeBuilder {
            workers: 1,
            tracing: false,
            interceptor: Arc::new(NoopInterceptor),
        }
    }

    /// Sets the number of worker threads (the paper's "number of cores").
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "the runtime needs at least one worker thread");
        self.workers = workers;
        self
    }

    /// Enables execution tracing (Figures 7/8). Disabled by default so the
    /// instrumentation does not distort speedup measurements.
    #[must_use]
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Installs a task interceptor (the ATM engine).
    #[must_use]
    pub fn interceptor(mut self, interceptor: Arc<dyn TaskInterceptor>) -> Self {
        self.interceptor = interceptor;
        self
    }

    /// Builds the runtime and spawns its worker threads.
    pub fn build(self) -> Runtime {
        let tracer = Arc::new(Tracer::new(self.tracing));
        let inner = Arc::new(Inner {
            store: DataStore::new(),
            registry: RwLock::new(Vec::new()),
            graph: Mutex::new(TaskGraph::new()),
            queue: ReadyQueue::new(Arc::clone(&tracer)),
            interceptor: self.interceptor,
            tracer,
            stats: RuntimeStats::new(),
            outstanding: Mutex::new(0),
            all_done: Condvar::new(),
            workers: self.workers,
        });
        let handles = (0..self.workers)
            .map(|worker| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("atm-worker-{worker}"))
                    .spawn(move || worker_loop(&inner, worker))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Runtime { inner, handles }
    }
}

struct Inner {
    store: DataStore,
    registry: RwLock<Vec<TaskTypeInfo>>,
    graph: Mutex<TaskGraph>,
    queue: ReadyQueue,
    interceptor: Arc<dyn TaskInterceptor>,
    tracer: Arc<Tracer>,
    stats: RuntimeStats,
    outstanding: Mutex<u64>,
    all_done: Condvar,
    workers: usize,
}

impl Inner {
    fn finish_task(&self, id: TaskId) {
        let newly_ready = self.graph.lock().finish(id);
        self.queue.push_all(&newly_ready);
        let mut outstanding = self.outstanding.lock();
        debug_assert!(
            *outstanding > 0,
            "finishing a task with no outstanding work"
        );
        *outstanding -= 1;
        if *outstanding == 0 {
            self.all_done.notify_all();
        }
    }

    fn task_type(&self, id: TaskTypeId) -> TaskTypeInfo {
        self.registry.read()[id.index()].clone()
    }
}

fn worker_loop(inner: &Arc<Inner>, worker: usize) {
    loop {
        let idle_start = inner.tracer.now_ns();
        let popped = inner.queue.pop();
        inner
            .tracer
            .record(worker, ThreadState::Idle, idle_start, inner.tracer.now_ns());
        let id = match popped {
            Popped::Task(id) => id,
            Popped::Closed => break,
        };

        inner.graph.lock().mark_running(id);
        let desc = inner.graph.lock().desc(id).clone();
        let info = inner.task_type(desc.task_type);
        let view = TaskView {
            id,
            type_id: desc.task_type,
            info: &info,
            accesses: &desc.accesses,
            memo: desc.memo.as_ref(),
        };

        let decision = inner
            .interceptor
            .before_execute(view, &inner.store, &inner.tracer, worker);
        let executed = match decision {
            Decision::Execute => {
                let start = inner.tracer.now_ns();
                let ctx = TaskContext::new(&inner.store, &desc.accesses);
                (info.kernel)(&ctx);
                let end = inner.tracer.now_ns();
                inner
                    .tracer
                    .record(worker, ThreadState::TaskExecution, start, end);
                inner.stats.add(&inner.stats.kernel_ns, end - start);
                inner.stats.incr(&inner.stats.executed);
                true
            }
            Decision::Memoized => {
                inner.stats.incr(&inner.stats.bypassed);
                false
            }
            Decision::Deferred => {
                // The interceptor registered this task with an in-flight
                // producer; its completion will arrive through that
                // producer's `after_execute`. Do not finish it here.
                inner.stats.incr(&inner.stats.deferred);
                inner.graph.lock().mark_deferred(id);
                continue;
            }
        };

        let completed_deferred =
            inner
                .interceptor
                .after_execute(view, &inner.store, &inner.tracer, worker, executed);
        inner.finish_task(id);
        for deferred in completed_deferred {
            inner.finish_task(deferred);
        }
    }
}

/// The task-based dataflow runtime.
///
/// Create one with [`RuntimeBuilder`], register regions through
/// [`Runtime::store`], register task types with
/// [`Runtime::register_task_type`], submit work with the fluent
/// [`Runtime::task`] builder and synchronise with [`Runtime::taskwait`].
/// Dropping the runtime (or calling [`Runtime::shutdown`]) stops the
/// workers.
pub struct Runtime {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// The data store holding all registered regions.
    pub fn store(&self) -> &DataStore {
        &self.inner.store
    }

    /// The execution tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Registers a task type and returns its id.
    pub fn register_task_type(&self, info: TaskTypeInfo) -> TaskTypeId {
        let mut registry = self.inner.registry.write();
        let id = TaskTypeId(u32::try_from(registry.len()).expect("too many task types"));
        registry.push(info);
        id
    }

    /// Starts a fluent, validating submission of one instance of
    /// `task_type`. Chain [`TaskBuilder::reads`], [`TaskBuilder::writes`],
    /// [`TaskBuilder::reads_writes`] (and optionally
    /// [`TaskBuilder::memo`]), then call [`TaskBuilder::submit`].
    pub fn task(&self, task_type: TaskTypeId) -> TaskBuilder<'_> {
        TaskBuilder::new(self, task_type)
    }

    /// Validates and submits one task instance. Dependences on previously
    /// submitted, unfinished tasks are derived from the declared accesses;
    /// the task starts executing as soon as they are satisfied.
    pub fn try_submit(&self, desc: TaskDesc) -> Result<TaskId, SubmitError> {
        let start = self.inner.tracer.now_ns();
        {
            let registry = self.inner.registry.read();
            let info =
                registry
                    .get(desc.task_type.index())
                    .ok_or(SubmitError::UnknownTaskType {
                        task_type: desc.task_type,
                    })?;
            if let Some(signature) = &info.signature {
                check_signature(signature, &desc.accesses)?;
            }
        }
        check_store(&self.inner.store, &desc.accesses)?;
        if let Some(spec) = &desc.memo {
            check_memo(spec, &desc.accesses)?;
        }

        *self.inner.outstanding.lock() += 1;
        let (id, ready) = self.inner.graph.lock().submit(desc);
        if ready {
            self.inner.queue.push(id);
        }
        let end = self.inner.tracer.now_ns();
        self.inner.stats.incr(&self.inner.stats.submitted);
        self.inner
            .stats
            .add(&self.inner.stats.creation_ns, end - start);
        // The master (submitting) thread is traced as worker index `workers`.
        self.inner
            .tracer
            .record(self.inner.workers, ThreadState::TaskCreation, start, end);
        Ok(id)
    }

    /// Blocks until every submitted task has finished (the `#pragma omp taskwait`
    /// of the programming model).
    pub fn taskwait(&self) {
        let start = self.inner.tracer.now_ns();
        let mut outstanding = self.inner.outstanding.lock();
        while *outstanding > 0 {
            self.inner.all_done.wait(&mut outstanding);
        }
        drop(outstanding);
        self.inner.tracer.record(
            self.inner.workers,
            ThreadState::Idle,
            start,
            self.inner.tracer.now_ns(),
        );
    }

    /// Snapshot of the runtime counters.
    pub fn stats(&self) -> RuntimeStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Current depth of the ready queue (diagnostic).
    pub fn ready_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Waits for all outstanding tasks and stops the worker threads.
    pub fn shutdown(mut self) {
        self.taskwait();
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.inner.queue.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Do not taskwait here: if the user code panicked mid-submission we
        // only want to stop the workers, not hang.
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, AccessMode};
    use crate::region::{ElemType, Region};
    use crate::task::TaskTypeBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_task_executes_and_writes_output() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let out = rt.store().register_zeros::<f32>("out", 4).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("fill", |ctx| {
                ctx.out(0, &[1.0f32, 2.0, 3.0, 4.0]);
            })
            .out::<f32>()
            .build(),
        );
        rt.task(tt).writes(&out).submit().unwrap();
        rt.taskwait();
        assert_eq!(rt.store().read(out).lock().as_f32(), &[1.0, 2.0, 3.0, 4.0]);
        let stats = rt.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.executed, 1);
        rt.shutdown();
    }

    #[test]
    fn dependent_tasks_run_in_dataflow_order() {
        let rt = RuntimeBuilder::new().workers(4).build();
        let a = rt.store().register_zeros::<f64>("a", 1).unwrap();
        let b = rt.store().register_zeros::<f64>("b", 1).unwrap();
        let produce = rt.register_task_type(
            TaskTypeBuilder::new("produce", |ctx| ctx.out(0, &[21.0f64]))
                .out::<f64>()
                .build(),
        );
        let double = rt.register_task_type(
            TaskTypeBuilder::new("double", |ctx| {
                let x = ctx.arg::<f64>(0)[0];
                ctx.out(1, &[x * 2.0]);
            })
            .arg::<f64>()
            .out::<f64>()
            .build(),
        );
        rt.task(produce).writes(&a).submit().unwrap();
        rt.task(double).reads(&a).writes(&b).submit().unwrap();
        rt.taskwait();
        assert_eq!(rt.store().read(b).lock().as_f64(), &[42.0]);
        rt.shutdown();
    }

    #[test]
    fn chain_of_inout_tasks_is_serialised() {
        let rt = RuntimeBuilder::new().workers(4).build();
        let counter = rt.store().register_zeros::<i32>("counter", 1).unwrap();
        let incr = rt.register_task_type(
            TaskTypeBuilder::new("incr", |ctx| {
                let v = ctx.arg::<i32>(0)[0];
                ctx.out(0, &[v + 1]);
            })
            .inout::<i32>()
            .build(),
        );
        for _ in 0..100 {
            rt.task(incr).reads_writes(&counter).submit().unwrap();
        }
        rt.taskwait();
        assert_eq!(rt.store().read(counter).lock().as_i32(), &[100]);
        rt.shutdown();
    }

    #[test]
    fn independent_tasks_can_run_on_many_workers() {
        let rt = RuntimeBuilder::new().workers(4).build();
        let regions: Vec<Region<f32>> = (0..64)
            .map(|i| rt.store().register_zeros(format!("r{i}"), 1).unwrap())
            .collect();
        let executions = Arc::new(AtomicUsize::new(0));
        let executions_in_kernel = Arc::clone(&executions);
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("mark", move |ctx| {
                executions_in_kernel.fetch_add(1, Ordering::Relaxed);
                ctx.out(0, &[1.0f32]);
            })
            .out::<f32>()
            .build(),
        );
        for r in &regions {
            rt.task(tt).writes(r).submit().unwrap();
        }
        rt.taskwait();
        assert_eq!(executions.load(Ordering::Relaxed), 64);
        for r in &regions {
            assert_eq!(rt.store().read(*r).lock().as_f32(), &[1.0]);
        }
        rt.shutdown();
    }

    #[test]
    fn taskwait_can_be_called_repeatedly_between_submission_waves() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let acc = rt.store().register_zeros::<f64>("acc", 1).unwrap();
        let add_one = rt.register_task_type(
            TaskTypeBuilder::new("add", |ctx| {
                let v = ctx.arg::<f64>(0)[0];
                ctx.out(0, &[v + 1.0]);
            })
            .inout::<f64>()
            .build(),
        );
        for _wave in 0..5 {
            for _ in 0..10 {
                rt.task(add_one).reads_writes(&acc).submit().unwrap();
            }
            rt.taskwait();
        }
        assert_eq!(rt.store().read(acc).lock().as_f64(), &[50.0]);
        rt.shutdown();
    }

    #[test]
    fn stats_and_tracer_capture_execution() {
        let rt = RuntimeBuilder::new().workers(1).tracing(true).build();
        let r = rt.store().register_zeros::<f32>("r", 128).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("work", |ctx| {
                let v: Vec<f32> = (0..128).map(|i| (i as f32).sin()).collect();
                ctx.out(0, &v);
            })
            .inout::<f32>()
            .build(),
        );
        for _ in 0..10 {
            rt.task(tt).reads_writes(&r).submit().unwrap();
        }
        rt.taskwait();
        let stats = rt.stats();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.executed, 10);
        assert!(stats.kernel_ns > 0);
        let summary = rt.tracer().summary();
        assert!(summary.state_ns(ThreadState::TaskExecution) > 0);
        assert!(summary.state_ns(ThreadState::TaskCreation) > 0);
        assert!(!rt.tracer().ready_samples().is_empty());
        rt.shutdown();
    }

    #[test]
    fn submitting_unregistered_task_type_is_rejected() {
        let rt = RuntimeBuilder::new().workers(1).build();
        let r = rt.store().register_zeros::<f32>("r", 1).unwrap();
        let err = rt.task(TaskTypeId(5)).writes(&r).submit().unwrap_err();
        assert_eq!(
            err,
            SubmitError::UnknownTaskType {
                task_type: TaskTypeId(5)
            }
        );
    }

    #[test]
    fn submission_validates_against_the_signature() {
        let rt = RuntimeBuilder::new().workers(1).build();
        let input = rt.store().register_zeros::<f64>("in", 2).unwrap();
        let out = rt.store().register_zeros::<f64>("out", 2).unwrap();
        let floats = rt.store().register_zeros::<f32>("floats", 2).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("copy", |ctx| {
                let v = ctx.arg::<f64>(0);
                ctx.out(1, &v);
            })
            .arg::<f64>()
            .out::<f64>()
            .build(),
        );

        // Wrong arity.
        assert_eq!(
            rt.task(tt).reads(&input).submit().unwrap_err(),
            SubmitError::ArityMismatch {
                min: 2,
                max: Some(2),
                got: 1
            }
        );
        // Wrong mode at position 1.
        assert_eq!(
            rt.task(tt).reads(&input).reads(&out).submit().unwrap_err(),
            SubmitError::ModeMismatch {
                index: 1,
                expected: AccessMode::Out,
                got: AccessMode::In
            }
        );
        // Wrong element type at position 1.
        assert_eq!(
            rt.task(tt)
                .reads(&input)
                .writes(&floats)
                .submit()
                .unwrap_err(),
            SubmitError::TypeMismatch {
                index: 1,
                expected: ElemType::F64,
                got: ElemType::F32
            }
        );
        // A correct submission still goes through.
        rt.task(tt).reads(&input).writes(&out).submit().unwrap();
        rt.taskwait();
        assert_eq!(
            rt.stats().submitted,
            1,
            "rejected submissions must not be counted"
        );
        rt.shutdown();
    }

    #[test]
    fn submission_rejects_regions_from_another_store() {
        let rt = RuntimeBuilder::new().workers(1).build();
        let other = RuntimeBuilder::new().workers(1).build();
        let foreign = other.store().register_zeros::<f32>("foreign", 1).unwrap();
        let tt = rt.register_task_type(TaskTypeBuilder::new("t", |_| {}).build());
        let err = rt.task(tt).writes(&foreign).submit().unwrap_err();
        assert_eq!(
            err,
            SubmitError::UnknownRegion {
                index: 0,
                region: foreign.id()
            }
        );
        rt.shutdown();
        other.shutdown();
    }

    #[test]
    fn ranged_accesses_submit_through_the_escape_hatch() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let r = rt.store().register_zeros::<f32>("r", 8).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("fill_half", |ctx| {
                let len = ctx.elem_range(0).len();
                ctx.out(0, &vec![1.0f32; len]);
            })
            .build(),
        );
        rt.task(tt)
            .access(Access::write(&r).with_range(0..16))
            .submit()
            .unwrap();
        rt.taskwait();
        assert_eq!(
            rt.store().read(r).lock().as_f32(),
            &[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0]
        );
        rt.shutdown();
    }

    #[test]
    fn submission_validates_a_per_instance_memo_spec() {
        use crate::memo::{MemoSpec, MemoSpecError};
        let rt = RuntimeBuilder::new().workers(1).build();
        let input = rt.store().register_zeros::<f64>("in", 2).unwrap();
        let out = rt.store().register_zeros::<f64>("out", 2).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("copy", |ctx| {
                let v = ctx.arg::<f64>(0);
                ctx.out(1, &v);
            })
            .arg::<f64>()
            .out::<f64>()
            .build(),
        );
        // Override on the write-only access: rejected at submission.
        let err = rt
            .task(tt)
            .reads(&input)
            .writes(&out)
            .memo(MemoSpec::approximate().arg_exact(1))
            .submit()
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::InvalidMemoSpec {
                error: MemoSpecError::ArgNotRead { index: 1 }
            }
        );
        // A valid instance spec goes through.
        rt.task(tt)
            .reads(&input)
            .writes(&out)
            .memo(MemoSpec::exact())
            .submit()
            .unwrap();
        rt.taskwait();
        rt.shutdown();
    }

    #[test]
    fn drop_without_shutdown_does_not_hang() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let r = rt.store().register_zeros::<f32>("r", 1).unwrap();
        let tt = rt.register_task_type(TaskTypeBuilder::new("t", |_| {}).build());
        rt.task(tt).writes(&r).submit().unwrap();
        rt.taskwait();
        drop(rt);
    }
}
