//! The scheduler: worker pool, task submission, dependence release and the
//! taskwait barrier.
//!
//! The execution model follows §II-C of the paper: the master thread submits
//! tasks (annotated with their data accesses); the runtime builds the task
//! dependence graph; tasks whose dependences are satisfied move to the Ready
//! Queue; idle worker threads pull tasks from the queue and, *before
//! executing them*, give the configured [`TaskInterceptor`] (the ATM engine)
//! the chance to memoize or defer them.
//!
//! Submissions go through the fluent [`Runtime::task`] builder (or the
//! lower-level [`Runtime::try_submit`]): every descriptor is validated
//! against the task type's declared signature and against the store before
//! it enters the dependence graph, so malformed tasks are rejected with a
//! [`SubmitError`] on the submitting thread instead of panicking inside a
//! worker.
//!
//! # Steady-state hot path
//!
//! Completing a task touches **no global lock**: the dependence graph
//! releases successors through per-node atomic counters
//! ([`crate::dependence`]), the released tasks go into the finishing
//! worker's own deque under [`QueueMode::Stealing`]
//! ([`crate::ready_queue`]), the `outstanding` taskwait counter is a single
//! atomic decrement, statistics land in per-worker shards
//! ([`crate::stats`]), and the worker reads the task descriptor and its
//! `Arc`-shared task type straight out of the graph node — no per-execution
//! clones. [`QueueMode::Fifo`] keeps the paper's single-queue behaviour
//! (and its deterministic single-worker pop order) selectable per runtime.

use crate::dependence::{TaskGraph, TaskNode};
use crate::interceptor::{Decision, NoopInterceptor, TaskInterceptor};
use crate::ready_queue::{Popped, QueueMode, ReadyQueue};
use crate::region::{DataStore, DeregisterError, RegionId};
use crate::stats::{RuntimeStats, RuntimeStatsSnapshot};
use crate::submit::{
    check_memo, check_signature, check_store, BatchBuilder, SubmitError, TaskBuilder,
};
use crate::task::{TaskContext, TaskDesc, TaskId, TaskTypeId, TaskTypeInfo, TaskView};
use crate::trace::{ThreadState, Tracer};
use atm_obs::{
    DecisionSnapshot, EngineObservation, LatencyMetric, MetricsSnapshot, Observability,
    StoreObservation, TaskSpan,
};
use atm_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use atm_sync::{Condvar, Mutex, RwLock};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Worker-thread CPU placement policy (see [`RuntimeBuilder::affinity`]).
///
/// Pinning is dependency-free (a raw `sched_setaffinity` syscall on Linux
/// x86_64/aarch64, confined to the `atm-affinity` crate) and degrades to a
/// no-op on platforms without support: a worker whose pin fails simply runs
/// unpinned. [`Runtime::pinned_workers`] reports how many pins stuck.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Affinity {
    /// No pinning (the default): the OS scheduler places workers freely.
    #[default]
    None,
    /// Pin worker `i` to CPU `i % available_parallelism` — one worker per
    /// core while the pool fits, wrapping beyond that.
    RoundRobin,
    /// Pin worker `i` to `cpus[i % cpus.len()]` — explicit placement for
    /// NUMA experiments. An empty list pins nothing.
    Explicit(Vec<usize>),
}

impl Affinity {
    /// The CPU `worker` should pin to under this policy, `None` when the
    /// worker runs unpinned.
    fn cpu_for(&self, worker: usize) -> Option<usize> {
        match self {
            Affinity::None => None,
            Affinity::RoundRobin => {
                let cores = std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1);
                Some(worker % cores)
            }
            Affinity::Explicit(cpus) => {
                if cpus.is_empty() {
                    None
                } else {
                    Some(cpus[worker % cpus.len()])
                }
            }
        }
    }
}

/// Configuration and construction of a [`Runtime`].
pub struct RuntimeBuilder {
    workers: usize,
    tracing: bool,
    queue_mode: QueueMode,
    interceptor: Arc<dyn TaskInterceptor>,
    observability: Option<Arc<Observability>>,
    max_live_tasks: Option<u64>,
    affinity: Affinity,
    aggregated_releases: bool,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeBuilder {
    /// Starts a builder with 1 worker, tracing disabled, the work-stealing
    /// ready queue and no interceptor (the "no ATM" baseline).
    pub fn new() -> Self {
        RuntimeBuilder {
            workers: 1,
            tracing: false,
            queue_mode: QueueMode::default(),
            interceptor: Arc::new(NoopInterceptor),
            observability: None,
            max_live_tasks: None,
            affinity: Affinity::default(),
            aggregated_releases: true,
        }
    }

    /// Sets the worker CPU placement policy (see [`Affinity`]). The default
    /// is [`Affinity::None`]; pinning lets the `scaling` experiment
    /// separate scheduler cost from cache/NUMA placement. Pins that the
    /// platform cannot honour degrade to running unpinned.
    #[must_use]
    pub fn affinity(mut self, affinity: Affinity) -> Self {
        self.affinity = affinity;
        self
    }

    /// Toggles release aggregation (default `true`). When on, a worker
    /// flushes all successors released by one finish cycle — the executed
    /// task plus its producer-completed deferred waiters — as **one**
    /// ready-queue packet: one bulk push, one batched sleeper wakeup, one
    /// outstanding-counter decrement. `false` restores the pre-aggregation
    /// behaviour (one push and wakeup per task) and exists as the
    /// measurable baseline for the release-path benchmarks.
    #[must_use]
    pub fn aggregated_releases(mut self, aggregated: bool) -> Self {
        self.aggregated_releases = aggregated;
        self
    }

    /// Bounds the number of live (submitted but unfinished) tasks. A
    /// submission that would exceed the window is rejected with
    /// [`SubmitError::Overloaded`] — the runtime never queues beyond it —
    /// which is the admission-control primitive a serving tier builds
    /// backpressure on. `None` (the default) keeps the batch-workload
    /// behaviour: submit without bound.
    #[must_use]
    pub fn max_live_tasks(mut self, limit: u64) -> Self {
        assert!(limit >= 1, "a zero-task window would reject everything");
        self.max_live_tasks = Some(limit);
        self
    }

    /// Sets the number of worker threads (the paper's "number of cores").
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "the runtime needs at least one worker thread");
        self.workers = workers;
        self
    }

    /// Enables execution tracing (Figures 7/8). Disabled by default so the
    /// instrumentation does not distort speedup measurements.
    #[must_use]
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Selects the Ready Queue discipline. [`QueueMode::Stealing`] (the
    /// default) scales fine-grained task floods across workers;
    /// [`QueueMode::Fifo`] reproduces the paper's single global queue and
    /// its deterministic single-worker pop order.
    #[must_use]
    pub fn queue_mode(mut self, mode: QueueMode) -> Self {
        self.queue_mode = mode;
        self
    }

    /// Installs a task interceptor (the ATM engine).
    #[must_use]
    pub fn interceptor(mut self, interceptor: Arc<dyn TaskInterceptor>) -> Self {
        self.interceptor = interceptor;
        self
    }

    /// Attaches an observability handle (see [`atm_obs::Observability`]).
    /// The runtime records per-task latency histograms and trace spans into
    /// it; share the same handle with the ATM engine to get one unified
    /// [`Observation`]. A disabled handle (or none, the default) keeps the
    /// hot paths free of recording work.
    #[must_use]
    pub fn observability(mut self, obs: Arc<Observability>) -> Self {
        self.observability = Some(obs);
        self
    }

    /// Builds the runtime and spawns its worker threads.
    pub fn build(self) -> Runtime {
        let tracer = Arc::new(Tracer::new(self.tracing));
        let inner = Arc::new(Inner {
            store: DataStore::new(),
            registry: RwLock::new(Vec::new()),
            graph: TaskGraph::new(),
            queue: ReadyQueue::new(self.queue_mode, self.workers, Arc::clone(&tracer)),
            interceptor: self.interceptor,
            tracer,
            stats: RuntimeStats::with_workers(self.workers),
            outstanding: AtomicU64::new(0),
            done_lock: Mutex::new(()),
            all_done: Condvar::new(),
            workers: self.workers,
            obs: self.observability,
            max_live_tasks: self.max_live_tasks,
            affinity: self.affinity,
            aggregated_releases: self.aggregated_releases,
            pinned_workers: AtomicUsize::new(0),
        });
        let handles = (0..self.workers)
            .map(|worker| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("atm-worker-{worker}"))
                    .spawn(move || worker_loop(&inner, worker))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Runtime { inner, handles }
    }
}

struct Inner {
    store: DataStore,
    registry: RwLock<Vec<Arc<TaskTypeInfo>>>,
    graph: TaskGraph,
    queue: ReadyQueue,
    interceptor: Arc<dyn TaskInterceptor>,
    tracer: Arc<Tracer>,
    stats: RuntimeStats,
    /// Submitted-but-unfinished task count. Incremented by the master before
    /// a task enters the graph, decremented once per completion; the
    /// `done_lock`/`all_done` pair only comes into play when a taskwait is
    /// actually blocked.
    outstanding: AtomicU64,
    done_lock: Mutex<()>,
    all_done: Condvar,
    workers: usize,
    /// Observability handle, when one was attached to the builder.
    obs: Option<Arc<Observability>>,
    /// Admission window: cap on `outstanding` enforced at submission (see
    /// [`RuntimeBuilder::max_live_tasks`]). `None` admits unconditionally.
    max_live_tasks: Option<u64>,
    /// Worker CPU placement policy (see [`RuntimeBuilder::affinity`]).
    affinity: Affinity,
    /// Whether finish cycles flush releases as one packet (see
    /// [`RuntimeBuilder::aggregated_releases`]).
    aggregated_releases: bool,
    /// How many worker threads successfully pinned themselves at startup.
    pinned_workers: AtomicUsize,
}

impl Inner {
    /// The attached observability handle, but only when it records — the
    /// hot paths branch on this once and skip all recording otherwise.
    #[inline]
    fn obs_on(&self) -> Option<&Observability> {
        match &self.obs {
            Some(obs) if obs.is_enabled() => Some(obs),
            _ => None,
        }
    }

    /// Completes one finish cycle: the task the worker just executed plus
    /// every deferred task whose completion that execution produced.
    ///
    /// All successors released by the whole cycle accumulate in `packet`
    /// (the worker's reusable scratch) and — under aggregation — flush as
    /// **one** ready-queue push with one batched sleeper wakeup, followed by
    /// **one** `outstanding` decrement covering every completed task. With
    /// [`RuntimeBuilder::aggregated_releases`]`(false)` each task instead
    /// pushes its own successors and decrements individually, reproducing
    /// the pre-aggregation release path as a measurable baseline.
    ///
    /// Completion hooks run last, after the publish and the decrement, so a
    /// notify that signals "request done" observes a settled runtime.
    fn finish_cycle(
        &self,
        worker: usize,
        executed: &Arc<TaskNode>,
        completed_deferred: &[TaskId],
        packet: &mut Vec<TaskId>,
        deferred_nodes: &mut Vec<Arc<TaskNode>>,
    ) {
        packet.clear();
        deferred_nodes.clear();
        let cycle_start = self.obs_on().map(|_| self.tracer.now_ns());

        self.graph.finish_node_into(executed, packet);
        if !self.aggregated_releases {
            self.queue.push_from(worker, packet);
            packet.clear();
            self.decrement_outstanding(1);
        }
        for &id in completed_deferred {
            // Deferred tasks finish on their producer's worker; the worker
            // does not hold their node, so look it up (and read the
            // submission stamp) before retiring it.
            let node = self.graph.node(id);
            if let Some(obs) = self.obs_on() {
                let finished = self.tracer.now_ns();
                obs.record_latency(
                    LatencyMetric::TaskLatency,
                    worker,
                    finished.saturating_sub(node.desc().submitted_at_ns),
                );
            }
            self.graph.finish_node_into(&node, packet);
            if !self.aggregated_releases {
                self.queue.push_from(worker, packet);
                packet.clear();
                self.decrement_outstanding(1);
            }
            deferred_nodes.push(node);
        }
        if self.aggregated_releases {
            self.queue.push_from(worker, packet);
            self.decrement_outstanding(1 + completed_deferred.len() as u64);
        }

        if let Some(notify) = &executed.desc().notify {
            notify.task_finished(worker, executed.id());
        }
        for node in deferred_nodes.iter() {
            if let Some(notify) = &node.desc().notify {
                notify.task_finished(worker, node.id());
            }
        }
        if let Some(obs) = self.obs_on() {
            let start = cycle_start.unwrap_or(0);
            obs.record_latency(
                LatencyMetric::Release,
                worker,
                self.tracer.now_ns().saturating_sub(start),
            );
        }
    }

    fn decrement_outstanding(&self, finished: u64) {
        let prev = self.outstanding.fetch_sub(finished, Ordering::SeqCst);
        debug_assert!(
            prev >= finished,
            "finishing {finished} tasks with only {prev} outstanding"
        );
        if prev == finished {
            // Serialise with a blocked taskwait: the waiter re-checks the
            // counter under `done_lock` before sleeping, so taking the lock
            // here guarantees the notify cannot be lost.
            let _guard = self.done_lock.lock();
            self.all_done.notify_all();
        }
    }

    fn task_type(&self, id: TaskTypeId) -> Arc<TaskTypeInfo> {
        Arc::clone(&self.registry.read()[id.index()])
    }
}

fn worker_loop(inner: &Arc<Inner>, worker: usize) {
    let stats = inner.stats.shard(worker);
    // Pin before touching any work so the thread's cache working set builds
    // on its final core. A failed pin is benign: the worker runs unpinned.
    if let Some(cpu) = inner.affinity.cpu_for(worker) {
        if atm_affinity::pin_current_thread(cpu).is_ok() {
            inner.pinned_workers.fetch_add(1, Ordering::SeqCst);
        }
    }
    // Reusable release scratch: successors released by a finish cycle and
    // the nodes of producer-completed deferred tasks accumulate here, so
    // the steady-state finish path allocates nothing.
    let mut packet: Vec<TaskId> = Vec::new();
    let mut deferred_nodes: Vec<Arc<TaskNode>> = Vec::new();
    loop {
        let idle_start = inner.tracer.now_ns();
        let popped = inner.queue.pop(worker);
        let picked_up = inner.tracer.now_ns();
        inner
            .tracer
            .record(worker, ThreadState::Idle, idle_start, picked_up);
        let id = match popped {
            Popped::Task(id) => id,
            Popped::Closed => break,
        };

        // One graph access marks the task running and hands back its node;
        // the descriptor is borrowed from the node and the task type is a
        // shared Arc — nothing on this path clones per execution.
        let node = inner.graph.start_running(id);
        let desc = node.desc();
        let info = inner.task_type(desc.task_type);
        let view = TaskView {
            id,
            type_id: desc.task_type,
            info: &info,
            accesses: &desc.accesses,
            memo: desc.memo.as_ref(),
        };

        let decision = inner
            .interceptor
            .before_execute(view, &inner.store, &inner.tracer, worker);
        let executed = match decision {
            Decision::Execute => {
                let start = inner.tracer.now_ns();
                let ctx = TaskContext::new(&inner.store, &desc.accesses);
                (info.kernel)(&ctx);
                let end = inner.tracer.now_ns();
                inner
                    .tracer
                    .record(worker, ThreadState::TaskExecution, start, end);
                stats.add(&stats.kernel_ns, end - start);
                stats.incr(&stats.executed);
                if let Some(obs) = inner.obs_on() {
                    obs.record_latency(LatencyMetric::Kernel, worker, end - start);
                }
                true
            }
            Decision::Memoized => {
                stats.incr(&stats.bypassed);
                false
            }
            Decision::Deferred => {
                // The interceptor registered this task with an in-flight
                // producer; its completion will arrive through that
                // producer's `after_execute`. Do not finish it here.
                stats.incr(&stats.deferred);
                inner.graph.mark_deferred(id);
                continue;
            }
        };

        let completed_deferred =
            inner
                .interceptor
                .after_execute(view, &inner.store, &inner.tracer, worker, executed);
        if let Some(obs) = inner.obs_on() {
            let finished = inner.tracer.now_ns();
            obs.record_latency(
                LatencyMetric::TaskLatency,
                worker,
                finished.saturating_sub(desc.submitted_at_ns),
            );
            obs.record_span(TaskSpan {
                worker,
                task_id: id.raw(),
                task_type: desc.task_type.index() as u32,
                start_ns: picked_up,
                end_ns: finished,
            });
        }
        inner.finish_cycle(
            worker,
            &node,
            &completed_deferred,
            &mut packet,
            &mut deferred_nodes,
        );
    }
}

/// The task-based dataflow runtime.
///
/// Create one with [`RuntimeBuilder`], register regions through
/// [`Runtime::store`], register task types with
/// [`Runtime::register_task_type`], submit work with the fluent
/// [`Runtime::task`] builder and synchronise with [`Runtime::taskwait`].
/// Dropping the runtime (or calling [`Runtime::shutdown`]) stops the
/// workers.
pub struct Runtime {
    inner: Arc<Inner>,
    handles: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// The data store holding all registered regions.
    pub fn store(&self) -> &DataStore {
        &self.inner.store
    }

    /// The execution tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// How many workers successfully pinned themselves to a CPU under the
    /// configured [`Affinity`] policy. Zero under [`Affinity::None`] or on
    /// platforms without pinning support; a worker whose pin fails is not
    /// counted but keeps running unpinned. Workers pin during startup, so
    /// the count is settled once every worker has popped its first task —
    /// in practice, read it after a [`Runtime::taskwait`].
    pub fn pinned_workers(&self) -> usize {
        self.inner.pinned_workers.load(Ordering::SeqCst)
    }

    /// The Ready Queue discipline this runtime was built with.
    pub fn queue_mode(&self) -> QueueMode {
        self.inner.queue.mode()
    }

    /// Registers a task type and returns its id. The type info is stored
    /// once behind an [`Arc`]; workers share it instead of cloning it per
    /// execution.
    pub fn register_task_type(&self, info: TaskTypeInfo) -> TaskTypeId {
        let mut registry = self.inner.registry.write();
        let id = TaskTypeId(u32::try_from(registry.len()).expect("too many task types"));
        if let Some(obs) = self.inner.obs_on() {
            obs.note_type_name(id.index() as u32, &info.name);
        }
        registry.push(Arc::new(info));
        id
    }

    /// Starts a fluent, validating submission of one instance of
    /// `task_type`. Chain [`TaskBuilder::reads`], [`TaskBuilder::writes`],
    /// [`TaskBuilder::reads_writes`] (and optionally
    /// [`TaskBuilder::memo`]), then call [`TaskBuilder::submit`].
    pub fn task(&self, task_type: TaskTypeId) -> TaskBuilder<'_> {
        TaskBuilder::new(self, task_type)
    }

    /// Starts a fluent, validating **batch** submission. Stage tasks with
    /// [`BatchBuilder::task`] (each followed by its access declarations),
    /// then submit them all with [`BatchBuilder::submit_all`] — one
    /// validation pass, one dependence pass, and each internal lock taken
    /// once per batch instead of once per task. See [`Runtime::tasks`] for
    /// the single-task-type shorthand.
    pub fn batch(&self) -> BatchBuilder<'_> {
        BatchBuilder::new(self, None)
    }

    /// Starts a fluent batch submission of instances of one `task_type`:
    /// [`BatchBuilder::next`] opens each staged task without restating the
    /// type. Equivalent to [`Runtime::batch`] plus an explicit
    /// [`BatchBuilder::task`] per staged task.
    pub fn tasks(&self, task_type: TaskTypeId) -> BatchBuilder<'_> {
        BatchBuilder::new(self, Some(task_type))
    }

    /// Validates the store-independent parts of `desc`: the task type
    /// exists, the accesses match its signature, and the memo spec is
    /// consistent. The store check ([`check_store`]) is deliberately *not*
    /// here — it must run under the submission permit so a region cannot be
    /// deregistered between validation and graph insertion.
    fn validate_static(&self, desc: &TaskDesc) -> Result<(), SubmitError> {
        {
            let registry = self.inner.registry.read();
            let info =
                registry
                    .get(desc.task_type.index())
                    .ok_or(SubmitError::UnknownTaskType {
                        task_type: desc.task_type,
                    })?;
            if let Some(signature) = &info.signature {
                check_signature(signature, &desc.accesses)?;
            }
        }
        if let Some(spec) = &desc.memo {
            check_memo(spec, &desc.accesses)?;
        }
        Ok(())
    }

    /// Admits `count` tasks into the live window, or rejects with
    /// [`SubmitError::Overloaded`] when the window is full. On success the
    /// outstanding count has been raised by `count`; the caller must then
    /// actually submit (a failed submission after admission would leak
    /// window slots).
    fn admit(&self, count: u64) -> Result<(), SubmitError> {
        let Some(capacity) = self.inner.max_live_tasks else {
            self.inner.outstanding.fetch_add(count, Ordering::SeqCst);
            return Ok(());
        };
        let mut live = self.inner.outstanding.load(Ordering::SeqCst);
        loop {
            if live.saturating_add(count) > capacity {
                return Err(SubmitError::Overloaded { live, capacity });
            }
            match self.inner.outstanding.compare_exchange(
                live,
                live + count,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Ok(()),
                Err(current) => live = current,
            }
        }
    }

    /// Validates and submits one task instance. Dependences on previously
    /// submitted, unfinished tasks are derived from the declared accesses;
    /// the task starts executing as soon as they are satisfied. This is the
    /// lean single-task path; [`Runtime::try_submit_all`] amortises the
    /// internal locks over a whole wave.
    pub fn try_submit(&self, mut desc: TaskDesc) -> Result<TaskId, SubmitError> {
        let start = self.inner.tracer.now_ns();
        self.validate_static(&desc)?;
        // Take the submission permit before the store check: a region that
        // validates here cannot be deregistered until the permit drops, so
        // the task the graph records never names a retired region.
        let permit = self
            .inner
            .graph
            .lock_submission(desc.accesses.iter().map(|a| a.region));
        check_store(&self.inner.store, &desc.accesses)?;
        self.admit(1)?;
        desc.submitted_at_ns = start;

        let (id, ready) = self.inner.graph.submit_with(&permit, desc);
        drop(permit);
        if ready {
            self.inner.queue.push(id);
        }
        let end = self.inner.tracer.now_ns();
        // The master (submitting) thread owns the last stats shard and is
        // traced as worker index `workers`.
        let stats = self.inner.stats.shard(self.inner.workers);
        stats.incr(&stats.submitted);
        stats.add(&stats.creation_ns, end - start);
        self.inner
            .tracer
            .record(self.inner.workers, ThreadState::TaskCreation, start, end);
        if let Some(obs) = self.inner.obs_on() {
            obs.record_latency(LatencyMetric::Submit, self.inner.workers, end - start);
        }
        Ok(id)
    }

    /// Validates and submits a batch of task instances, in order; the
    /// amortised form of [`Runtime::try_submit`] in a loop.
    ///
    /// All descriptors are validated **before** anything is submitted (the
    /// task-type registry lock is taken once for the whole batch, each
    /// descriptor checked fully in staging order): on error, nothing was
    /// submitted and the first offending descriptor's [`SubmitError`] is
    /// returned. On success the batch enters the dependence graph in a
    /// single pass — ids are assigned in staging order, dependences between
    /// batch members included, exactly the graph the equivalent one-by-one
    /// submissions build — and every immediately-ready task is pushed to
    /// the Ready Queue in id order.
    pub fn try_submit_all(&self, descs: Vec<TaskDesc>) -> Result<Vec<TaskId>, SubmitError> {
        self.try_submit_all_inner(descs, false)
    }

    /// [`Runtime::try_submit_all`] with a caller-supplied promise that no
    /// two tasks **in the batch** conflict with each other (dependences on
    /// earlier, unfinished tasks outside the batch are still derived). The
    /// dependence pass then skips the per-member conflict bookkeeping —
    /// O(batch · prior-live) instead of quadratic in the batch — which is
    /// what makes wide independent waves (a serving tier's concurrent
    /// requests, a fork-join wave) cheap to open. The promise is verified in
    /// debug builds and trusted in release builds; a false promise produces
    /// missing intra-batch dependences.
    pub fn try_submit_all_independent(
        &self,
        descs: Vec<TaskDesc>,
    ) -> Result<Vec<TaskId>, SubmitError> {
        self.try_submit_all_inner(descs, true)
    }

    fn try_submit_all_inner(
        &self,
        mut descs: Vec<TaskDesc>,
        independent: bool,
    ) -> Result<Vec<TaskId>, SubmitError> {
        if descs.is_empty() {
            return Ok(Vec::new());
        }
        let start = self.inner.tracer.now_ns();
        {
            // One registry lock for the whole batch; each descriptor is
            // checked in staging order, so the first offending descriptor's
            // error is returned.
            let registry = self.inner.registry.read();
            for desc in &descs {
                let info =
                    registry
                        .get(desc.task_type.index())
                        .ok_or(SubmitError::UnknownTaskType {
                            task_type: desc.task_type,
                        })?;
                if let Some(signature) = &info.signature {
                    check_signature(signature, &desc.accesses)?;
                }
                if let Some(spec) = &desc.memo {
                    check_memo(spec, &desc.accesses)?;
                }
            }
        }
        // Permit over the union of the batch's regions, then the store
        // check inside the critical section (same reasoning as
        // `try_submit`: no region named here can retire before the batch is
        // in the graph).
        let permit = self.inner.graph.lock_submission(
            descs
                .iter()
                .flat_map(|desc| desc.accesses.iter().map(|a| a.region)),
        );
        for desc in &descs {
            check_store(&self.inner.store, &desc.accesses)?;
        }

        let count = descs.len() as u64;
        self.admit(count)?;
        for desc in &mut descs {
            desc.submitted_at_ns = start;
        }
        let submitted = self
            .inner
            .graph
            .submit_batch_with(&permit, descs, independent);
        drop(permit);
        let ready: Vec<TaskId> = submitted
            .iter()
            .filter(|(_, ready)| *ready)
            .map(|(id, _)| *id)
            .collect();
        self.inner.queue.push_all(&ready);
        let end = self.inner.tracer.now_ns();
        // The master (submitting) thread owns the last stats shard and is
        // traced as worker index `workers`.
        let stats = self.inner.stats.shard(self.inner.workers);
        stats.add(&stats.submitted, count);
        stats.add(&stats.creation_ns, end - start);
        self.inner
            .tracer
            .record(self.inner.workers, ThreadState::TaskCreation, start, end);
        if let Some(obs) = self.inner.obs_on() {
            obs.record_latency(LatencyMetric::Submit, self.inner.workers, end - start);
        }
        Ok(submitted.into_iter().map(|(id, _)| id).collect())
    }

    /// Blocks until every submitted task has finished (the `#pragma omp taskwait`
    /// of the programming model). When everything already finished this is a
    /// single atomic load — no lock.
    pub fn taskwait(&self) {
        if self.inner.outstanding.load(Ordering::SeqCst) == 0 {
            return;
        }
        let start = self.inner.tracer.now_ns();
        let mut guard = self.inner.done_lock.lock();
        while self.inner.outstanding.load(Ordering::SeqCst) > 0 {
            self.inner.all_done.wait(&mut guard);
        }
        drop(guard);
        self.inner.tracer.record(
            self.inner.workers,
            ThreadState::Idle,
            start,
            self.inner.tracer.now_ns(),
        );
    }

    /// Snapshot of the runtime counters, including the graph-node gauges
    /// ([`RuntimeStatsSnapshot::live_nodes`] /
    /// [`RuntimeStatsSnapshot::retired_nodes`]) that make the retirement
    /// scheme's bounded memory observable.
    pub fn stats(&self) -> RuntimeStatsSnapshot {
        let mut snapshot = self.inner.stats.snapshot();
        snapshot.live_nodes = self.inner.graph.live_nodes();
        snapshot.retired_nodes = self.inner.graph.retired_count();
        snapshot.live_index_regions = self.inner.graph.live_index_regions() as u64;
        snapshot
    }

    /// Deregisters a region: frees its data and drops it from the
    /// dependence index. Returns the number of data bytes released.
    ///
    /// Rejected with [`DeregisterError::LiveAccessors`] while any submitted,
    /// unfinished task accesses the region — drain first (a serving tier
    /// calls this after the session's last request completes). The check and
    /// the removal run under the region's submission-lock shard, so a
    /// concurrent submitter either lands before the check (and blocks the
    /// deregistration) or observes the region as retired
    /// ([`SubmitError::RegionRetired`]); there is no window where a task
    /// enters the graph naming a freed region. Deregistered ids are never
    /// reused.
    pub fn deregister_region(&self, id: impl Into<RegionId>) -> Result<usize, DeregisterError> {
        let id = id.into();
        let _permit = self.inner.graph.lock_submission([id]);
        if self.inner.graph.region_has_live_accessors(id) {
            return Err(DeregisterError::LiveAccessors(id));
        }
        self.inner.store.deregister(id)
    }

    /// One unified observability snapshot: the runtime counters, the
    /// interceptor's engine/store counters (when it reports them), and the
    /// latency histograms and memo-decision stream of the attached
    /// [`Observability`] handle (empty when none is attached). This replaces
    /// querying runtime stats, engine stats and store counters separately.
    pub fn observe(&self) -> Observation {
        let (engine, store) = match self.inner.interceptor.observe() {
            Some((engine, store)) => (Some(engine), Some(store)),
            None => (None, None),
        };
        let (latency, decisions) = match &self.inner.obs {
            Some(obs) => (obs.metrics(), obs.decisions()),
            None => (MetricsSnapshot::empty(), DecisionSnapshot::default()),
        };
        Observation {
            runtime: self.stats(),
            engine,
            store,
            latency,
            decisions,
        }
    }

    /// The observability handle attached at build time, if any.
    pub fn observability(&self) -> Option<&Arc<Observability>> {
        self.inner.obs.as_ref()
    }

    /// Current depth of the ready queue (diagnostic).
    pub fn ready_depth(&self) -> usize {
        self.inner.queue.depth()
    }

    /// Waits for all outstanding tasks and stops the worker threads.
    pub fn shutdown(mut self) {
        self.taskwait();
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        self.inner.queue.close();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The unified observability snapshot returned by [`Runtime::observe`]:
/// every layer's counters in one place, plus the latency histograms and the
/// memo-decision stream.
#[derive(Debug)]
pub struct Observation {
    /// Runtime counters (submission, execution, kernel time, graph gauges).
    pub runtime: RuntimeStatsSnapshot,
    /// Aggregate memoization-engine counters, when the installed
    /// interceptor reports them (see [`TaskInterceptor::observe`]).
    pub engine: Option<EngineObservation>,
    /// Memo-store counters, when the installed interceptor reports them.
    pub store: Option<StoreObservation>,
    /// Latency histograms (task end-to-end, kernel, submit path, memo
    /// lookup, store insert/evict). Empty without an attached handle.
    pub latency: MetricsSnapshot,
    /// The memo-decision audit stream. Empty without an attached handle.
    pub decisions: DecisionSnapshot,
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Do not taskwait here: if the user code panicked mid-submission we
        // only want to stop the workers, not hang.
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, AccessMode};
    use crate::region::{ElemType, Region};
    use crate::task::TaskTypeBuilder;
    use atm_sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_task_executes_and_writes_output() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let out = rt.store().register_zeros::<f32>("out", 4).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("fill", |ctx| {
                ctx.out(0, &[1.0f32, 2.0, 3.0, 4.0]);
            })
            .out::<f32>()
            .build(),
        );
        rt.task(tt).writes(&out).submit().unwrap();
        rt.taskwait();
        assert_eq!(rt.store().read(out).lock().as_f32(), &[1.0, 2.0, 3.0, 4.0]);
        let stats = rt.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.executed, 1);
        rt.shutdown();
    }

    #[test]
    fn dependent_tasks_run_in_dataflow_order() {
        let rt = RuntimeBuilder::new().workers(4).build();
        let a = rt.store().register_zeros::<f64>("a", 1).unwrap();
        let b = rt.store().register_zeros::<f64>("b", 1).unwrap();
        let produce = rt.register_task_type(
            TaskTypeBuilder::new("produce", |ctx| ctx.out(0, &[21.0f64]))
                .out::<f64>()
                .build(),
        );
        let double = rt.register_task_type(
            TaskTypeBuilder::new("double", |ctx| {
                let x = ctx.arg::<f64>(0)[0];
                ctx.out(1, &[x * 2.0]);
            })
            .arg::<f64>()
            .out::<f64>()
            .build(),
        );
        rt.task(produce).writes(&a).submit().unwrap();
        rt.task(double).reads(&a).writes(&b).submit().unwrap();
        rt.taskwait();
        assert_eq!(rt.store().read(b).lock().as_f64(), &[42.0]);
        rt.shutdown();
    }

    #[test]
    fn chain_of_inout_tasks_is_serialised() {
        let rt = RuntimeBuilder::new().workers(4).build();
        let counter = rt.store().register_zeros::<i32>("counter", 1).unwrap();
        let incr = rt.register_task_type(
            TaskTypeBuilder::new("incr", |ctx| {
                let v = ctx.arg::<i32>(0)[0];
                ctx.out(0, &[v + 1]);
            })
            .inout::<i32>()
            .build(),
        );
        for _ in 0..100 {
            rt.task(incr).reads_writes(&counter).submit().unwrap();
        }
        rt.taskwait();
        assert_eq!(rt.store().read(counter).lock().as_i32(), &[100]);
        rt.shutdown();
    }

    #[test]
    fn independent_tasks_can_run_on_many_workers() {
        let rt = RuntimeBuilder::new().workers(4).build();
        let regions: Vec<Region<f32>> = (0..64)
            .map(|i| rt.store().register_zeros(format!("r{i}"), 1).unwrap())
            .collect();
        let executions = Arc::new(AtomicUsize::new(0));
        let executions_in_kernel = Arc::clone(&executions);
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("mark", move |ctx| {
                executions_in_kernel.fetch_add(1, Ordering::Relaxed);
                ctx.out(0, &[1.0f32]);
            })
            .out::<f32>()
            .build(),
        );
        for r in &regions {
            rt.task(tt).writes(r).submit().unwrap();
        }
        rt.taskwait();
        assert_eq!(executions.load(Ordering::Relaxed), 64);
        for r in &regions {
            assert_eq!(rt.store().read(*r).lock().as_f32(), &[1.0]);
        }
        rt.shutdown();
    }

    #[test]
    fn taskwait_can_be_called_repeatedly_between_submission_waves() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let acc = rt.store().register_zeros::<f64>("acc", 1).unwrap();
        let add_one = rt.register_task_type(
            TaskTypeBuilder::new("add", |ctx| {
                let v = ctx.arg::<f64>(0)[0];
                ctx.out(0, &[v + 1.0]);
            })
            .inout::<f64>()
            .build(),
        );
        for _wave in 0..5 {
            for _ in 0..10 {
                rt.task(add_one).reads_writes(&acc).submit().unwrap();
            }
            rt.taskwait();
        }
        assert_eq!(rt.store().read(acc).lock().as_f64(), &[50.0]);
        rt.shutdown();
    }

    /// The unaggregated release path (one push and one decrement per task)
    /// is kept as the measurable baseline for the aggregation benchmarks —
    /// it must stay correct, including under fan-out (one writer releasing
    /// many readers at once) and deferred completions' multi-task cycles.
    #[test]
    fn unaggregated_release_mode_computes_the_same_results() {
        let rt = RuntimeBuilder::new()
            .workers(4)
            .aggregated_releases(false)
            .build();
        let src = rt.store().register_zeros::<f64>("src", 1).unwrap();
        let outs: Vec<Region<f64>> = (0..16)
            .map(|i| rt.store().register_zeros(format!("o{i}"), 1).unwrap())
            .collect();
        let produce = rt.register_task_type(
            TaskTypeBuilder::new("produce", |ctx| ctx.out(0, &[21.0f64]))
                .out::<f64>()
                .build(),
        );
        let double = rt.register_task_type(
            TaskTypeBuilder::new("double", |ctx| {
                let x = ctx.arg::<f64>(0)[0];
                ctx.out(1, &[x * 2.0]);
            })
            .arg::<f64>()
            .out::<f64>()
            .build(),
        );
        for _wave in 0..8 {
            rt.task(produce).writes(&src).submit().unwrap();
            for out in &outs {
                rt.task(double).reads(&src).writes(out).submit().unwrap();
            }
        }
        rt.taskwait();
        for out in &outs {
            assert_eq!(rt.store().read(*out).lock().as_f64(), &[42.0]);
        }
        assert_eq!(rt.stats().executed, 8 * 17);
        rt.shutdown();
    }

    /// Round-robin affinity pins workers on supported platforms and
    /// degrades to a no-op (not an error) everywhere else; either way the
    /// runtime computes the same results.
    #[test]
    fn affinity_pins_workers_where_the_platform_allows() {
        // Probe from a scratch thread so the test thread stays unpinned:
        // CPU 0 may be outside this process's cpuset even on Linux.
        let cpu0_pinnable = std::thread::spawn(|| atm_affinity::pin_current_thread(0).is_ok())
            .join()
            .unwrap();
        let rt = RuntimeBuilder::new()
            .workers(2)
            .affinity(Affinity::RoundRobin)
            .build();
        let acc = rt.store().register_zeros::<f64>("acc", 1).unwrap();
        let add_one = rt.register_task_type(
            TaskTypeBuilder::new("add", |ctx| {
                let v = ctx.arg::<f64>(0)[0];
                ctx.out(0, &[v + 1.0]);
            })
            .inout::<f64>()
            .build(),
        );
        for _ in 0..32 {
            rt.task(add_one).reads_writes(&acc).submit().unwrap();
        }
        rt.taskwait();
        assert_eq!(rt.store().read(acc).lock().as_f64(), &[32.0]);
        let pinned = rt.pinned_workers();
        assert!(pinned <= 2, "at most one pin per worker, got {pinned}");
        if cpu0_pinnable {
            // Worker 0 pins CPU 0 under round-robin, which the probe just
            // proved pinnable from this process.
            assert!(pinned >= 1, "CPU 0 is pinnable but no worker pinned");
        }
        rt.shutdown();
    }

    /// `Affinity::None` (the default) and an empty explicit CPU list must
    /// not pin anything.
    #[test]
    fn default_affinity_pins_nothing() {
        for affinity in [Affinity::None, Affinity::Explicit(vec![])] {
            let rt = RuntimeBuilder::new().workers(2).affinity(affinity).build();
            let r = rt.store().register_zeros::<f32>("r", 1).unwrap();
            let tt = rt.register_task_type(
                TaskTypeBuilder::new("fill", |ctx| ctx.out(0, &[1.0f32]))
                    .out::<f32>()
                    .build(),
            );
            rt.task(tt).writes(&r).submit().unwrap();
            rt.taskwait();
            assert_eq!(rt.pinned_workers(), 0);
            rt.shutdown();
        }
    }

    #[test]
    fn stats_and_tracer_capture_execution() {
        let rt = RuntimeBuilder::new().workers(1).tracing(true).build();
        let r = rt.store().register_zeros::<f32>("r", 128).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("work", |ctx| {
                let v: Vec<f32> = (0..128).map(|i| (i as f32).sin()).collect();
                ctx.out(0, &v);
            })
            .inout::<f32>()
            .build(),
        );
        for _ in 0..10 {
            rt.task(tt).reads_writes(&r).submit().unwrap();
        }
        rt.taskwait();
        let stats = rt.stats();
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.executed, 10);
        assert!(stats.kernel_ns > 0);
        let summary = rt.tracer().summary();
        assert!(summary.state_ns(ThreadState::TaskExecution) > 0);
        assert!(summary.state_ns(ThreadState::TaskCreation) > 0);
        assert!(!rt.tracer().ready_samples().is_empty());
        rt.shutdown();
    }

    #[test]
    fn submitting_unregistered_task_type_is_rejected() {
        let rt = RuntimeBuilder::new().workers(1).build();
        let r = rt.store().register_zeros::<f32>("r", 1).unwrap();
        let err = rt.task(TaskTypeId(5)).writes(&r).submit().unwrap_err();
        assert_eq!(
            err,
            SubmitError::UnknownTaskType {
                task_type: TaskTypeId(5)
            }
        );
    }

    #[test]
    fn submission_validates_against_the_signature() {
        let rt = RuntimeBuilder::new().workers(1).build();
        let input = rt.store().register_zeros::<f64>("in", 2).unwrap();
        let out = rt.store().register_zeros::<f64>("out", 2).unwrap();
        let floats = rt.store().register_zeros::<f32>("floats", 2).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("copy", |ctx| {
                let v = ctx.arg::<f64>(0);
                ctx.out(1, &v);
            })
            .arg::<f64>()
            .out::<f64>()
            .build(),
        );

        // Wrong arity.
        assert_eq!(
            rt.task(tt).reads(&input).submit().unwrap_err(),
            SubmitError::ArityMismatch {
                min: 2,
                max: Some(2),
                got: 1
            }
        );
        // Wrong mode at position 1.
        assert_eq!(
            rt.task(tt).reads(&input).reads(&out).submit().unwrap_err(),
            SubmitError::ModeMismatch {
                index: 1,
                expected: AccessMode::Out,
                got: AccessMode::In
            }
        );
        // Wrong element type at position 1.
        assert_eq!(
            rt.task(tt)
                .reads(&input)
                .writes(&floats)
                .submit()
                .unwrap_err(),
            SubmitError::TypeMismatch {
                index: 1,
                expected: ElemType::F64,
                got: ElemType::F32
            }
        );
        // A correct submission still goes through.
        rt.task(tt).reads(&input).writes(&out).submit().unwrap();
        rt.taskwait();
        assert_eq!(
            rt.stats().submitted,
            1,
            "rejected submissions must not be counted"
        );
        rt.shutdown();
    }

    #[test]
    fn submission_rejects_regions_from_another_store() {
        let rt = RuntimeBuilder::new().workers(1).build();
        let other = RuntimeBuilder::new().workers(1).build();
        let foreign = other.store().register_zeros::<f32>("foreign", 1).unwrap();
        let tt = rt.register_task_type(TaskTypeBuilder::new("t", |_| {}).build());
        let err = rt.task(tt).writes(&foreign).submit().unwrap_err();
        assert_eq!(
            err,
            SubmitError::UnknownRegion {
                index: 0,
                region: foreign.id()
            }
        );
        rt.shutdown();
        other.shutdown();
    }

    #[test]
    fn ranged_accesses_submit_through_the_escape_hatch() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let r = rt.store().register_zeros::<f32>("r", 8).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("fill_half", |ctx| {
                let len = ctx.elem_range(0).len();
                ctx.out(0, &vec![1.0f32; len]);
            })
            .build(),
        );
        rt.task(tt)
            .access(Access::write(&r).with_range(0..16))
            .submit()
            .unwrap();
        rt.taskwait();
        assert_eq!(
            rt.store().read(r).lock().as_f32(),
            &[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0]
        );
        rt.shutdown();
    }

    #[test]
    fn submission_validates_a_per_instance_memo_spec() {
        use crate::memo::{MemoSpec, MemoSpecError};
        let rt = RuntimeBuilder::new().workers(1).build();
        let input = rt.store().register_zeros::<f64>("in", 2).unwrap();
        let out = rt.store().register_zeros::<f64>("out", 2).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("copy", |ctx| {
                let v = ctx.arg::<f64>(0);
                ctx.out(1, &v);
            })
            .arg::<f64>()
            .out::<f64>()
            .build(),
        );
        // Override on the write-only access: rejected at submission.
        let err = rt
            .task(tt)
            .reads(&input)
            .writes(&out)
            .memo(MemoSpec::approximate().arg_exact(1))
            .submit()
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::InvalidMemoSpec {
                error: MemoSpecError::ArgNotRead { index: 1 }
            }
        );
        // A valid instance spec goes through.
        rt.task(tt)
            .reads(&input)
            .writes(&out)
            .memo(MemoSpec::exact())
            .submit()
            .unwrap();
        rt.taskwait();
        rt.shutdown();
    }

    #[test]
    fn drop_without_shutdown_does_not_hang() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let r = rt.store().register_zeros::<f32>("r", 1).unwrap();
        let tt = rt.register_task_type(TaskTypeBuilder::new("t", |_| {}).build());
        rt.task(tt).writes(&r).submit().unwrap();
        rt.taskwait();
        drop(rt);
    }

    #[test]
    fn stealing_is_the_default_queue_mode_and_fifo_is_selectable() {
        use crate::ready_queue::QueueMode;
        let rt = RuntimeBuilder::new().build();
        assert_eq!(rt.queue_mode(), QueueMode::Stealing);
        rt.shutdown();
        let rt = RuntimeBuilder::new().queue_mode(QueueMode::Fifo).build();
        assert_eq!(rt.queue_mode(), QueueMode::Fifo);
        rt.shutdown();
    }

    #[test]
    fn both_queue_modes_run_the_same_dataflow_to_the_same_result() {
        use crate::ready_queue::QueueMode;
        for mode in [QueueMode::Fifo, QueueMode::Stealing] {
            for workers in [1usize, 4] {
                let rt = RuntimeBuilder::new()
                    .workers(workers)
                    .queue_mode(mode)
                    .build();
                let acc = rt.store().register_zeros::<f64>("acc", 1).unwrap();
                let add_one = rt.register_task_type(
                    TaskTypeBuilder::new("add", |ctx| {
                        let v = ctx.arg::<f64>(0)[0];
                        ctx.out(0, &[v + 1.0]);
                    })
                    .inout::<f64>()
                    .build(),
                );
                for _ in 0..50 {
                    rt.task(add_one).reads_writes(&acc).submit().unwrap();
                }
                rt.taskwait();
                assert_eq!(
                    rt.store().read(acc).lock().as_f64(),
                    &[50.0],
                    "{mode:?} with {workers} workers"
                );
                let stats = rt.stats();
                assert_eq!(stats.submitted, 50);
                assert_eq!(stats.executed, 50);
                assert_eq!(rt.ready_depth(), 0, "taskwait must leave the queue empty");
                rt.shutdown();
            }
        }
    }

    /// `Runtime` is `Sync`: two threads submitting into one runtime must
    /// not corrupt the node slab (submissions are serialised internally).
    #[test]
    fn concurrent_submitters_do_not_corrupt_the_graph() {
        let rt = Arc::new(RuntimeBuilder::new().workers(2).build());
        let counters: Vec<_> = (0..2)
            .map(|i| {
                rt.store()
                    .register_zeros::<i32>(format!("c{i}"), 1)
                    .unwrap()
            })
            .collect();
        let incr = rt.register_task_type(
            TaskTypeBuilder::new("incr", |ctx| {
                let v = ctx.arg::<i32>(0)[0];
                ctx.out(0, &[v + 1]);
            })
            .inout::<i32>()
            .build(),
        );
        let submitters: Vec<_> = counters
            .iter()
            .map(|counter| {
                let rt = Arc::clone(&rt);
                let counter = *counter;
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        rt.task(incr).reads_writes(&counter).submit().unwrap();
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        rt.taskwait();
        for counter in &counters {
            assert_eq!(rt.store().read(*counter).lock().as_i32(), &[200]);
        }
        let stats = rt.stats();
        assert_eq!(stats.executed, 400);
        assert_eq!(
            stats.submitted, 400,
            "concurrent submitters share the master stats shard; no count may be lost"
        );
        Arc::try_unwrap(rt).ok().unwrap().shutdown();
    }

    #[test]
    fn batch_submission_runs_the_same_dataflow_as_singletons() {
        for mode in [QueueMode::Fifo, QueueMode::Stealing] {
            let rt = RuntimeBuilder::new().workers(2).queue_mode(mode).build();
            let acc = rt.store().register_zeros::<f64>("acc", 1).unwrap();
            let add_one = rt.register_task_type(
                TaskTypeBuilder::new("add", |ctx| {
                    let v = ctx.arg::<f64>(0)[0];
                    ctx.out(0, &[v + 1.0]);
                })
                .inout::<f64>()
                .build(),
            );
            let mut batch = rt.tasks(add_one);
            for _ in 0..40 {
                batch = batch.next().reads_writes(&acc);
            }
            let ids = batch.submit_all().unwrap();
            assert_eq!(ids.len(), 40);
            let distinct: std::collections::BTreeSet<_> = ids.iter().map(|id| id.raw()).collect();
            assert_eq!(distinct.len(), 40, "batch ids must be distinct");
            rt.taskwait();
            assert_eq!(rt.store().read(acc).lock().as_f64(), &[40.0], "{mode:?}");
            let stats = rt.stats();
            assert_eq!(stats.submitted, 40);
            assert_eq!(stats.executed, 40);
            rt.shutdown();
        }
    }

    #[test]
    fn batch_mixes_task_types_and_preserves_staging_order() {
        let rt = RuntimeBuilder::new().workers(1).build();
        let a = rt.store().register_zeros::<f64>("a", 1).unwrap();
        let b = rt.store().register_zeros::<f64>("b", 1).unwrap();
        let produce = rt.register_task_type(
            TaskTypeBuilder::new("produce", |ctx| ctx.out(0, &[21.0f64]))
                .out::<f64>()
                .build(),
        );
        let double = rt.register_task_type(
            TaskTypeBuilder::new("double", |ctx| {
                let x = ctx.arg::<f64>(0)[0];
                ctx.out(1, &[x * 2.0]);
            })
            .arg::<f64>()
            .out::<f64>()
            .build(),
        );
        let ids = rt
            .batch()
            .task(produce)
            .writes(&a)
            .task(double)
            .reads(&a)
            .writes(&b)
            .submit_all()
            .unwrap();
        assert_eq!(ids.len(), 2);
        rt.taskwait();
        assert_eq!(rt.store().read(b).lock().as_f64(), &[42.0]);
        rt.shutdown();
    }

    #[test]
    fn batch_validation_rejects_everything_atomically() {
        let rt = RuntimeBuilder::new().workers(1).build();
        let r = rt.store().register_zeros::<f64>("r", 1).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("copy", |ctx| {
                let v = ctx.arg::<f64>(0);
                ctx.out(1, &v);
            })
            .arg::<f64>()
            .out::<f64>()
            .build(),
        );
        // Second staged task has the wrong arity: the whole batch must be
        // rejected with nothing submitted.
        let err = rt
            .batch()
            .task(tt)
            .reads(&r)
            .writes(&r)
            .task(tt)
            .reads(&r)
            .submit_all()
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::ArityMismatch {
                min: 2,
                max: Some(2),
                got: 1
            }
        );
        rt.taskwait();
        assert_eq!(rt.stats().submitted, 0, "a rejected batch submits nothing");
        rt.shutdown();
    }

    #[test]
    fn empty_batch_submits_nothing() {
        let rt = RuntimeBuilder::new().workers(1).build();
        let batch = rt.batch();
        assert!(batch.is_empty());
        assert_eq!(batch.submit_all().unwrap(), Vec::new());
        assert_eq!(rt.stats().submitted, 0);
        rt.shutdown();
    }

    #[test]
    fn stats_expose_bounded_live_nodes_across_waves() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let cell = rt.store().register_zeros::<f64>("cell", 1).unwrap();
        let incr = rt.register_task_type(
            TaskTypeBuilder::new("incr", |ctx| {
                let v = ctx.arg::<f64>(0)[0];
                ctx.out(0, &[v + 1.0]);
            })
            .inout::<f64>()
            .build(),
        );
        for wave in 1..=5u64 {
            let mut batch = rt.tasks(incr);
            for _ in 0..20 {
                batch = batch.next().reads_writes(&cell);
            }
            batch.submit_all().unwrap();
            rt.taskwait();
            let stats = rt.stats();
            assert_eq!(
                stats.live_nodes, 0,
                "after a taskwait every finished chain retires"
            );
            assert_eq!(stats.retired_nodes, wave * 20);
        }
        assert_eq!(rt.store().read(cell).lock().as_f64(), &[100.0]);
        rt.shutdown();
    }

    #[test]
    fn observe_unifies_stats_latency_spans_and_type_names() {
        let obs = Arc::new(Observability::enabled());
        let rt = RuntimeBuilder::new()
            .workers(2)
            .observability(Arc::clone(&obs))
            .build();
        let cell = rt.store().register_zeros::<f64>("cell", 1).unwrap();
        let incr = rt.register_task_type(
            TaskTypeBuilder::new("incr", |ctx| {
                let v = ctx.arg::<f64>(0)[0];
                ctx.out(0, &[v + 1.0]);
            })
            .inout::<f64>()
            .build(),
        );
        for _ in 0..4 {
            rt.task(incr).reads_writes(&cell).submit().unwrap();
        }
        let mut batch = rt.tasks(incr);
        for _ in 0..6 {
            batch = batch.next().reads_writes(&cell);
        }
        batch.submit_all().unwrap();
        rt.taskwait();

        let o = rt.observe();
        assert_eq!(o.runtime.submitted, 10);
        assert_eq!(o.runtime.executed, 10);
        assert!(o.engine.is_none(), "no interceptor → no engine counters");
        assert!(o.store.is_none());
        let task_latency = o.latency.get(LatencyMetric::TaskLatency);
        assert_eq!(task_latency.count, 10);
        assert!(task_latency.p50() <= task_latency.p99());
        assert_eq!(o.latency.get(LatencyMetric::Kernel).count, 10);
        // 4 singleton submissions + 1 batch = 5 submit-path samples.
        assert_eq!(o.latency.get(LatencyMetric::Submit).count, 5);
        assert_eq!(o.decisions.total(), 0, "no memoization → no decisions");

        let spans = obs.spans();
        assert_eq!(spans.len(), 10);
        assert!(spans.iter().all(|s| s.end_ns >= s.start_ns));
        assert_eq!(obs.type_name(0).as_deref(), Some("incr"));
        rt.shutdown();
    }

    #[test]
    fn observe_without_a_handle_reports_empty_histograms() {
        let rt = RuntimeBuilder::new().workers(1).build();
        let r = rt.store().register_zeros::<f32>("r", 1).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("t", |ctx| ctx.out(0, &[1.0f32]))
                .out::<f32>()
                .build(),
        );
        rt.task(tt).writes(&r).submit().unwrap();
        rt.taskwait();
        let o = rt.observe();
        assert_eq!(o.runtime.submitted, 1);
        assert_eq!(o.latency.get(LatencyMetric::TaskLatency).count, 0);
        assert_eq!(o.decisions.total(), 0);
        assert!(rt.observability().is_none());
        rt.shutdown();
    }

    #[test]
    fn disabled_observability_handle_records_nothing() {
        let obs = Arc::new(Observability::disabled());
        let rt = RuntimeBuilder::new()
            .workers(1)
            .observability(Arc::clone(&obs))
            .build();
        let r = rt.store().register_zeros::<f32>("r", 1).unwrap();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("t", |ctx| ctx.out(0, &[1.0f32]))
                .out::<f32>()
                .build(),
        );
        rt.task(tt).writes(&r).submit().unwrap();
        rt.taskwait();
        assert_eq!(
            rt.observe().latency.get(LatencyMetric::TaskLatency).count,
            0
        );
        assert!(obs.spans().is_empty());
        rt.shutdown();
    }

    #[test]
    fn taskwait_with_no_outstanding_work_is_a_fast_path() {
        let rt = RuntimeBuilder::new().workers(2).build();
        // No submissions: taskwait returns immediately, repeatedly.
        rt.taskwait();
        rt.taskwait();
        rt.shutdown();
    }

    #[test]
    fn full_live_window_rejects_with_overloaded_instead_of_queueing() {
        use crate::submit::SubmitError;
        // One worker, and a first task that blocks until released, so the
        // window fills deterministically.
        let gate = Arc::new(atm_sync::Event::new());
        let gate_in_kernel = Arc::clone(&gate);
        let rt = RuntimeBuilder::new().workers(1).max_live_tasks(3).build();
        let regions: Vec<Region<f32>> = (0..8)
            .map(|i| rt.store().register_zeros(format!("r{i}"), 1).unwrap())
            .collect();
        let blocker = rt.register_task_type(
            TaskTypeBuilder::new("blocker", move |ctx| {
                gate_in_kernel.wait();
                ctx.out(0, &[1.0f32]);
            })
            .out::<f32>()
            .build(),
        );
        let quick = rt.register_task_type(
            TaskTypeBuilder::new("quick", |ctx| ctx.out(0, &[1.0f32]))
                .out::<f32>()
                .build(),
        );
        rt.task(blocker).writes(&regions[0]).submit().unwrap();
        rt.task(quick).writes(&regions[1]).submit().unwrap();
        rt.task(quick).writes(&regions[2]).submit().unwrap();
        // The window (3) is now full: the runtime refuses to queue further
        // work rather than buffering it unboundedly.
        let err = rt.task(quick).writes(&regions[3]).submit().unwrap_err();
        match err {
            SubmitError::Overloaded { live, capacity } => {
                assert_eq!(live, 3);
                assert_eq!(capacity, 3);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Batches are admitted all-or-nothing against the same window.
        let batch_err = rt
            .tasks(quick)
            .next()
            .writes(&regions[4])
            .next()
            .writes(&regions[5])
            .submit_all()
            .unwrap_err();
        assert!(matches!(batch_err, SubmitError::Overloaded { .. }));
        // Draining the window restores admission.
        gate.signal();
        rt.taskwait();
        rt.task(quick).writes(&regions[3]).submit().unwrap();
        rt.taskwait();
        assert_eq!(rt.stats().submitted, 4);
        rt.shutdown();
    }

    #[test]
    fn deregistration_is_rejected_while_accessors_are_live_then_frees_bytes() {
        use crate::region::{DeregisterError, RegionStatus};
        use crate::submit::SubmitError;
        let gate = Arc::new(atm_sync::Event::new());
        let gate_in_kernel = Arc::clone(&gate);
        let rt = RuntimeBuilder::new().workers(1).build();
        let r = rt.store().register_zeros::<f64>("victim", 128).unwrap();
        let hold = rt.register_task_type(
            TaskTypeBuilder::new("hold", move |ctx| {
                gate_in_kernel.wait();
                let v = ctx.arg::<f64>(0)[0];
                ctx.out(0, &vec![v + 1.0; 128]);
            })
            .inout::<f64>()
            .build(),
        );
        rt.task(hold).reads_writes(&r).submit().unwrap();
        assert_eq!(
            rt.deregister_region(r).unwrap_err(),
            DeregisterError::LiveAccessors(r.id())
        );
        gate.signal();
        rt.taskwait();
        let bytes_before = rt.store().total_bytes();
        let freed = rt.deregister_region(r).unwrap();
        assert_eq!(freed, 128 * std::mem::size_of::<f64>());
        assert_eq!(rt.store().total_bytes(), bytes_before - freed);
        assert_eq!(rt.store().region_status(r), RegionStatus::Retired);
        // Submission against the retired id reports the dedicated error,
        // not a generic unknown-region one.
        let err = rt.task(hold).reads_writes(&r).submit().unwrap_err();
        match err {
            SubmitError::RegionRetired { index, region } => {
                assert_eq!(index, 0);
                assert_eq!(region, r.id());
            }
            other => panic!("expected RegionRetired, got {other:?}"),
        }
        assert_eq!(
            rt.deregister_region(r),
            Err(DeregisterError::AlreadyRetired(r.id()))
        );
        rt.shutdown();
    }

    #[test]
    fn live_index_regions_gauge_shrinks_after_deregistration() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let touch = rt.register_task_type(
            TaskTypeBuilder::new("touch", |ctx| ctx.out(0, &[1.0f32]))
                .out::<f32>()
                .build(),
        );
        for round in 0..4 {
            let r = rt
                .store()
                .register_zeros::<f32>(format!("round{round}"), 1)
                .unwrap();
            rt.task(touch).writes(&r).submit().unwrap();
            rt.taskwait();
            rt.deregister_region(r).unwrap();
            // The dependence index forgets the region along with the store:
            // churning sessions does not grow the index.
            assert!(
                rt.stats().live_index_regions <= 1,
                "index retained {} regions after churn round {round}",
                rt.stats().live_index_regions
            );
        }
        rt.shutdown();
    }

    /// Notify hook for the tests below: counts invocations per task.
    struct CountingNotify {
        fired: AtomicUsize,
    }

    impl CountingNotify {
        /// The hook fires *after* the completing task left the outstanding
        /// count, so `taskwait` returning does not yet order-before the last
        /// notify — wait for the count itself (bounded).
        fn wait_for(&self, expected: usize) -> usize {
            for _ in 0..10_000 {
                let fired = self.fired.load(Ordering::SeqCst);
                if fired >= expected {
                    return fired;
                }
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            self.fired.load(Ordering::SeqCst)
        }
    }

    impl crate::task::TaskNotify for CountingNotify {
        fn task_finished(&self, _worker: usize, _task: TaskId) {
            self.fired.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn notify_fires_exactly_once_per_task_on_the_executed_path() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let r = rt.store().register_zeros::<f64>("r", 1).unwrap();
        let incr = rt.register_task_type(
            TaskTypeBuilder::new("incr", |ctx| {
                let v = ctx.arg::<f64>(0)[0];
                ctx.out(0, &[v + 1.0]);
            })
            .inout::<f64>()
            .build(),
        );
        let notify = Arc::new(CountingNotify {
            fired: AtomicUsize::new(0),
        });
        for _ in 0..10 {
            let desc = TaskDesc::new(incr, vec![Access::read_write(&r)])
                .with_notify(Arc::clone(&notify) as Arc<dyn crate::task::TaskNotify>);
            rt.try_submit(desc).unwrap();
        }
        rt.taskwait();
        assert_eq!(notify.wait_for(10), 10);
        rt.shutdown();
    }

    /// Interceptor that defers the second task it sees onto the next
    /// executed task's completion — the smallest deterministic reproduction
    /// of the IKT deferred path.
    struct DeferSecond {
        seen: AtomicUsize,
        parked: Mutex<Vec<TaskId>>,
    }

    impl TaskInterceptor for DeferSecond {
        fn before_execute(
            &self,
            task: TaskView<'_>,
            _store: &DataStore,
            _tracer: &Tracer,
            _worker: usize,
        ) -> Decision {
            if self.seen.fetch_add(1, Ordering::SeqCst) == 1 {
                self.parked.lock().push(task.id);
                Decision::Deferred
            } else {
                Decision::Execute
            }
        }

        fn after_execute(
            &self,
            _task: TaskView<'_>,
            _store: &DataStore,
            _tracer: &Tracer,
            _worker: usize,
            executed: bool,
        ) -> Vec<TaskId> {
            if executed {
                std::mem::take(&mut *self.parked.lock())
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn notify_fires_on_the_deferred_completion_path_too() {
        // One FIFO worker makes the pop order deterministic: task 0
        // executes (nothing parked yet), task 1 defers, task 2 executes and
        // its completion finishes task 1 through `finish_task`.
        let rt = RuntimeBuilder::new()
            .workers(1)
            .queue_mode(QueueMode::Fifo)
            .interceptor(Arc::new(DeferSecond {
                seen: AtomicUsize::new(0),
                parked: Mutex::new(Vec::new()),
            }))
            .build();
        let regions: Vec<Region<f32>> = (0..3)
            .map(|i| rt.store().register_zeros(format!("r{i}"), 1).unwrap())
            .collect();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("t", |ctx| ctx.out(0, &[1.0f32]))
                .out::<f32>()
                .build(),
        );
        let notify = Arc::new(CountingNotify {
            fired: AtomicUsize::new(0),
        });
        for r in &regions {
            let desc = TaskDesc::new(tt, vec![Access::write(r)])
                .with_notify(Arc::clone(&notify) as Arc<dyn crate::task::TaskNotify>);
            rt.try_submit(desc).unwrap();
        }
        rt.taskwait();
        let stats = rt.stats();
        assert_eq!(
            stats.deferred, 1,
            "the second task must take the deferred path"
        );
        assert_eq!(
            notify.wait_for(3),
            3,
            "every task notifies exactly once, deferred completions included"
        );
        rt.shutdown();
    }

    #[test]
    fn concurrent_submitters_on_disjoint_regions_make_progress() {
        let rt = RuntimeBuilder::new().workers(2).build();
        let tt = rt.register_task_type(
            TaskTypeBuilder::new("bump", |ctx| {
                let v = ctx.arg::<f64>(0)[0];
                ctx.out(0, &[v + 1.0]);
            })
            .inout::<f64>()
            .build(),
        );
        let submitters = 4;
        let per_submitter = 64;
        let regions: Vec<Region<f64>> = (0..submitters)
            .map(|i| rt.store().register_zeros(format!("lane{i}"), 1).unwrap())
            .collect();
        std::thread::scope(|scope| {
            for region in &regions {
                let rt = &rt;
                scope.spawn(move || {
                    for _ in 0..per_submitter {
                        rt.task(tt).reads_writes(region).submit().unwrap();
                    }
                });
            }
        });
        rt.taskwait();
        for region in &regions {
            assert_eq!(
                rt.store().read(*region).lock().as_f64(),
                &[per_submitter as f64]
            );
        }
        assert_eq!(rt.stats().submitted, (submitters * per_submitter) as u64);
        rt.shutdown();
    }
}
