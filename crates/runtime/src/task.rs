//! Task types, task descriptors and the execution context handed to kernels.
//!
//! A *task type* corresponds to one annotated function in the OmpSs/OpenMP
//! source program (e.g. `bs_thread`, `stencilComputation`, `bmod`, …): it
//! carries the kernel code, whether the programmer marked it as suitable for
//! memoization, and the ATM pragma parameters (`L_training`, `τ_max`).
//! A *task instance* ([`TaskDesc`]) is one submission of that type with a
//! concrete list of data accesses.

use crate::access::{Access, AccessMode};
use crate::region::DataStore;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Identifier of a registered task type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskTypeId(pub(crate) u32);

impl TaskTypeId {
    /// Raw index of the task type in the registry.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a task type id from a raw index. Intended for tests and
    /// tooling; ids obtained this way are only meaningful against the
    /// runtime that assigned them.
    pub fn from_raw(index: u32) -> Self {
        TaskTypeId(index)
    }
}

/// Identifier of a submitted task instance.
///
/// Ids are assigned in submission order, which is exactly the "task id"
/// (task-creation order) used on the x axis of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

impl TaskId {
    /// Raw creation-order index of the task.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a task id from a raw creation-order index. Intended for tests
    /// and tooling.
    pub fn from_raw(index: u64) -> Self {
        TaskId(index)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// The kernel of a task type: a deterministic function of its declared data
/// inputs that writes its declared data outputs through the [`TaskContext`].
pub type TaskKernel = Arc<dyn Fn(&TaskContext<'_>) + Send + Sync>;

/// ATM parameters attached to a task type by the programmer (the paper's
/// extended pragma annotations, §III-E and Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtmTaskParams {
    /// Number of correctly-approximated training tasks required before the
    /// Dynamic ATM controller freezes `p` and enters the steady-state phase.
    pub l_training: usize,
    /// Maximum tolerated per-task Chebyshev relative error τ_max.
    pub tau_max: f64,
    /// Whether the hash-key generator uses type-aware (MSB-first) input
    /// selection (§III-C).
    pub type_aware: bool,
}

impl Default for AtmTaskParams {
    fn default() -> Self {
        // τ_max = 1 % "provides good results" for most benchmarks (§IV-A);
        // at least 15 training tasks are needed to let Dynamic ATM reach
        // p = 100 %.
        AtmTaskParams { l_training: 15, tau_max: 0.01, type_aware: true }
    }
}

/// A registered task type.
#[derive(Clone)]
pub struct TaskTypeInfo {
    /// Human-readable name (matches the paper's task-type names).
    pub name: String,
    /// The kernel to execute.
    pub kernel: TaskKernel,
    /// Whether the programmer marked the type as suitable for ATM.
    pub memoizable: bool,
    /// ATM pragma parameters.
    pub atm: AtmTaskParams,
}

impl fmt::Debug for TaskTypeInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskTypeInfo")
            .field("name", &self.name)
            .field("memoizable", &self.memoizable)
            .field("atm", &self.atm)
            .finish_non_exhaustive()
    }
}

/// Builder for registering a task type with the runtime.
pub struct TaskTypeBuilder {
    info: TaskTypeInfo,
}

impl TaskTypeBuilder {
    /// Starts building a task type with the given name and kernel.
    pub fn new(name: impl Into<String>, kernel: impl Fn(&TaskContext<'_>) + Send + Sync + 'static) -> Self {
        TaskTypeBuilder {
            info: TaskTypeInfo {
                name: name.into(),
                kernel: Arc::new(kernel),
                memoizable: false,
                atm: AtmTaskParams::default(),
            },
        }
    }

    /// Marks the task type as suitable for ATM (the programmer's opt-in).
    #[must_use]
    pub fn memoizable(mut self) -> Self {
        self.info.memoizable = true;
        self
    }

    /// Sets the ATM pragma parameters.
    #[must_use]
    pub fn atm_params(mut self, params: AtmTaskParams) -> Self {
        self.info.atm = params;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> TaskTypeInfo {
        self.info
    }
}

/// One task instance to submit: a task type plus its data accesses.
#[derive(Debug, Clone)]
pub struct TaskDesc {
    /// The task type.
    pub task_type: TaskTypeId,
    /// The declared data accesses, in the order the kernel expects them.
    pub accesses: Vec<Access>,
}

impl TaskDesc {
    /// Creates a descriptor.
    pub fn new(task_type: TaskTypeId, accesses: Vec<Access>) -> Self {
        TaskDesc { task_type, accesses }
    }

    /// The accesses the kernel reads (`In` and `InOut`).
    pub fn read_accesses(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(|a| a.mode.is_read())
    }

    /// The accesses the kernel writes (`Out` and `InOut`).
    pub fn write_accesses(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(|a| a.mode.is_write())
    }
}

/// Read-only view of a task handed to interceptors (the ATM engine).
#[derive(Clone, Copy)]
pub struct TaskView<'a> {
    /// The task instance id (creation order).
    pub id: TaskId,
    /// The task type id.
    pub type_id: TaskTypeId,
    /// The registered task type information.
    pub info: &'a TaskTypeInfo,
    /// The task's data accesses.
    pub accesses: &'a [Access],
}

impl fmt::Debug for TaskView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskView")
            .field("id", &self.id)
            .field("type", &self.info.name)
            .field("accesses", &self.accesses.len())
            .finish()
    }
}

/// Execution context handed to a task kernel.
///
/// Gives the kernel access to the data store and to its own declared
/// accesses; kernels must only touch regions they declared (the dependence
/// tracker and, transitively, the soundness of ATM rely on it — §III-E of
/// the paper lists under-declared outputs as the main source-code hazard).
pub struct TaskContext<'a> {
    store: &'a DataStore,
    accesses: &'a [Access],
}

impl<'a> TaskContext<'a> {
    /// Creates a context (used by the scheduler and by unit tests).
    pub fn new(store: &'a DataStore, accesses: &'a [Access]) -> Self {
        TaskContext { store, accesses }
    }

    /// The data store.
    pub fn store(&self) -> &DataStore {
        self.store
    }

    /// The task's declared accesses.
    pub fn accesses(&self) -> &[Access] {
        self.accesses
    }

    /// The `idx`-th declared access.
    pub fn access(&self, idx: usize) -> &Access {
        &self.accesses[idx]
    }

    /// Element index range of the `idx`-th access (byte range divided by the
    /// element width; whole region when no range was declared).
    pub fn elem_range(&self, idx: usize) -> Range<usize> {
        let access = self.access(idx);
        let width = access.elem.width();
        match &access.range {
            Some(r) => {
                debug_assert_eq!(r.start % width, 0, "byte range not aligned to element width");
                debug_assert_eq!(r.end % width, 0, "byte range not aligned to element width");
                (r.start / width)..(r.end / width)
            }
            None => {
                let len = self.store.read(access.region).lock().len();
                0..len
            }
        }
    }

    /// Clones the `f32` elements covered by the `idx`-th access.
    pub fn read_f32(&self, idx: usize) -> Vec<f32> {
        let access = self.access(idx);
        let range = self.elem_range(idx);
        let region = self.store.read(access.region);
        let guard = region.lock();
        guard.as_f32()[range].to_vec()
    }

    /// Clones the `f64` elements covered by the `idx`-th access.
    pub fn read_f64(&self, idx: usize) -> Vec<f64> {
        let access = self.access(idx);
        let range = self.elem_range(idx);
        let region = self.store.read(access.region);
        let guard = region.lock();
        guard.as_f64()[range].to_vec()
    }

    /// Clones the `i32` elements covered by the `idx`-th access.
    pub fn read_i32(&self, idx: usize) -> Vec<i32> {
        let access = self.access(idx);
        let range = self.elem_range(idx);
        let region = self.store.read(access.region);
        let guard = region.lock();
        guard.as_i32()[range].to_vec()
    }

    /// Writes `values` into the `f32` elements covered by the `idx`-th access.
    ///
    /// # Panics
    /// Panics if the access is not a write access or the lengths differ.
    pub fn write_f32(&self, idx: usize, values: &[f32]) {
        let access = self.access(idx);
        assert!(access.mode.is_write(), "write_f32 on a read-only access");
        let range = self.elem_range(idx);
        let region = self.store.write(access.region);
        let mut guard = region.lock();
        guard.as_f32_mut()[range].copy_from_slice(values);
    }

    /// Writes `values` into the `f64` elements covered by the `idx`-th access.
    ///
    /// # Panics
    /// Panics if the access is not a write access or the lengths differ.
    pub fn write_f64(&self, idx: usize, values: &[f64]) {
        let access = self.access(idx);
        assert!(access.mode.is_write(), "write_f64 on a read-only access");
        let range = self.elem_range(idx);
        let region = self.store.write(access.region);
        let mut guard = region.lock();
        guard.as_f64_mut()[range].copy_from_slice(values);
    }

    /// Writes `values` into the `i32` elements covered by the `idx`-th access.
    ///
    /// # Panics
    /// Panics if the access is not a write access or the lengths differ.
    pub fn write_i32(&self, idx: usize, values: &[i32]) {
        let access = self.access(idx);
        assert!(access.mode.is_write(), "write_i32 on a read-only access");
        let range = self.elem_range(idx);
        let region = self.store.write(access.region);
        let mut guard = region.lock();
        guard.as_i32_mut()[range].copy_from_slice(values);
    }

    /// Number of write accesses declared by the task.
    pub fn output_count(&self) -> usize {
        self.accesses.iter().filter(|a| a.mode == AccessMode::Out || a.mode == AccessMode::InOut).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{ElemType, RegionData};

    #[test]
    fn builder_sets_flags_and_params() {
        let info = TaskTypeBuilder::new("bs_thread", |_ctx| {})
            .memoizable()
            .atm_params(AtmTaskParams { l_training: 100, tau_max: 0.2, type_aware: false })
            .build();
        assert_eq!(info.name, "bs_thread");
        assert!(info.memoizable);
        assert_eq!(info.atm.l_training, 100);
        assert!((info.atm.tau_max - 0.2).abs() < 1e-12);
        assert!(!info.atm.type_aware);
    }

    #[test]
    fn default_params_match_paper_defaults() {
        let p = AtmTaskParams::default();
        assert_eq!(p.l_training, 15);
        assert!((p.tau_max - 0.01).abs() < 1e-12);
        assert!(p.type_aware);
    }

    #[test]
    fn context_reads_and_writes_ranged_accesses() {
        let store = DataStore::new();
        let input = store.register("in", RegionData::F32(vec![1.0, 2.0, 3.0, 4.0]));
        let output = store.register("out", RegionData::F32(vec![0.0; 4]));
        let accesses = vec![
            Access::input(input, ElemType::F32).with_range(4..12),
            Access::output(output, ElemType::F32).with_range(8..16),
        ];
        let ctx = TaskContext::new(&store, &accesses);
        assert_eq!(ctx.elem_range(0), 1..3);
        assert_eq!(ctx.read_f32(0), vec![2.0, 3.0]);
        ctx.write_f32(1, &[7.0, 8.0]);
        assert_eq!(store.read(output).lock().as_f32(), &[0.0, 0.0, 7.0, 8.0]);
    }

    #[test]
    fn context_whole_region_access_covers_everything() {
        let store = DataStore::new();
        let region = store.register("v", RegionData::F64(vec![1.0, 2.0]));
        let accesses = vec![Access::inout(region, ElemType::F64)];
        let ctx = TaskContext::new(&store, &accesses);
        assert_eq!(ctx.elem_range(0), 0..2);
        assert_eq!(ctx.read_f64(0), vec![1.0, 2.0]);
        ctx.write_f64(0, &[3.0, 4.0]);
        assert_eq!(store.read(region).lock().as_f64(), &[3.0, 4.0]);
        assert_eq!(ctx.output_count(), 1);
    }

    #[test]
    #[should_panic(expected = "read-only access")]
    fn writing_through_input_access_panics() {
        let store = DataStore::new();
        let region = store.register("v", RegionData::F32(vec![1.0]));
        let accesses = vec![Access::input(region, ElemType::F32)];
        let ctx = TaskContext::new(&store, &accesses);
        ctx.write_f32(0, &[2.0]);
    }

    #[test]
    fn task_desc_splits_reads_and_writes() {
        let store = DataStore::new();
        let a = store.register_f32_zeros("a", 1);
        let b = store.register_f32_zeros("b", 1);
        let c = store.register_f32_zeros("c", 1);
        let desc = TaskDesc::new(
            TaskTypeId(0),
            vec![
                Access::input(a, ElemType::F32),
                Access::inout(b, ElemType::F32),
                Access::output(c, ElemType::F32),
            ],
        );
        assert_eq!(desc.read_accesses().count(), 2);
        assert_eq!(desc.write_accesses().count(), 2);
    }
}
