//! Task types, task descriptors and the execution context handed to kernels.
//!
//! A *task type* corresponds to one annotated function in the OmpSs/OpenMP
//! source program (e.g. `bs_thread`, `stencilComputation`, `bmod`, …): it
//! carries the kernel code, the type's approximation policy
//! ([`MemoSpec`], when the programmer opted the type into memoization) and
//! the declared *access signature* — the modes and element types of the data
//! parameters the kernel expects, in order. The signature is what
//! [`crate::Runtime::task`] validates every submission against, so a task
//! can never reach a worker with the wrong arity, access direction or
//! element width.
//!
//! A *task instance* ([`TaskDesc`]) is one submission of that type with a
//! concrete list of data accesses.

use crate::access::{Access, AccessMode};
use crate::memo::{MemoSpec, MemoSpecError};
use crate::region::{DataStore, Elem, ElemType};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Identifier of a registered task type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskTypeId(pub(crate) u32);

impl TaskTypeId {
    /// Raw index of the task type in the registry.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a task type id from a raw index. Intended for tests and
    /// tooling; ids obtained this way are only meaningful against the
    /// runtime that assigned them.
    pub fn from_raw(index: u32) -> Self {
        TaskTypeId(index)
    }
}

/// Identifier of a submitted task instance.
///
/// The `u64` is a **generational slot id**, packed as
/// `(generation << 36) | (slot << 4) | shard`:
///
/// * bits `[0, 4)` — the node-slab **shard** the task's node lives in;
/// * bits `[4, 36)` — the **slot index** inside that shard;
/// * bits `[36, 64)` — the slot's **generation** at insertion time.
///
/// Looking a task up is therefore a bounds check plus a generation compare
/// — no hash probe. When a node retires its slot is recycled with a bumped
/// generation, so a stale id of a retired task fails the generation compare
/// and resolves as "gone = finished" instead of aliasing the slot's new
/// occupant (no ABA). Ids are *dense in neither value nor order*: treat
/// them as opaque unique keys (the creation-order rank of Figure 9 comes
/// from the runtime's own sequence counter, not from the id bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

impl TaskId {
    /// Bits devoted to the node-slab shard (low bits).
    pub(crate) const SHARD_BITS: u32 = 4;
    /// Bits devoted to the slot index within a shard.
    pub(crate) const SLOT_BITS: u32 = 32;
    /// Bits devoted to the slot generation (high bits).
    pub(crate) const GEN_BITS: u32 = 64 - Self::SHARD_BITS - Self::SLOT_BITS;
    /// Number of node-slab shards addressable by the shard field. Public
    /// because tests and diagnostics need to know how many consecutive
    /// submissions revisit the same shard (submissions rotate round-robin).
    pub const SHARD_COUNT: usize = 1 << Self::SHARD_BITS;
    /// Crate-internal alias for [`TaskId::SHARD_COUNT`].
    pub(crate) const SHARDS: usize = Self::SHARD_COUNT;
    /// Wrap-around mask for slot generations.
    pub(crate) const GEN_MASK: u32 = (1 << Self::GEN_BITS) - 1;

    /// Packs a (shard, slot, generation) triple into an id.
    pub(crate) fn pack(shard: usize, slot: u32, generation: u32) -> TaskId {
        debug_assert!(shard < Self::SHARDS, "shard {shard} out of range");
        debug_assert_eq!(generation & !Self::GEN_MASK, 0, "generation overflow");
        TaskId(
            ((generation as u64) << (Self::SHARD_BITS + Self::SLOT_BITS))
                | ((slot as u64) << Self::SHARD_BITS)
                | shard as u64,
        )
    }

    /// The node-slab shard the task's node lives in.
    pub(crate) fn shard(self) -> usize {
        (self.0 & (Self::SHARDS as u64 - 1)) as usize
    }

    /// The slot index inside the shard.
    pub(crate) fn slot(self) -> u32 {
        (self.0 >> Self::SHARD_BITS) as u32
    }

    /// The slot generation the id was minted against.
    pub(crate) fn generation(self) -> u32 {
        (self.0 >> (Self::SHARD_BITS + Self::SLOT_BITS)) as u32
    }

    /// The raw packed id. A stable, process-unique join key (trace spans,
    /// decision-log records, persisted reuse events) — **not** a dense
    /// creation-order index; see the type docs for the bit layout.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a task id from its raw packed value (the inverse of
    /// [`TaskId::raw`]). Intended for tests and tooling; ids obtained this
    /// way are only meaningful against the runtime that assigned them.
    pub fn from_raw(raw: u64) -> Self {
        TaskId(raw)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// The kernel of a task type: a deterministic function of its declared data
/// inputs that writes its declared data outputs through the [`TaskContext`].
pub type TaskKernel = Arc<dyn Fn(&TaskContext<'_>) + Send + Sync>;

/// One fixed parameter of a task type's declared signature: an access
/// direction plus the element type of the region the kernel expects at that
/// position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigParam {
    /// Expected access direction.
    pub mode: AccessMode,
    /// Expected element type.
    pub elem: ElemType,
}

/// The variadic tail of a signature: any number (at least `min`) of trailing
/// accesses of one element type, optionally constrained to one direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariadicSig {
    /// Required direction of the trailing accesses; `None` accepts any.
    pub mode: Option<AccessMode>,
    /// Required element type of the trailing accesses.
    pub elem: ElemType,
    /// Minimum number of trailing accesses.
    pub min: usize,
}

/// The declared access signature of a task type: a fixed list of positional
/// parameters, optionally followed by a variadic tail (reductions take a
/// run-time-determined number of inputs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskSignature {
    /// The fixed leading parameters, in the order the kernel indexes them.
    pub fixed: Vec<SigParam>,
    /// The optional variadic tail.
    pub variadic: Option<VariadicSig>,
}

impl TaskSignature {
    /// Smallest number of accesses a submission may declare.
    pub fn min_arity(&self) -> usize {
        self.fixed.len() + self.variadic.map_or(0, |v| v.min)
    }

    /// Largest number of accesses a submission may declare, `None` when the
    /// signature has a variadic tail.
    pub fn max_arity(&self) -> Option<usize> {
        if self.variadic.is_some() {
            None
        } else {
            Some(self.fixed.len())
        }
    }
}

/// A registered task type.
#[derive(Clone)]
pub struct TaskTypeInfo {
    /// Human-readable name (matches the paper's task-type names).
    pub name: String,
    /// The kernel to execute.
    pub kernel: TaskKernel,
    /// The approximation policy of the type. `Some` means the programmer
    /// opted the type into memoization; the spec carries everything the ATM
    /// engine needs (policy, `τ_max`, training window, error metric,
    /// per-argument precision overrides).
    pub memo: Option<MemoSpec>,
    /// The declared access signature, when the builder declared one.
    /// Submissions of types without a signature skip the arity/mode checks
    /// (the element types of their accesses are still validated against the
    /// store).
    pub signature: Option<TaskSignature>,
}

impl TaskTypeInfo {
    /// Whether the programmer marked the type as suitable for ATM.
    pub fn memoizable(&self) -> bool {
        self.memo.is_some()
    }
}

impl fmt::Debug for TaskTypeInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskTypeInfo")
            .field("name", &self.name)
            .field("memo", &self.memo)
            .field("signature", &self.signature)
            .finish_non_exhaustive()
    }
}

/// Builder for registering a task type with the runtime.
///
/// The typed parameter declarations ([`TaskTypeBuilder::arg`],
/// [`TaskTypeBuilder::out`], [`TaskTypeBuilder::inout`],
/// [`TaskTypeBuilder::variadic_args`], [`TaskTypeBuilder::variadic`]) build
/// the access signature the submission validator enforces. Declare them in
/// the order the kernel indexes its accesses, and attach the type's
/// approximation policy with [`TaskTypeBuilder::memo`]:
///
/// ```
/// use atm_runtime::prelude::*;
///
/// let info = TaskTypeBuilder::new("axpy", |ctx| {
///     let x = ctx.arg::<f64>(0);
///     let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
///     ctx.out(1, &y);
/// })
/// .arg::<f64>()
/// .out::<f64>()
/// .memo(MemoSpec::approximate().tau(1e-3).training_window(32))
/// .build();
/// assert_eq!(info.signature.as_ref().unwrap().fixed.len(), 2);
/// assert!(info.memoizable());
/// ```
pub struct TaskTypeBuilder {
    name: String,
    kernel: TaskKernel,
    signature: Option<TaskSignature>,
    spec: Option<MemoSpec>,
    opted_in: bool,
}

impl TaskTypeBuilder {
    /// Starts building a task type with the given name and kernel.
    pub fn new(
        name: impl Into<String>,
        kernel: impl Fn(&TaskContext<'_>) + Send + Sync + 'static,
    ) -> Self {
        TaskTypeBuilder {
            name: name.into(),
            kernel: Arc::new(kernel),
            signature: None,
            spec: None,
            opted_in: false,
        }
    }

    /// Marks the task type as suitable for ATM with the default policy
    /// ([`MemoSpec::default`]: adaptive approximation with the paper's
    /// Table II defaults). Use [`TaskTypeBuilder::memo`] to declare a
    /// non-default policy.
    #[must_use]
    pub fn memoizable(mut self) -> Self {
        self.opted_in = true;
        self
    }

    /// Opts the task type into ATM with an explicit approximation policy,
    /// declared where the kernel is registered. The spec is validated
    /// against the declared access signature by [`TaskTypeBuilder::build`].
    #[must_use]
    pub fn memo(mut self, spec: MemoSpec) -> Self {
        self.spec = Some(spec);
        self.opted_in = true;
        self
    }

    /// Sets the ATM pragma parameters of the pre-`MemoSpec` API. Does not
    /// opt the type into memoization by itself (combine with
    /// [`TaskTypeBuilder::memoizable`], as before).
    #[deprecated(note = "use `TaskTypeBuilder::memo(MemoSpec::...)` instead")]
    #[allow(deprecated)]
    #[must_use]
    pub fn atm_params(mut self, params: crate::memo::AtmTaskParams) -> Self {
        self.spec = Some(params.into());
        self
    }

    fn push_fixed(mut self, mode: AccessMode, elem: ElemType) -> Self {
        let signature = self.signature.get_or_insert_with(TaskSignature::default);
        assert!(
            signature.variadic.is_none(),
            "fixed parameters cannot be declared after a variadic tail"
        );
        signature.fixed.push(SigParam { mode, elem });
        self
    }

    fn set_variadic(mut self, mode: Option<AccessMode>, elem: ElemType, min: usize) -> Self {
        let signature = self.signature.get_or_insert_with(TaskSignature::default);
        assert!(
            signature.variadic.is_none(),
            "a signature can declare at most one variadic tail"
        );
        signature.variadic = Some(VariadicSig { mode, elem, min });
        self
    }

    /// Declares the next positional parameter as a read (`in`) access of
    /// element type `T`.
    #[must_use]
    pub fn arg<T: Elem>(self) -> Self {
        self.push_fixed(AccessMode::In, T::ELEM)
    }

    /// Declares the next positional parameter as a write (`out`) access of
    /// element type `T`.
    #[must_use]
    pub fn out<T: Elem>(self) -> Self {
        self.push_fixed(AccessMode::Out, T::ELEM)
    }

    /// Declares the next positional parameter as a read-write (`inout`)
    /// access of element type `T`.
    #[must_use]
    pub fn inout<T: Elem>(self) -> Self {
        self.push_fixed(AccessMode::InOut, T::ELEM)
    }

    /// Declares a variadic tail: at least `min` trailing read accesses of
    /// element type `T` (reductions over a run-time number of inputs).
    #[must_use]
    pub fn variadic_args<T: Elem>(self, min: usize) -> Self {
        self.set_variadic(Some(AccessMode::In), T::ELEM, min)
    }

    /// Declares a variadic tail of at least `min` trailing accesses of
    /// element type `T` in any direction (for fully generic task shapes).
    #[must_use]
    pub fn variadic<T: Elem>(self, min: usize) -> Self {
        self.set_variadic(None, T::ELEM, min)
    }

    /// Finishes the builder, validating the memoization spec (when one was
    /// declared) against the declared access signature.
    ///
    /// # Panics
    /// Panics when the spec is invalid; use [`TaskTypeBuilder::try_build`]
    /// to handle the error.
    pub fn build(self) -> TaskTypeInfo {
        self.try_build()
            .unwrap_or_else(|err| panic!("invalid memoization spec: {err}"))
    }

    /// Finishes the builder, reporting an invalid memoization spec as a
    /// [`MemoSpecError`] instead of panicking.
    pub fn try_build(self) -> Result<TaskTypeInfo, MemoSpecError> {
        let memo = if self.opted_in {
            let spec = self.spec.unwrap_or_default();
            spec.validate(self.signature.as_ref())?;
            Some(spec)
        } else {
            None
        };
        Ok(TaskTypeInfo {
            name: self.name,
            kernel: self.kernel,
            memo,
            signature: self.signature,
        })
    }
}

/// Observer of one task's completion, attached per submission through
/// [`TaskDesc::with_notify`].
///
/// The runtime invokes [`TaskNotify::task_finished`] exactly once per task
/// — after the task's successors were released and the outstanding count
/// decremented, on whichever worker performed the completion (memoized
/// bypasses and producer-completed deferred tasks included). This is the
/// hook a serving tier uses to learn that a request's last task finished
/// without polling or a global taskwait. Implementations must be cheap and
/// must not submit tasks or block: they run on the worker's hot path.
pub trait TaskNotify: Send + Sync {
    /// Called once when the task completes, on the completing worker.
    fn task_finished(&self, worker: usize, task: TaskId);
}

/// One task instance to submit: a task type plus its data accesses, and
/// optionally a per-instance memoization opt-in.
#[derive(Clone)]
pub struct TaskDesc {
    /// The task type.
    pub task_type: TaskTypeId,
    /// The declared data accesses, in the order the kernel expects them.
    pub accesses: Vec<Access>,
    /// Per-instance memoization opt-in: `Some(spec)` marks this instance as
    /// memoizable with the given policy, even when the task type was not
    /// registered as memoizable. See [`crate::TaskBuilder::memo`] for the
    /// first-instance-configures-the-type resolution rule.
    pub memo: Option<MemoSpec>,
    /// Submission timestamp on the runtime's trace clock, stamped by
    /// [`crate::Runtime::try_submit`] / [`crate::Runtime::try_submit_all`]
    /// (0 until then). Feeds the end-to-end task-latency histogram of the
    /// observability layer.
    pub submitted_at_ns: u64,
    /// Completion observer, when the submitter wants one (see
    /// [`TaskNotify`]).
    pub notify: Option<Arc<dyn TaskNotify>>,
}

impl fmt::Debug for TaskDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskDesc")
            .field("task_type", &self.task_type)
            .field("accesses", &self.accesses)
            .field("memo", &self.memo)
            .field("submitted_at_ns", &self.submitted_at_ns)
            .field(
                "notify",
                &self.notify.as_ref().map(|_| "Arc<dyn TaskNotify>"),
            )
            .finish()
    }
}

impl TaskDesc {
    /// Creates a descriptor with no per-instance memoization override.
    pub fn new(task_type: TaskTypeId, accesses: Vec<Access>) -> Self {
        TaskDesc {
            task_type,
            accesses,
            memo: None,
            submitted_at_ns: 0,
            notify: None,
        }
    }

    /// Attaches a per-instance memoization opt-in.
    #[must_use]
    pub fn with_memo(mut self, spec: impl Into<MemoSpec>) -> Self {
        self.memo = Some(spec.into());
        self
    }

    /// Attaches a completion observer (see [`TaskNotify`]).
    #[must_use]
    pub fn with_notify(mut self, notify: Arc<dyn TaskNotify>) -> Self {
        self.notify = Some(notify);
        self
    }

    /// The accesses the kernel reads (`In` and `InOut`).
    pub fn read_accesses(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(|a| a.mode.is_read())
    }

    /// The accesses the kernel writes (`Out` and `InOut`).
    pub fn write_accesses(&self) -> impl Iterator<Item = &Access> {
        self.accesses.iter().filter(|a| a.mode.is_write())
    }
}

/// Read-only view of a task handed to interceptors (the ATM engine).
#[derive(Clone, Copy)]
pub struct TaskView<'a> {
    /// The task instance id (an opaque generational slot id).
    pub id: TaskId,
    /// The task type id.
    pub type_id: TaskTypeId,
    /// The registered task type information.
    pub info: &'a TaskTypeInfo,
    /// The task's data accesses.
    pub accesses: &'a [Access],
    /// The per-instance memoization opt-in, when the submission carried one.
    pub memo: Option<&'a MemoSpec>,
}

impl<'a> TaskView<'a> {
    /// Whether this task instance may be memoized: either its type opted in
    /// at registration, or the submission opted in through
    /// [`crate::TaskBuilder::memo`].
    pub fn memoizable(&self) -> bool {
        self.info.memo.is_some() || self.memo.is_some()
    }

    /// The approximation policy this instance proposes: the per-instance
    /// spec when present, the type-level spec otherwise, `None` when the
    /// task is not memoizable at all. The engine resolves each type's
    /// effective policy from the *first* memoizable instance it sees (see
    /// [`crate::TaskBuilder::memo`]).
    pub fn memo_spec(&self) -> Option<&'a MemoSpec> {
        self.memo.or(self.info.memo.as_ref())
    }
}

impl fmt::Debug for TaskView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskView")
            .field("id", &self.id)
            .field("type", &self.info.name)
            .field("accesses", &self.accesses.len())
            .finish()
    }
}

/// Execution context handed to a task kernel.
///
/// Gives the kernel access to the data store and to its own declared
/// accesses; kernels must only touch regions they declared (the dependence
/// tracker and, transitively, the soundness of ATM rely on it — §III-E of
/// the paper lists under-declared outputs as the main source-code hazard).
///
/// Data flows through the typed positional accessors: [`TaskContext::arg`]
/// clones the elements covered by a read access, [`TaskContext::out`] writes
/// a write access. Both check the declared element width once per call
/// against the `T` the kernel asks for — and because submission already
/// validated every access against the store, a type mismatch can only come
/// from the kernel disagreeing with its own declared signature.
pub struct TaskContext<'a> {
    store: &'a DataStore,
    accesses: &'a [Access],
}

impl<'a> TaskContext<'a> {
    /// Creates a context (used by the scheduler and by unit tests).
    pub fn new(store: &'a DataStore, accesses: &'a [Access]) -> Self {
        TaskContext { store, accesses }
    }

    /// The data store.
    pub fn store(&self) -> &DataStore {
        self.store
    }

    /// The task's declared accesses.
    pub fn accesses(&self) -> &[Access] {
        self.accesses
    }

    /// The `idx`-th declared access.
    pub fn access(&self, idx: usize) -> &Access {
        &self.accesses[idx]
    }

    /// Element index range of the `idx`-th access (byte range divided by the
    /// element width; whole region when no range was declared).
    pub fn elem_range(&self, idx: usize) -> Range<usize> {
        let access = self.access(idx);
        let width = access.elem.width();
        match &access.range {
            Some(r) => {
                debug_assert_eq!(
                    r.start % width,
                    0,
                    "byte range not aligned to element width"
                );
                debug_assert_eq!(r.end % width, 0, "byte range not aligned to element width");
                (r.start / width)..(r.end / width)
            }
            None => {
                let len = self.store.read(access.region).lock().len();
                0..len
            }
        }
    }

    /// Clones the `T` elements covered by the `idx`-th access.
    ///
    /// # Panics
    /// Panics if the access is not a read access or was not declared with
    /// element type `T`.
    pub fn arg<T: Elem>(&self, idx: usize) -> Vec<T> {
        let access = self.access(idx);
        assert!(
            access.mode.is_read(),
            "arg::<{}>({idx}) on a write-only access of {}",
            T::ELEM,
            self.store.name(access.region)
        );
        assert_eq!(
            access.elem,
            T::ELEM,
            "arg::<{}>({idx}) on an access declared as {}",
            T::ELEM,
            access.elem
        );
        let range = self.elem_range(idx);
        let region = self.store.read(access.region);
        let guard = region.lock();
        guard.as_elems::<T>()[range].to_vec()
    }

    /// Writes `values` into the `T` elements covered by the `idx`-th access.
    ///
    /// # Panics
    /// Panics if the access is not a write access, was not declared with
    /// element type `T`, or the lengths differ.
    pub fn out<T: Elem>(&self, idx: usize, values: &[T]) {
        let access = self.access(idx);
        assert!(
            access.mode.is_write(),
            "out::<{}>({idx}) on a read-only access of {}",
            T::ELEM,
            self.store.name(access.region)
        );
        assert_eq!(
            access.elem,
            T::ELEM,
            "out::<{}>({idx}) on an access declared as {}",
            T::ELEM,
            access.elem
        );
        let range = self.elem_range(idx);
        let region = self.store.write(access.region);
        let mut guard = region.lock();
        guard.as_elems_mut::<T>()[range].copy_from_slice(values);
    }

    /// Number of write accesses declared by the task.
    pub fn output_count(&self) -> usize {
        self.accesses.iter().filter(|a| a.mode.is_write()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_attaches_the_memo_spec() {
        let info = TaskTypeBuilder::new("bs_thread", |_ctx| {})
            .memo(
                MemoSpec::approximate()
                    .tau(0.2)
                    .training_window(100)
                    .type_aware(false),
            )
            .build();
        assert_eq!(info.name, "bs_thread");
        assert!(info.memoizable());
        let spec = info.memo.as_ref().unwrap();
        assert_eq!(spec.training_window_len(), 100);
        assert!((spec.tau_max() - 0.2).abs() < 1e-12);
        assert!(!spec.is_type_aware());
        assert!(
            info.signature.is_none(),
            "no parameters declared, no signature enforced"
        );
    }

    #[test]
    fn memoizable_without_a_spec_gets_the_default_policy() {
        let info = TaskTypeBuilder::new("t", |_| {}).memoizable().build();
        assert_eq!(info.memo, Some(MemoSpec::default()));
        let plain = TaskTypeBuilder::new("t", |_| {}).build();
        assert!(plain.memo.is_none());
        assert!(!plain.memoizable());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_atm_params_bridge_into_the_spec() {
        use crate::memo::AtmTaskParams;
        // As before, `atm_params` alone does not opt the type in…
        let not_opted = TaskTypeBuilder::new("t", |_| {})
            .atm_params(AtmTaskParams::default())
            .build();
        assert!(!not_opted.memoizable());
        // …but combined with `memoizable()` the parameters become the spec.
        let info = TaskTypeBuilder::new("t", |_| {})
            .memoizable()
            .atm_params(AtmTaskParams {
                l_training: 7,
                tau_max: 0.5,
                type_aware: true,
            })
            .build();
        let spec = info.memo.unwrap();
        assert_eq!(spec.training_window_len(), 7);
        assert!((spec.tau_max() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn build_validates_the_spec_against_the_signature() {
        let result = TaskTypeBuilder::new("t", |_| {})
            .arg::<f64>()
            .out::<f64>()
            .memo(MemoSpec::approximate().arg_exact(1))
            .try_build();
        assert_eq!(result.unwrap_err(), MemoSpecError::ArgNotRead { index: 1 });
        // A valid override builds fine.
        let info = TaskTypeBuilder::new("t", |_| {})
            .arg::<f64>()
            .out::<f64>()
            .memo(MemoSpec::approximate().arg_exact(0))
            .build();
        assert!(info.memoizable());
    }

    #[test]
    #[should_panic(expected = "invalid memoization spec")]
    fn build_panics_on_an_invalid_spec() {
        let _ = TaskTypeBuilder::new("t", |_| {})
            .memo(MemoSpec::approximate().training_window(0))
            .build();
    }

    #[test]
    fn builder_collects_the_declared_signature() {
        let info = TaskTypeBuilder::new("reduce", |_ctx| {})
            .inout::<f32>()
            .variadic_args::<f32>(1)
            .build();
        let signature = info.signature.unwrap();
        assert_eq!(
            signature.fixed,
            vec![SigParam {
                mode: AccessMode::InOut,
                elem: ElemType::F32
            }]
        );
        assert_eq!(
            signature.variadic,
            Some(VariadicSig {
                mode: Some(AccessMode::In),
                elem: ElemType::F32,
                min: 1
            })
        );
        assert_eq!(signature.min_arity(), 2);
        assert_eq!(signature.max_arity(), None);
    }

    #[test]
    fn fixed_signature_reports_exact_arity() {
        let info = TaskTypeBuilder::new("t", |_| {})
            .arg::<f64>()
            .out::<f64>()
            .build();
        let signature = info.signature.unwrap();
        assert_eq!(signature.min_arity(), 2);
        assert_eq!(signature.max_arity(), Some(2));
    }

    #[test]
    #[should_panic(expected = "variadic tail")]
    fn fixed_after_variadic_panics() {
        let _ = TaskTypeBuilder::new("t", |_| {})
            .variadic::<f32>(0)
            .arg::<f32>();
    }

    #[test]
    fn task_id_packs_shard_slot_and_generation() {
        let id = TaskId::pack(13, 0xDEAD_BEEF, 0x00AB_CDEF);
        assert_eq!(id.shard(), 13);
        assert_eq!(id.slot(), 0xDEAD_BEEF);
        assert_eq!(id.generation(), 0x00AB_CDEF);
        assert_eq!(TaskId::from_raw(id.raw()), id);
        // The fields are disjoint: bumping the generation of the same slot
        // yields a different id (this is what defeats ABA on slot reuse).
        let stale = TaskId::pack(13, 0xDEAD_BEEF, 0x00AB_CDEE);
        assert_ne!(stale, id);
        assert_eq!(stale.shard(), id.shard());
        assert_eq!(stale.slot(), id.slot());
        // Generations wrap within their 28-bit field instead of bleeding
        // into the slot bits.
        let wrapped = (TaskId::GEN_MASK + 1) & TaskId::GEN_MASK;
        assert_eq!(wrapped, 0);
        let max_gen = TaskId::pack(0, 7, TaskId::GEN_MASK);
        assert_eq!(max_gen.generation(), TaskId::GEN_MASK);
        assert_eq!(max_gen.slot(), 7);
    }

    #[test]
    fn task_view_merges_instance_and_type_memoization() {
        let plain = TaskTypeBuilder::new("plain", |_| {}).build();
        let view = TaskView {
            id: TaskId(0),
            type_id: TaskTypeId(0),
            info: &plain,
            accesses: &[],
            memo: None,
        };
        assert!(!view.memoizable());
        assert!(view.memo_spec().is_none());
        let spec = MemoSpec::approximate().tau(0.5).training_window(7);
        let opted = TaskView {
            memo: Some(&spec),
            ..view
        };
        assert!(opted.memoizable());
        assert_eq!(opted.memo_spec(), Some(&spec));

        // The instance spec wins over the type-level spec.
        let typed = TaskTypeBuilder::new("typed", |_| {})
            .memo(MemoSpec::exact())
            .build();
        let type_only = TaskView {
            info: &typed,
            ..view
        };
        assert_eq!(type_only.memo_spec(), typed.memo.as_ref());
        let overridden = TaskView {
            info: &typed,
            memo: Some(&spec),
            ..view
        };
        assert_eq!(overridden.memo_spec(), Some(&spec));
    }

    #[test]
    fn context_reads_and_writes_ranged_accesses() {
        let store = DataStore::new();
        let input = store
            .register_typed("in", vec![1.0f32, 2.0, 3.0, 4.0])
            .unwrap();
        let output = store.register_zeros::<f32>("out", 4).unwrap();
        let accesses = vec![
            Access::read(&input).with_range(4..12),
            Access::write(&output).with_range(8..16),
        ];
        let ctx = TaskContext::new(&store, &accesses);
        assert_eq!(ctx.elem_range(0), 1..3);
        assert_eq!(ctx.arg::<f32>(0), vec![2.0, 3.0]);
        ctx.out(1, &[7.0f32, 8.0]);
        assert_eq!(store.read(output).lock().as_f32(), &[0.0, 0.0, 7.0, 8.0]);
    }

    #[test]
    fn context_whole_region_access_covers_everything() {
        let store = DataStore::new();
        let region = store.register_typed("v", vec![1.0f64, 2.0]).unwrap();
        let accesses = vec![Access::read_write(&region)];
        let ctx = TaskContext::new(&store, &accesses);
        assert_eq!(ctx.elem_range(0), 0..2);
        assert_eq!(ctx.arg::<f64>(0), vec![1.0, 2.0]);
        ctx.out(0, &[3.0f64, 4.0]);
        assert_eq!(store.read(region).lock().as_f64(), &[3.0, 4.0]);
        assert_eq!(ctx.output_count(), 1);
    }

    #[test]
    #[should_panic(expected = "read-only access")]
    fn writing_through_input_access_panics() {
        let store = DataStore::new();
        let region = store.register_typed("v", vec![1.0f32]).unwrap();
        let accesses = vec![Access::read(&region)];
        let ctx = TaskContext::new(&store, &accesses);
        ctx.out(0, &[2.0f32]);
    }

    #[test]
    #[should_panic(expected = "write-only access")]
    fn reading_through_output_access_panics() {
        let store = DataStore::new();
        let region = store.register_typed("v", vec![1.0f32]).unwrap();
        let accesses = vec![Access::write(&region)];
        let ctx = TaskContext::new(&store, &accesses);
        let _ = ctx.arg::<f32>(0);
    }

    #[test]
    #[should_panic(expected = "declared as f32")]
    fn typed_accessor_checks_the_declared_width() {
        let store = DataStore::new();
        let region = store.register_typed("v", vec![1.0f32]).unwrap();
        let accesses = vec![Access::read(&region)];
        let ctx = TaskContext::new(&store, &accesses);
        let _ = ctx.arg::<f64>(0);
    }

    #[test]
    fn task_desc_splits_reads_and_writes() {
        let store = DataStore::new();
        let a = store.register_zeros::<f32>("a", 1).unwrap();
        let b = store.register_zeros::<f32>("b", 1).unwrap();
        let c = store.register_zeros::<f32>("c", 1).unwrap();
        let desc = TaskDesc::new(
            TaskTypeId(0),
            vec![Access::read(&a), Access::read_write(&b), Access::write(&c)],
        );
        assert_eq!(desc.read_accesses().count(), 2);
        assert_eq!(desc.write_accesses().count(), 2);
        assert!(desc.memo.is_none());
        let spec = MemoSpec::fixed_precision(0.5);
        assert_eq!(desc.with_memo(spec.clone()).memo, Some(spec));
    }
}
