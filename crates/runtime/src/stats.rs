//! Runtime-level execution statistics.
//!
//! These counters describe what the *runtime* did (tasks created, executed,
//! bypassed, deferred); the ATM engine keeps its own finer-grained counters
//! (hash hits per table, chosen `p`, training progress) in `atm-core`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters updated by the scheduler.
#[derive(Debug, Default)]
pub struct RuntimeStats {
    /// Tasks submitted to the runtime.
    pub submitted: AtomicU64,
    /// Tasks whose kernel was actually executed.
    pub executed: AtomicU64,
    /// Tasks bypassed because the interceptor memoized them (THT hit).
    pub bypassed: AtomicU64,
    /// Tasks deferred to an in-flight producer (IKT hit).
    pub deferred: AtomicU64,
    /// Total nanoseconds spent executing task kernels (across workers).
    pub kernel_ns: AtomicU64,
    /// Total nanoseconds spent in task creation (dependence analysis + TDG insertion).
    pub creation_ns: AtomicU64,
}

impl RuntimeStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Immutable snapshot of all counters.
    pub fn snapshot(&self) -> RuntimeStatsSnapshot {
        RuntimeStatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            bypassed: self.bypassed.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
            kernel_ns: self.kernel_ns.load(Ordering::Relaxed),
            creation_ns: self.creation_ns.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add(&self, counter: &AtomicU64, value: u64) {
        counter.fetch_add(value, Ordering::Relaxed);
    }

    pub(crate) fn incr(&self, counter: &AtomicU64) {
        self.add(counter, 1);
    }
}

/// A point-in-time copy of the runtime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStatsSnapshot {
    /// Tasks submitted to the runtime.
    pub submitted: u64,
    /// Tasks whose kernel was actually executed.
    pub executed: u64,
    /// Tasks bypassed because the interceptor memoized them (THT hit).
    pub bypassed: u64,
    /// Tasks deferred to an in-flight producer (IKT hit).
    pub deferred: u64,
    /// Total nanoseconds spent executing task kernels.
    pub kernel_ns: u64,
    /// Total nanoseconds spent creating tasks.
    pub creation_ns: u64,
}

impl RuntimeStatsSnapshot {
    /// Tasks that did not run their kernel (memoized + deferred).
    pub fn reused(&self) -> u64 {
        self.bypassed + self.deferred
    }

    /// The paper's reuse metric: percentage of submitted tasks whose
    /// execution was avoided.
    pub fn reuse_percent(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        100.0 * self.reused() as f64 / self.submitted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = RuntimeStats::new();
        stats.incr(&stats.submitted);
        stats.incr(&stats.submitted);
        stats.incr(&stats.executed);
        stats.incr(&stats.bypassed);
        stats.add(&stats.kernel_ns, 500);
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.executed, 1);
        assert_eq!(snap.bypassed, 1);
        assert_eq!(snap.deferred, 0);
        assert_eq!(snap.kernel_ns, 500);
        assert_eq!(snap.reused(), 1);
        assert!((snap.reuse_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_reuse_is_zero() {
        assert_eq!(RuntimeStatsSnapshot::default().reuse_percent(), 0.0);
    }
}
