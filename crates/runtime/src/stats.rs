//! Runtime-level execution statistics.
//!
//! These counters describe what the *runtime* did (tasks created, executed,
//! bypassed, deferred); the ATM engine keeps its own finer-grained counters
//! (hash hits per table, chosen `p`, training progress) in `atm-core`.
//!
//! The counters are **sharded per worker**: each worker writes only its own
//! cache-padded shard (submitting threads share the last shard) with
//! relaxed atomic adds, so steady-state task completion never contends on a
//! shared atomic. [`RuntimeStats::snapshot`] sums the shards; the
//! scheduler's `outstanding` release/acquire pair makes every count of a
//! finished task visible to a thread that returned from `taskwait`.

use atm_sync::atomic::{AtomicU64, Ordering};

/// One worker's private counter shard, padded to its own cache line so
/// neighbouring shards never false-share.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct WorkerStats {
    /// Tasks submitted to the runtime.
    pub submitted: AtomicU64,
    /// Tasks whose kernel was actually executed.
    pub executed: AtomicU64,
    /// Tasks bypassed because the interceptor memoized them (THT hit).
    pub bypassed: AtomicU64,
    /// Tasks deferred to an in-flight producer (IKT hit).
    pub deferred: AtomicU64,
    /// Nanoseconds spent executing task kernels on this worker.
    pub kernel_ns: AtomicU64,
    /// Nanoseconds spent in task creation (dependence analysis + TDG insertion).
    pub creation_ns: AtomicU64,
}

impl WorkerStats {
    /// Adds `value` to a counter with a relaxed atomic RMW. Worker shards
    /// have a single writer, but the master shard may be written by
    /// concurrent submitters (`Runtime` is `Sync`), so the update must be
    /// an atomic add — on a cache line owned by one core it costs the same
    /// as a plain store, and the sharding already removed the cross-worker
    /// contention.
    pub fn add(&self, counter: &AtomicU64, value: u64) {
        counter.fetch_add(value, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn incr(&self, counter: &AtomicU64) {
        self.add(counter, 1);
    }
}

/// Sharded runtime counters: one [`WorkerStats`] per worker plus one for the
/// master (submitting) thread.
#[derive(Debug)]
pub struct RuntimeStats {
    shards: Vec<WorkerStats>,
}

impl Default for RuntimeStats {
    fn default() -> Self {
        RuntimeStats::with_workers(1)
    }
}

impl RuntimeStats {
    /// Creates zeroed statistics for `workers` worker threads (shard index
    /// `workers` belongs to the master thread).
    pub fn with_workers(workers: usize) -> Self {
        RuntimeStats {
            shards: (0..workers + 1).map(|_| WorkerStats::default()).collect(),
        }
    }

    /// Creates zeroed statistics with a single worker shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard owned by `worker` (the master thread uses index `workers`).
    pub fn shard(&self, worker: usize) -> &WorkerStats {
        &self.shards[worker.min(self.shards.len() - 1)]
    }

    /// Immutable snapshot of all counters (sums the per-worker shards).
    /// The graph gauges (`live_nodes`/`retired_nodes`) are owned by the
    /// dependence graph, not the shards; [`crate::Runtime::stats`] fills
    /// them in.
    pub fn snapshot(&self) -> RuntimeStatsSnapshot {
        let mut snap = RuntimeStatsSnapshot::default();
        for shard in &self.shards {
            snap.submitted += shard.submitted.load(Ordering::Relaxed);
            snap.executed += shard.executed.load(Ordering::Relaxed);
            snap.bypassed += shard.bypassed.load(Ordering::Relaxed);
            snap.deferred += shard.deferred.load(Ordering::Relaxed);
            snap.kernel_ns += shard.kernel_ns.load(Ordering::Relaxed);
            snap.creation_ns += shard.creation_ns.load(Ordering::Relaxed);
        }
        snap
    }
}

/// A point-in-time copy of the runtime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStatsSnapshot {
    /// Tasks submitted to the runtime.
    pub submitted: u64,
    /// Tasks whose kernel was actually executed.
    pub executed: u64,
    /// Tasks bypassed because the interceptor memoized them (THT hit).
    pub bypassed: u64,
    /// Tasks deferred to an in-flight producer (IKT hit).
    pub deferred: u64,
    /// Total nanoseconds spent executing task kernels.
    pub kernel_ns: u64,
    /// Total nanoseconds spent creating tasks.
    pub creation_ns: u64,
    /// Graph nodes currently resident in the dependence graph (submitted
    /// minus retired). Bounded by the live task window, not the run length
    /// — the observable half of the node-retirement scheme.
    pub live_nodes: u64,
    /// Graph nodes retired so far (finished, all successors finished, slab
    /// slot recycled).
    pub retired_nodes: u64,
    /// Regions currently present in the dependence index (regions with an
    /// accessor entry in the live-access maps). Bounded by the regions the
    /// live task set actually touches — the observable half of region
    /// retirement under session churn.
    pub live_index_regions: u64,
}

impl RuntimeStatsSnapshot {
    /// Tasks that did not run their kernel (memoized + deferred).
    pub fn reused(&self) -> u64 {
        self.bypassed + self.deferred
    }

    /// The paper's reuse metric: percentage of submitted tasks whose
    /// execution was avoided.
    pub fn reuse_percent(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        100.0 * self.reused() as f64 / self.submitted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sums_across_worker_shards() {
        let stats = RuntimeStats::with_workers(2);
        let master = stats.shard(2);
        master.incr(&master.submitted);
        master.incr(&master.submitted);
        let w0 = stats.shard(0);
        w0.incr(&w0.executed);
        w0.add(&w0.kernel_ns, 300);
        let w1 = stats.shard(1);
        w1.incr(&w1.bypassed);
        w1.add(&w1.kernel_ns, 200);
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.executed, 1);
        assert_eq!(snap.bypassed, 1);
        assert_eq!(snap.deferred, 0);
        assert_eq!(snap.kernel_ns, 500);
        assert_eq!(snap.reused(), 1);
        assert!((snap.reuse_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_worker_indices_fall_back_to_the_master_shard() {
        let stats = RuntimeStats::with_workers(1);
        let shard = stats.shard(99);
        shard.incr(&shard.deferred);
        assert_eq!(stats.snapshot().deferred, 1);
    }

    #[test]
    fn empty_stats_reuse_is_zero() {
        assert_eq!(RuntimeStatsSnapshot::default().reuse_percent(), 0.0);
    }
}
