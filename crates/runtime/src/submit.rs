//! Validated task submission: the fluent [`TaskBuilder`] and the
//! [`SubmitError`] taxonomy.
//!
//! The untyped API accepted any `TaskDesc` and let mismatches between the
//! declared accesses and the task type's expectations surface as panics deep
//! inside a worker thread (or worse, as silently wrong hash keys or copy
//! widths inside the ATM engine). The fluent builder returned by
//! [`crate::Runtime::task`] keeps submissions well-formed *by construction*
//! — accesses are declared through typed [`Region<T>`] handles — and
//! [`crate::Runtime::try_submit`] validates every descriptor against the
//! task type's declared [`TaskSignature`] and against the store before the
//! task enters the dependence graph:
//!
//! * the task type must be registered ([`SubmitError::UnknownTaskType`]);
//! * every region must exist in this runtime's store
//!   ([`SubmitError::UnknownRegion`]);
//! * every access's derived element type must match what the store actually
//!   holds ([`SubmitError::RegionTypeMismatch`] — catches handles smuggled
//!   in from another runtime's store);
//! * when the type declared a signature: the number of accesses must fit it
//!   ([`SubmitError::ArityMismatch`]), and each position must match the
//!   declared direction ([`SubmitError::ModeMismatch`]) and element type
//!   ([`SubmitError::TypeMismatch`]);
//! * when the submission carries a per-instance [`MemoSpec`], the spec's
//!   per-argument precision overrides must name real, readable accesses
//!   ([`SubmitError::InvalidMemoSpec`]).

use crate::access::{Access, AccessMode};
use crate::memo::{MemoSpec, MemoSpecError};
use crate::region::{DataStore, Elem, ElemType, Region, RegionId};
use crate::scheduler::Runtime;
use crate::task::{TaskDesc, TaskId, TaskSignature, TaskTypeId};

/// Why a task submission was rejected.
///
/// Not `Eq` because [`SubmitError::InvalidMemoSpec`] carries the offending
/// floating-point values.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The task type was never registered with this runtime.
    UnknownTaskType {
        /// The offending task type id.
        task_type: TaskTypeId,
    },
    /// An access names a region this runtime's store does not know.
    UnknownRegion {
        /// Position of the offending access.
        index: usize,
        /// The offending region id.
        region: RegionId,
    },
    /// An access names a region that was deregistered (e.g. a request
    /// arriving after its session closed). Distinguished from
    /// [`SubmitError::UnknownRegion`] so serving tiers can report a dead
    /// session instead of a malformed request.
    RegionRetired {
        /// Position of the offending access.
        index: usize,
        /// The offending region id.
        region: RegionId,
    },
    /// The runtime's live-task admission window is full
    /// (see [`crate::RuntimeBuilder::max_live_tasks`]). Nothing was
    /// submitted; the caller should back off and retry once in-flight work
    /// drains — the runtime never queues beyond the window.
    Overloaded {
        /// Live (submitted but unfinished) tasks at rejection time.
        live: u64,
        /// The configured window.
        capacity: u64,
    },
    /// An access's declared element type disagrees with what the store
    /// holds for that region (e.g. a handle forged from a raw id, or taken
    /// from a different runtime's store).
    RegionTypeMismatch {
        /// Position of the offending access.
        index: usize,
        /// The element type the access declared.
        declared: ElemType,
        /// The element type the store actually holds.
        stored: ElemType,
    },
    /// The number of accesses does not fit the task type's signature.
    ArityMismatch {
        /// Smallest accepted number of accesses.
        min: usize,
        /// Largest accepted number of accesses (`None` = unbounded).
        max: Option<usize>,
        /// The number of accesses the submission declared.
        got: usize,
    },
    /// An access's direction disagrees with the signature at its position.
    ModeMismatch {
        /// Position of the offending access.
        index: usize,
        /// The direction the signature declares.
        expected: AccessMode,
        /// The direction the submission declared.
        got: AccessMode,
    },
    /// An access's element type disagrees with the signature at its position.
    TypeMismatch {
        /// Position of the offending access.
        index: usize,
        /// The element type the signature declares.
        expected: ElemType,
        /// The element type the submission declared.
        got: ElemType,
    },
    /// The per-instance memoization spec is invalid for this submission
    /// (bad threshold/precision values, or a per-argument override naming a
    /// missing or write-only access).
    InvalidMemoSpec {
        /// Why the spec was rejected.
        error: MemoSpecError,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownTaskType { task_type } => {
                write!(f, "task type {task_type:?} was not registered with this runtime")
            }
            SubmitError::UnknownRegion { index, region } => {
                write!(f, "access #{index} names {region:?}, which this store does not know")
            }
            SubmitError::RegionRetired { index, region } => {
                write!(f, "access #{index} names {region:?}, which was deregistered")
            }
            SubmitError::Overloaded { live, capacity } => write!(
                f,
                "the live-task window is full ({live} of {capacity}); retry after in-flight work drains"
            ),
            SubmitError::RegionTypeMismatch { index, declared, stored } => write!(
                f,
                "access #{index} is declared as {declared} but the region holds {stored}"
            ),
            SubmitError::ArityMismatch { min, max, got } => match max {
                Some(max) if max == min => {
                    write!(f, "the task type expects {min} accesses, the submission has {got}")
                }
                Some(max) => write!(
                    f,
                    "the task type expects between {min} and {max} accesses, the submission has {got}"
                ),
                None => write!(
                    f,
                    "the task type expects at least {min} accesses, the submission has {got}"
                ),
            },
            SubmitError::ModeMismatch { index, expected, got } => write!(
                f,
                "access #{index} is declared `{got}` but the task type's signature expects `{expected}`"
            ),
            SubmitError::TypeMismatch { index, expected, got } => write!(
                f,
                "access #{index} has element type {got} but the task type's signature expects {expected}"
            ),
            SubmitError::InvalidMemoSpec { error } => {
                write!(f, "invalid memoization spec: {error}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Validates a descriptor's accesses against a declared signature.
pub(crate) fn check_signature(
    signature: &TaskSignature,
    accesses: &[Access],
) -> Result<(), SubmitError> {
    let min = signature.min_arity();
    let max = signature.max_arity();
    if accesses.len() < min || max.is_some_and(|max| accesses.len() > max) {
        return Err(SubmitError::ArityMismatch {
            min,
            max,
            got: accesses.len(),
        });
    }
    for (index, access) in accesses.iter().enumerate() {
        let (expected_mode, expected_elem) = match signature.fixed.get(index) {
            Some(param) => (Some(param.mode), param.elem),
            None => {
                let tail = signature
                    .variadic
                    .expect("arity check guarantees extra accesses imply a variadic tail");
                (tail.mode, tail.elem)
            }
        };
        if let Some(expected) = expected_mode {
            if access.mode != expected {
                return Err(SubmitError::ModeMismatch {
                    index,
                    expected,
                    got: access.mode,
                });
            }
        }
        if access.elem != expected_elem {
            return Err(SubmitError::TypeMismatch {
                index,
                expected: expected_elem,
                got: access.elem,
            });
        }
    }
    Ok(())
}

/// Validates a per-instance memoization spec against the actual accesses.
pub(crate) fn check_memo(spec: &MemoSpec, accesses: &[Access]) -> Result<(), SubmitError> {
    spec.validate_against_accesses(accesses)
        .map_err(|error| SubmitError::InvalidMemoSpec { error })
}

/// Validates every access against the store: the region must exist (and not
/// have been deregistered) and hold the element type the access declares.
pub(crate) fn check_store(store: &DataStore, accesses: &[Access]) -> Result<(), SubmitError> {
    // One registry lock for the whole access list; the cached element types
    // keep this off every region's data lock (submission is a hot path).
    // Only the rejection path pays for a second lookup, to tell a retired
    // region apart from one that never existed.
    let stored_types = store.try_elem_types(accesses.iter().map(|a| a.region));
    for (index, (access, stored)) in accesses.iter().zip(stored_types).enumerate() {
        let stored = stored.ok_or_else(|| match store.region_status(access.region) {
            crate::region::RegionStatus::Retired => SubmitError::RegionRetired {
                index,
                region: access.region,
            },
            _ => SubmitError::UnknownRegion {
                index,
                region: access.region,
            },
        })?;
        if stored != access.elem {
            return Err(SubmitError::RegionTypeMismatch {
                index,
                declared: access.elem,
                stored,
            });
        }
    }
    Ok(())
}

/// Fluent, validating builder for one task submission, obtained from
/// [`Runtime::task`].
///
/// ```
/// use atm_runtime::prelude::*;
///
/// let rt = RuntimeBuilder::new().build();
/// let x = rt.store().register_typed("x", vec![1.0f64, 2.0]).unwrap();
/// let y = rt.store().register_zeros::<f64>("y", 2).unwrap();
/// let double = rt.register_task_type(
///     TaskTypeBuilder::new("double", |ctx| {
///         let x = ctx.arg::<f64>(0);
///         let y: Vec<f64> = x.iter().map(|v| 2.0 * v).collect();
///         ctx.out(1, &y);
///     })
///     .arg::<f64>()
///     .out::<f64>()
///     .build(),
/// );
/// let id = rt.task(double).reads(&x).writes(&y).submit().unwrap();
/// rt.taskwait();
/// println!("finished {id}");
/// assert_eq!(rt.store().read(y).lock().as_f64(), &[2.0, 4.0]);
/// ```
#[must_use = "a task builder does nothing until `submit()` is called"]
pub struct TaskBuilder<'rt> {
    runtime: &'rt Runtime,
    task_type: TaskTypeId,
    accesses: Vec<Access>,
    memo: Option<MemoSpec>,
}

impl<'rt> TaskBuilder<'rt> {
    pub(crate) fn new(runtime: &'rt Runtime, task_type: TaskTypeId) -> Self {
        TaskBuilder {
            runtime,
            task_type,
            accesses: Vec::new(),
            memo: None,
        }
    }

    /// Declares the next access as a whole-region read (`in` clause).
    pub fn reads<T: Elem>(mut self, region: &Region<T>) -> Self {
        self.accesses.push(Access::read(region));
        self
    }

    /// Declares the next access as a whole-region write (`out` clause).
    pub fn writes<T: Elem>(mut self, region: &Region<T>) -> Self {
        self.accesses.push(Access::write(region));
        self
    }

    /// Declares the next access as a whole-region read-write (`inout`
    /// clause).
    pub fn reads_writes<T: Elem>(mut self, region: &Region<T>) -> Self {
        self.accesses.push(Access::read_write(region));
        self
    }

    /// Appends a pre-built access (escape hatch for ranged accesses built
    /// with [`Access::with_range`]). The access is validated like any other.
    pub fn access(mut self, access: Access) -> Self {
        self.accesses.push(access);
        self
    }

    /// Opts this task instance into memoization with the given policy,
    /// regardless of whether the task type was registered as memoizable.
    /// Accepts anything convertible into a [`MemoSpec`].
    ///
    /// Policy is resolved **per task type**, by the first memoizable
    /// instance of the type that reaches the engine: that instance's spec
    /// (or the type-level spec, when the instance carries none) configures
    /// the type's key generator and training controller for the rest of
    /// the run. Specs attached to later instances of an already-resolved
    /// type are validated but do not re-configure the type — declare
    /// diverging policies as separate task types instead.
    pub fn memo(mut self, spec: impl Into<MemoSpec>) -> Self {
        self.memo = Some(spec.into());
        self
    }

    /// Validates the accumulated descriptor and submits it.
    pub fn submit(self) -> Result<TaskId, SubmitError> {
        let TaskBuilder {
            runtime,
            task_type,
            accesses,
            memo,
        } = self;
        runtime.try_submit(TaskDesc {
            task_type,
            accesses,
            memo,
            submitted_at_ns: 0,
            notify: None,
        })
    }
}

/// Fluent, validating builder for a **batch** of task submissions, obtained
/// from [`Runtime::batch`] (heterogeneous types) or
/// [`crate::Runtime::tasks`] (one pinned type).
///
/// Each staged task is opened with [`BatchBuilder::task`] (or
/// [`BatchBuilder::next`] when the batch was pinned to a type) and described
/// with the same access/memo vocabulary as the single-task
/// [`TaskBuilder`]. [`BatchBuilder::submit_all`] validates every staged
/// descriptor — nothing is submitted on error — and hands the batch to the
/// dependence graph in one pass: the submission lock, each touched slab
/// shard's write lock and each touched live-index shard are taken **once
/// per batch**, which is what removes the per-task locking cost from the
/// master thread's creation path (the paper's Figure-8 bottleneck).
///
/// ```
/// use atm_runtime::prelude::*;
///
/// let rt = RuntimeBuilder::new().build();
/// let cell = rt.store().register_zeros::<f64>("cell", 1).unwrap();
/// let incr = rt.register_task_type(
///     TaskTypeBuilder::new("incr", |ctx| {
///         let v = ctx.arg::<f64>(0)[0];
///         ctx.out(0, &[v + 1.0]);
///     })
///     .inout::<f64>()
///     .build(),
/// );
/// let mut batch = rt.tasks(incr);
/// for _ in 0..3 {
///     batch = batch.next().reads_writes(&cell);
/// }
/// let ids = batch.submit_all().unwrap();
/// assert_eq!(ids.len(), 3);
/// rt.taskwait();
/// assert_eq!(rt.store().read(cell).lock().as_f64(), &[3.0]);
/// ```
#[must_use = "a batch builder does nothing until `submit_all()` is called"]
pub struct BatchBuilder<'rt> {
    runtime: &'rt Runtime,
    default_type: Option<TaskTypeId>,
    staged: Vec<TaskDesc>,
    current: Option<TaskDesc>,
    independent: bool,
}

impl<'rt> BatchBuilder<'rt> {
    pub(crate) fn new(runtime: &'rt Runtime, default_type: Option<TaskTypeId>) -> Self {
        BatchBuilder {
            runtime,
            default_type,
            staged: Vec::new(),
            current: None,
            independent: false,
        }
    }

    /// Declares that no two tasks **in this batch** conflict with each
    /// other (none writes a byte range another member touches); dependences
    /// on earlier, unfinished tasks outside the batch are still derived.
    /// The dependence pass then skips the per-member conflict bookkeeping,
    /// making wide independent waves cheap to open — see
    /// [`Runtime::try_submit_all_independent`]. The declaration is verified
    /// in debug builds and trusted in release builds.
    pub fn independent(mut self) -> Self {
        self.independent = true;
        self
    }

    fn seal_current(&mut self) {
        if let Some(desc) = self.current.take() {
            self.staged.push(desc);
        }
    }

    fn current_mut(&mut self) -> &mut TaskDesc {
        self.current
            .as_mut()
            .expect("open a task with `task(tt)` (or `next()`) before declaring accesses")
    }

    /// Opens the next staged task as an instance of `task_type`; the
    /// previously open task (if any) is sealed as staged.
    pub fn task(mut self, task_type: TaskTypeId) -> Self {
        self.seal_current();
        self.current = Some(TaskDesc::new(task_type, Vec::new()));
        self
    }

    /// Opens the next staged task as an instance of the batch's pinned type
    /// (see [`crate::Runtime::tasks`]).
    ///
    /// # Panics
    /// Panics when the batch was created with [`Runtime::batch`] and no
    /// type was pinned; use [`BatchBuilder::task`] there instead.
    pub fn next(self) -> Self {
        let task_type = self
            .default_type
            .expect("`next()` needs the pinned task type of `Runtime::tasks`; use `task(tt)`");
        self.task(task_type)
    }

    /// Declares the next access of the open task as a whole-region read
    /// (`in` clause).
    pub fn reads<T: Elem>(mut self, region: &Region<T>) -> Self {
        self.current_mut().accesses.push(Access::read(region));
        self
    }

    /// Declares the next access of the open task as a whole-region write
    /// (`out` clause).
    pub fn writes<T: Elem>(mut self, region: &Region<T>) -> Self {
        self.current_mut().accesses.push(Access::write(region));
        self
    }

    /// Declares the next access of the open task as a whole-region
    /// read-write (`inout` clause).
    pub fn reads_writes<T: Elem>(mut self, region: &Region<T>) -> Self {
        self.current_mut().accesses.push(Access::read_write(region));
        self
    }

    /// Appends a pre-built access to the open task (escape hatch for ranged
    /// accesses built with [`Access::with_range`]).
    pub fn access(mut self, access: Access) -> Self {
        self.current_mut().accesses.push(access);
        self
    }

    /// Opts the open task instance into memoization with the given policy
    /// (same semantics as [`TaskBuilder::memo`]).
    pub fn memo(mut self, spec: impl Into<MemoSpec>) -> Self {
        self.current_mut().memo = Some(spec.into());
        self
    }

    /// Stages a pre-built descriptor verbatim (sealing the open task
    /// first). Escape hatch for callers that assemble [`TaskDesc`]s
    /// directly.
    pub fn stage(mut self, desc: TaskDesc) -> Self {
        self.seal_current();
        self.staged.push(desc);
        self
    }

    /// Number of tasks staged so far (including the open one).
    pub fn len(&self) -> usize {
        self.staged.len() + usize::from(self.current.is_some())
    }

    /// True when nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates all staged descriptors and submits them as one batch,
    /// returning their ids in staging order. On error nothing was
    /// submitted. An empty batch is a no-op returning no ids.
    pub fn submit_all(mut self) -> Result<Vec<TaskId>, SubmitError> {
        self.seal_current();
        if self.independent {
            self.runtime.try_submit_all_independent(self.staged)
        } else {
            self.runtime.try_submit_all(self.staged)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full submit-validation behaviour is covered by the runtime-level
    // tests in `scheduler.rs` and the integration suite; these unit tests
    // exercise the pure checking helpers directly.
    use crate::task::{SigParam, VariadicSig};

    fn store_with_f32(n: usize) -> (DataStore, Vec<Region<f32>>) {
        let store = DataStore::new();
        let regions = (0..n)
            .map(|i| store.register_zeros::<f32>(format!("r{i}"), 4).unwrap())
            .collect();
        (store, regions)
    }

    fn fixed_sig(params: &[(AccessMode, ElemType)]) -> TaskSignature {
        TaskSignature {
            fixed: params
                .iter()
                .map(|&(mode, elem)| SigParam { mode, elem })
                .collect(),
            variadic: None,
        }
    }

    #[test]
    fn signature_accepts_matching_accesses() {
        let (_store, r) = store_with_f32(2);
        let sig = fixed_sig(&[
            (AccessMode::In, ElemType::F32),
            (AccessMode::Out, ElemType::F32),
        ]);
        let accesses = vec![Access::read(&r[0]), Access::write(&r[1])];
        assert_eq!(check_signature(&sig, &accesses), Ok(()));
    }

    #[test]
    fn signature_rejects_wrong_arity() {
        let (_store, r) = store_with_f32(1);
        let sig = fixed_sig(&[
            (AccessMode::In, ElemType::F32),
            (AccessMode::Out, ElemType::F32),
        ]);
        let err = check_signature(&sig, &[Access::read(&r[0])]).unwrap_err();
        assert_eq!(
            err,
            SubmitError::ArityMismatch {
                min: 2,
                max: Some(2),
                got: 1
            }
        );
    }

    #[test]
    fn signature_rejects_wrong_mode_and_type() {
        let (store, r) = store_with_f32(2);
        let sig = fixed_sig(&[
            (AccessMode::In, ElemType::F32),
            (AccessMode::Out, ElemType::F32),
        ]);
        let err = check_signature(&sig, &[Access::write(&r[0]), Access::write(&r[1])]).unwrap_err();
        assert_eq!(
            err,
            SubmitError::ModeMismatch {
                index: 0,
                expected: AccessMode::In,
                got: AccessMode::Out
            }
        );

        let doubles = store.register_zeros::<f64>("d", 4).unwrap();
        let err =
            check_signature(&sig, &[Access::read(&r[0]), Access::write(&doubles)]).unwrap_err();
        assert_eq!(
            err,
            SubmitError::TypeMismatch {
                index: 1,
                expected: ElemType::F32,
                got: ElemType::F64
            }
        );
    }

    #[test]
    fn variadic_tail_validates_count_mode_and_type() {
        let (_store, r) = store_with_f32(4);
        let sig = TaskSignature {
            fixed: vec![SigParam {
                mode: AccessMode::InOut,
                elem: ElemType::F32,
            }],
            variadic: Some(VariadicSig {
                mode: Some(AccessMode::In),
                elem: ElemType::F32,
                min: 2,
            }),
        };
        let ok = vec![
            Access::read_write(&r[0]),
            Access::read(&r[1]),
            Access::read(&r[2]),
        ];
        assert_eq!(check_signature(&sig, &ok), Ok(()));

        let too_few = vec![Access::read_write(&r[0]), Access::read(&r[1])];
        assert_eq!(
            check_signature(&sig, &too_few),
            Err(SubmitError::ArityMismatch {
                min: 3,
                max: None,
                got: 2
            })
        );

        let wrong_tail_mode = vec![
            Access::read_write(&r[0]),
            Access::read(&r[1]),
            Access::write(&r[2]),
        ];
        assert_eq!(
            check_signature(&sig, &wrong_tail_mode),
            Err(SubmitError::ModeMismatch {
                index: 2,
                expected: AccessMode::In,
                got: AccessMode::Out
            })
        );
    }

    #[test]
    fn store_check_rejects_unknown_and_mistyped_regions() {
        let (store, r) = store_with_f32(1);
        assert_eq!(check_store(&store, &[Access::read(&r[0])]), Ok(()));

        // A handle from a different store: index 3 does not exist here.
        let other = DataStore::new();
        for i in 0..4 {
            other.register_zeros::<f32>(format!("o{i}"), 1).unwrap();
        }
        let foreign = other.register_zeros::<f32>("o4", 1).unwrap();
        assert_eq!(
            check_store(&store, &[Access::read(&foreign)]),
            Err(SubmitError::UnknownRegion {
                index: 0,
                region: foreign.id()
            })
        );

        // A handle whose slot exists in this store but holds another type
        // (forged through the crate-private constructor; user code cannot
        // build one, which is the point of the check).
        let mistyped = Region::<f64>::new(r[0].id());
        assert_eq!(
            check_store(&store, &[Access::read(&mistyped)]),
            Err(SubmitError::RegionTypeMismatch {
                index: 0,
                declared: ElemType::F64,
                stored: ElemType::F32
            })
        );
    }

    #[test]
    fn submit_errors_render_readable_messages() {
        let messages = [
            SubmitError::UnknownTaskType {
                task_type: TaskTypeId::from_raw(3),
            }
            .to_string(),
            SubmitError::UnknownRegion {
                index: 1,
                region: RegionId::from_raw(9),
            }
            .to_string(),
            SubmitError::RegionTypeMismatch {
                index: 0,
                declared: ElemType::F32,
                stored: ElemType::F64,
            }
            .to_string(),
            SubmitError::ArityMismatch {
                min: 2,
                max: Some(2),
                got: 3,
            }
            .to_string(),
            SubmitError::ArityMismatch {
                min: 1,
                max: Some(4),
                got: 5,
            }
            .to_string(),
            SubmitError::ArityMismatch {
                min: 2,
                max: None,
                got: 0,
            }
            .to_string(),
            SubmitError::ModeMismatch {
                index: 0,
                expected: AccessMode::In,
                got: AccessMode::Out,
            }
            .to_string(),
            SubmitError::TypeMismatch {
                index: 2,
                expected: ElemType::I32,
                got: ElemType::U8,
            }
            .to_string(),
            SubmitError::InvalidMemoSpec {
                error: MemoSpecError::ArgNotRead { index: 1 },
            }
            .to_string(),
        ];
        for message in messages {
            assert!(!message.is_empty());
        }
    }
}
