//! The region byte-path audit suite, written to run under Miri.
//!
//! `crates/runtime` is `#![forbid(unsafe_code)]`: the region store keeps
//! typed, locked buffers where the original runtime tracked raw address
//! ranges, so there is no `unsafe` block to audit line by line. What CAN
//! still go wrong without `unsafe` is logic on the byte views — element
//! widths, range arithmetic, cross-type restores — so this suite drives
//! exactly those paths (read, write, slice, restore) and the nightly Miri
//! job replays it to certify the absence of UB end to end, `forbid` attr
//! included.

use atm_runtime::{DataStore, ElemType, RegionData};

#[test]
fn typed_views_round_trip_through_bytes() {
    let store = DataStore::new();
    let r = store
        .register_typed::<f32>("f", vec![1.0, -2.5, 3.25, 0.0])
        .unwrap();

    {
        let guard = store.read(r);
        let data = guard.lock();
        assert_eq!(data.elem_type(), ElemType::F32);
        assert_eq!(data.len(), 4);
        assert_eq!(data.size_bytes(), 16);
        assert_eq!(data.as_f32(), &[1.0, -2.5, 3.25, 0.0]);
        // Byte-level views agree with the typed view.
        let bytes = data.to_bytes();
        assert_eq!(bytes.len(), 16);
        assert_eq!(&bytes[4..8], (-2.5f32).to_le_bytes());
        assert_eq!(data.byte_at(4), (-2.5f32).to_le_bytes()[0]);
        assert_eq!(data.bytes_in_elem_range(1..3).len(), 8);
    }

    // Write through the typed mutable view; the byte view follows.
    store.write(r).lock().as_f32_mut()[1] = 7.5;
    assert_eq!(store.read(r).lock().to_bytes()[4..8], 7.5f32.to_le_bytes());
}

#[test]
fn slice_write_and_restore_preserve_shape() {
    let store = DataStore::new();
    let r = store.register_typed::<i32>("i", (0..8).collect()).unwrap();

    // Slice out the middle, double it, write it back shifted.
    let middle = store.read(r).lock().slice_elems(2..5);
    assert_eq!(middle.as_i32(), &[2, 3, 4]);
    let doubled = RegionData::I32(middle.as_i32().iter().map(|v| v * 2).collect());
    store.write(r).lock().write_elems(5..8, &doubled);
    assert_eq!(store.contents(&r), vec![0, 1, 2, 3, 4, 4, 6, 8]);

    // Snapshot / mutate / restore: the checkpointing path the ATM engine
    // uses for deferred copy-outs.
    let checkpoint = store.snapshot(r);
    store.write(r).lock().as_i32_mut().fill(-1);
    assert_eq!(store.contents(&r), vec![-1; 8]);
    store.restore(r, &checkpoint);
    assert_eq!(store.contents(&r), vec![0, 1, 2, 3, 4, 4, 6, 8]);
}

#[test]
fn every_element_type_exposes_consistent_bytes() {
    let store = DataStore::new();
    let f64s = store.register_typed::<f64>("f64", vec![1.5, 2.5]).unwrap();
    let i64s = store
        .register_typed::<i64>("i64", vec![-1, i64::MAX])
        .unwrap();
    let u8s = store.register_typed::<u8>("u8", vec![0xAB, 0xCD]).unwrap();

    assert_eq!(store.read(f64s).lock().size_bytes(), 16);
    assert_eq!(store.read(i64s).lock().size_bytes(), 16);
    assert_eq!(store.read(u8s).lock().size_bytes(), 2);
    assert_eq!(
        store.read(f64s).lock().to_bytes()[0..8],
        1.5f64.to_le_bytes()
    );
    assert_eq!(
        store.read(i64s).lock().to_bytes()[0..8],
        (-1i64).to_le_bytes()
    );
    assert_eq!(store.read(u8s).lock().to_bytes(), vec![0xAB, 0xCD]);
    assert_eq!(store.read(u8s).lock().byte_at(1), 0xCD);
}
