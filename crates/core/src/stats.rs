//! ATM engine statistics.
//!
//! These counters feed most of the evaluation: reuse percentages, the chosen
//! `p` per task type, the memory overhead of Table III, the hash/copy time
//! split of Figure 7, and the reuse-provenance events behind Figure 9.

use atm_hash::Percentage;
use atm_runtime::{TaskId, TaskTypeId};
use atm_sync::atomic::{AtomicU64, Ordering};
use atm_sync::Mutex;
use std::collections::HashMap;

/// One reuse event: `consumer` had its outputs provided by `producer`
/// (either through the THT or through an IKT postponed copy-out).
///
/// Figure 9 plots, per producer task id (normalised by the total task
/// count), the cumulative number of reuses it generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseEvent {
    /// The task whose stored outputs were reused.
    pub producer: TaskId,
    /// The task that skipped execution thanks to the reuse.
    pub consumer: TaskId,
    /// Whether the reuse came from the THT (`false` means IKT).
    pub from_tht: bool,
}

/// Per-task-type summary exposed after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeSummary {
    /// Task type name.
    pub name: String,
    /// Tasks of this type seen by the engine.
    pub seen: u64,
    /// Tasks bypassed via the THT.
    pub tht_bypassed: u64,
    /// Tasks deferred via the IKT.
    pub ikt_deferred: u64,
    /// Tasks executed during the training phase despite a THT hit.
    pub training_hits: u64,
    /// The selection percentage in effect at the end of the run.
    pub final_p: f64,
    /// Whether the controller finished training (steady state).
    pub steady: bool,
    /// Number of output regions black-listed as unstable.
    pub unstable_outputs: usize,
    /// Number of adaptive down-shifts (`p` halved again after a window of
    /// over-precise acceptances; only for specs that opted in).
    pub down_shifts: u64,
}

/// Aggregate counters of the ATM engine.
#[derive(Debug, Default)]
pub struct AtmStats {
    /// Tasks of memoizable types handled by the engine.
    pub seen: AtomicU64,
    /// Tasks bypassed with outputs copied from the THT.
    pub tht_bypassed: AtomicU64,
    /// Tasks deferred to an in-flight producer.
    pub ikt_deferred: AtomicU64,
    /// THT hits that were verified by execution during training.
    pub training_hits: AtomicU64,
    /// Tasks executed (memoizable types only).
    pub executed: AtomicU64,
    /// Nanoseconds spent computing hash keys.
    pub hash_ns: AtomicU64,
    /// Nanoseconds spent copying outputs (THT hits, IKT copy-outs, THT updates).
    pub copy_ns: AtomicU64,
    /// Reuse provenance events (Figure 9).
    pub reuse_events: Mutex<Vec<ReuseEvent>>,
}

impl AtmStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add(&self, counter: &AtomicU64, value: u64) {
        counter.fetch_add(value, Ordering::Relaxed);
    }

    pub(crate) fn incr(&self, counter: &AtomicU64) {
        self.add(counter, 1);
    }

    pub(crate) fn record_reuse(&self, event: ReuseEvent) {
        self.reuse_events.lock().push(event);
    }

    /// Immutable snapshot of the aggregate counters.
    pub fn snapshot(&self) -> AtmStatsSnapshot {
        AtmStatsSnapshot {
            seen: self.seen.load(Ordering::Relaxed),
            tht_bypassed: self.tht_bypassed.load(Ordering::Relaxed),
            ikt_deferred: self.ikt_deferred.load(Ordering::Relaxed),
            training_hits: self.training_hits.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            hash_ns: self.hash_ns.load(Ordering::Relaxed),
            copy_ns: self.copy_ns.load(Ordering::Relaxed),
        }
    }

    /// The recorded reuse events (cloned).
    pub fn reuse_events(&self) -> Vec<ReuseEvent> {
        self.reuse_events.lock().clone()
    }
}

/// Point-in-time copy of the aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtmStatsSnapshot {
    /// Tasks of memoizable types handled by the engine.
    pub seen: u64,
    /// Tasks bypassed with outputs copied from the THT.
    pub tht_bypassed: u64,
    /// Tasks deferred to an in-flight producer.
    pub ikt_deferred: u64,
    /// THT hits verified by execution during training.
    pub training_hits: u64,
    /// Tasks executed (memoizable types only).
    pub executed: u64,
    /// Nanoseconds spent computing hash keys.
    pub hash_ns: u64,
    /// Nanoseconds spent copying outputs.
    pub copy_ns: u64,
}

impl AtmStatsSnapshot {
    /// Tasks whose execution was avoided.
    pub fn reused(&self) -> u64 {
        self.tht_bypassed + self.ikt_deferred
    }

    /// The paper's reuse metric over the tasks the engine saw.
    pub fn reuse_percent(&self) -> f64 {
        if self.seen == 0 {
            return 0.0;
        }
        100.0 * self.reused() as f64 / self.seen as f64
    }
}

/// Tracks per-type summaries built up by the engine.
#[derive(Debug, Default)]
pub struct TypeSummaries {
    inner: Mutex<HashMap<TaskTypeId, TypeSummary>>,
}

impl TypeSummaries {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Updates (or creates) the summary of one type.
    pub fn update(&self, type_id: TaskTypeId, f: impl FnOnce(&mut TypeSummary)) {
        let mut inner = self.inner.lock();
        let entry = inner.entry(type_id).or_insert_with(|| TypeSummary {
            name: String::new(),
            seen: 0,
            tht_bypassed: 0,
            ikt_deferred: 0,
            training_hits: 0,
            final_p: Percentage::FULL.fraction(),
            steady: false,
            unstable_outputs: 0,
            down_shifts: 0,
        });
        f(entry);
    }

    /// All summaries (cloned), keyed by type id.
    pub fn all(&self) -> HashMap<TaskTypeId, TypeSummary> {
        self.inner.lock().clone()
    }

    /// The summary of one type, if it was ever seen.
    pub fn get(&self, type_id: TaskTypeId) -> Option<TypeSummary> {
        self.inner.lock().get(&type_id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reuse_percent() {
        let stats = AtmStats::new();
        for _ in 0..10 {
            stats.incr(&stats.seen);
        }
        stats.incr(&stats.tht_bypassed);
        stats.incr(&stats.tht_bypassed);
        stats.incr(&stats.ikt_deferred);
        stats.add(&stats.hash_ns, 1000);
        let snap = stats.snapshot();
        assert_eq!(snap.seen, 10);
        assert_eq!(snap.reused(), 3);
        assert!((snap.reuse_percent() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn reuse_events_round_trip() {
        let stats = AtmStats::new();
        stats.record_reuse(ReuseEvent {
            producer: TaskId::from_raw(1),
            consumer: TaskId::from_raw(5),
            from_tht: true,
        });
        stats.record_reuse(ReuseEvent {
            producer: TaskId::from_raw(2),
            consumer: TaskId::from_raw(6),
            from_tht: false,
        });
        let events = stats.reuse_events();
        assert_eq!(events.len(), 2);
        assert!(events[0].from_tht);
        assert_eq!(events[1].producer, TaskId::from_raw(2));
    }

    #[test]
    fn type_summaries_accumulate() {
        let summaries = TypeSummaries::new();
        let t = TaskTypeId::from_raw(3);
        summaries.update(t, |s| {
            s.name = "bs_thread".into();
            s.seen += 1;
        });
        summaries.update(t, |s| s.seen += 1);
        let got = summaries.get(t).unwrap();
        assert_eq!(got.name, "bs_thread");
        assert_eq!(got.seen, 2);
        assert_eq!(summaries.all().len(), 1);
        assert!(summaries.get(TaskTypeId::from_raw(9)).is_none());
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = AtmStats::new().snapshot();
        assert_eq!(snap.reuse_percent(), 0.0);
        assert_eq!(snap.reused(), 0);
    }
}
