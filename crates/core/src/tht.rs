//! The Task History Table (THT).
//!
//! The THT is the central memoization structure of ATM (§III-A, Figure 1):
//! a table of `2^N` buckets, each holding up to `M` entries. An entry stores
//! the 8-byte hash key of a completed task's (sampled) inputs, the
//! percentage `p` the key was computed with, and a full copy of the task's
//! outputs. Buckets are protected by individual locks that allow parallel
//! reads and exclusive writes; when a bucket is full the oldest entry is
//! evicted first-in-first-out.
//!
//! Since the introduction of the `atm-store` crate the THT is a thin façade
//! over [`MemoStore`]: the paper's `(N, M)` geometry with FIFO eviction and
//! no byte budget is one configuration of the store, and that configuration
//! reproduces the original table bit for bit. The engine configures the
//! store with whatever policy/budget/persistence the [`crate::AtmConfig`]
//! asks for; this module keeps the paper-facing vocabulary and API.

use crate::snapshot::OutputSnapshot;
use atm_runtime::TaskId;
use atm_store::{MemoStore, StoreConfig, StoreCountersSnapshot};
use std::sync::Arc;

pub use atm_store::EntryKey;

/// Sizing of the THT: `N` (bucket bits) and `M` (ways per bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThtConfig {
    /// Number of index bits: the table has `2^bucket_bits` buckets. The
    /// paper reports that N = 8 avoids lock contention (§IV-B).
    pub bucket_bits: u32,
    /// Maximum number of entries per bucket. The paper uses M = 128 (Kmeans
    /// needs it; the other benchmarks saturate at M = 16).
    pub ways: usize,
}

impl Default for ThtConfig {
    fn default() -> Self {
        ThtConfig {
            bucket_bits: 8,
            ways: 128,
        }
    }
}

impl ThtConfig {
    /// The equivalent paper-faithful store configuration (FIFO, no budget).
    pub fn store_config(self) -> StoreConfig {
        StoreConfig::paper(self.bucket_bits, self.ways)
    }
}

/// One memoized task in the THT.
#[derive(Debug, Clone)]
pub struct ThtEntry {
    /// The lookup key.
    pub key: EntryKey,
    /// The task that produced the outputs (reuse provenance for Figure 9).
    pub producer: TaskId,
    /// The stored outputs.
    pub outputs: Arc<Vec<OutputSnapshot>>,
    /// Estimated kernel nanoseconds a genuine bypass on this entry saves
    /// (reported back to the store via [`TaskHistoryTable::note_saved`]).
    pub benefit_ns: u64,
}

/// The Task History Table.
#[derive(Debug)]
pub struct TaskHistoryTable {
    store: MemoStore,
}

impl TaskHistoryTable {
    /// Creates an empty table with the given sizing (paper-faithful FIFO
    /// eviction, no byte budget).
    pub fn new(config: ThtConfig) -> Self {
        Self::with_store_config(config.store_config())
    }

    /// Creates an empty table backed by a [`MemoStore`] with the full
    /// policy/budget configuration.
    pub fn with_store_config(config: StoreConfig) -> Self {
        TaskHistoryTable {
            store: MemoStore::new(config),
        }
    }

    /// The underlying memo store (policy, budget and persistence live there).
    pub fn store(&self) -> &MemoStore {
        &self.store
    }

    /// Attaches an observability handle to the backing store (insert/evict
    /// latencies, admission-denied and eviction decision events).
    pub fn set_observability(&mut self, obs: Arc<atm_obs::Observability>) {
        self.store.set_observability(obs);
    }

    /// The table sizing.
    pub fn config(&self) -> ThtConfig {
        let config = self.store.config();
        ThtConfig {
            bucket_bits: config.bucket_bits,
            ways: config.ways,
        }
    }

    /// Number of buckets (`2^N`).
    pub fn bucket_count(&self) -> usize {
        self.store.bucket_count()
    }

    /// Looks up an entry with exactly this key. Takes the bucket's read
    /// lock, so concurrent lookups proceed in parallel.
    pub fn lookup(&self, key: &EntryKey) -> Option<ThtEntry> {
        self.store.lookup(key).map(|hit| ThtEntry {
            key: *key,
            producer: hit.producer,
            outputs: hit.outputs,
            benefit_ns: hit.benefit_ns,
        })
    }

    /// Reports that a hit genuinely replaced an execution (see
    /// [`MemoStore::note_saved`]).
    pub fn note_saved(&self, benefit_ns: u64) {
        self.store.note_saved(benefit_ns);
    }

    /// Inserts the outputs of a completed task. If the bucket already holds
    /// `M` entries (or the store exceeds its byte budget) the configured
    /// policy evicts — FIFO by default, exactly as in the paper.
    pub fn insert(&self, key: EntryKey, producer: TaskId, outputs: Arc<Vec<OutputSnapshot>>) {
        self.store.insert(key, producer, outputs, 0);
    }

    /// Like [`TaskHistoryTable::insert`], with the caller's estimate of the
    /// kernel nanoseconds one hit on this entry saves (drives the
    /// cost-aware eviction policy and the `saved_ns` counter).
    pub fn insert_with_benefit(
        &self,
        key: EntryKey,
        producer: TaskId,
        outputs: Arc<Vec<OutputSnapshot>>,
        benefit_ns: u64,
    ) {
        self.store.insert(key, producer, outputs, benefit_ns);
    }

    /// Total number of stored entries (diagnostic; takes every bucket lock).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Bytes currently stored in the table (keys + container overhead +
    /// outputs), the main contributor to the ATM memory overhead of
    /// Table III.
    pub fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
    }

    /// Counter snapshot: `(hits, misses, insertions, evictions)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        let c = self.store.counters();
        (c.hits, c.misses, c.insertions, c.evictions)
    }

    /// The full store counter snapshot (includes admission rejections,
    /// resident bytes and saved kernel nanoseconds).
    pub fn store_counters(&self) -> StoreCountersSnapshot {
        self.store.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_runtime::{Access, DataStore, TaskTypeId};

    fn snapshot(store: &DataStore, values: &[f32]) -> Arc<Vec<OutputSnapshot>> {
        // Region names are unique per store; derive one from the slot count.
        let r = store
            .register_typed(format!("out{}", store.len()), values.to_vec())
            .unwrap();
        Arc::new(vec![OutputSnapshot::capture(store, &Access::write(&r))])
    }

    fn key(hash: u64) -> EntryKey {
        EntryKey::new(TaskTypeId::from_raw(0), hash, 1.0)
    }

    fn producer() -> TaskId {
        TaskId::from_raw(0)
    }

    #[test]
    fn insert_then_lookup_hits() {
        let store = DataStore::new();
        let tht = TaskHistoryTable::new(ThtConfig::default());
        let outputs = snapshot(&store, &[1.0, 2.0]);
        tht.insert(key(42), producer(), outputs);
        let entry = tht.lookup(&key(42)).expect("entry must be found");
        assert_eq!(entry.outputs[0].data.as_f32(), &[1.0, 2.0]);
        assert!(tht.lookup(&key(43)).is_none());
        let (hits, misses, insertions, evictions) = tht.counters();
        assert_eq!((hits, misses, insertions, evictions), (1, 1, 1, 0));
    }

    #[test]
    fn different_p_or_type_does_not_match() {
        let store = DataStore::new();
        let tht = TaskHistoryTable::new(ThtConfig::default());
        tht.insert(
            EntryKey::new(TaskTypeId::from_raw(0), 7, 1.0),
            producer(),
            snapshot(&store, &[1.0]),
        );
        assert!(tht
            .lookup(&EntryKey::new(TaskTypeId::from_raw(0), 7, 0.5))
            .is_none());
        assert!(tht
            .lookup(&EntryKey::new(TaskTypeId::from_raw(1), 7, 1.0))
            .is_none());
        assert!(tht
            .lookup(&EntryKey::new(TaskTypeId::from_raw(0), 7, 1.0))
            .is_some());
    }

    #[test]
    fn fifo_eviction_keeps_the_newest_m_entries() {
        let store = DataStore::new();
        let tht = TaskHistoryTable::new(ThtConfig {
            bucket_bits: 0,
            ways: 2,
        });
        for hash_high in 0..4u64 {
            // Same bucket (bucket_bits = 0 means a single bucket).
            tht.insert(
                key(hash_high << 32),
                producer(),
                snapshot(&store, &[hash_high as f32]),
            );
        }
        assert_eq!(tht.len(), 2);
        let (_, _, insertions, evictions) = tht.counters();
        assert_eq!(insertions, 4);
        assert_eq!(evictions, 2);
        // The two most recent entries survive.
        assert!(tht.lookup(&key(2 << 32)).is_some());
        assert!(tht.lookup(&key(3 << 32)).is_some());
        assert!(tht.lookup(&key(0)).is_none());
    }

    #[test]
    fn memory_accounting_grows_and_shrinks() {
        let store = DataStore::new();
        let tht = TaskHistoryTable::new(ThtConfig {
            bucket_bits: 0,
            ways: 1,
        });
        assert_eq!(tht.memory_bytes(), 0);
        tht.insert(key(1), producer(), snapshot(&store, &[1.0; 100]));
        let after_one = tht.memory_bytes();
        assert!(
            after_one >= 400,
            "at least the 400 output bytes must be accounted"
        );
        // Inserting a second entry evicts the first; memory should not double.
        tht.insert(key(1 << 40), producer(), snapshot(&store, &[1.0; 100]));
        assert_eq!(tht.memory_bytes(), after_one);
    }

    #[test]
    fn keys_with_same_low_bits_land_in_same_bucket_but_do_not_collide() {
        let store = DataStore::new();
        let tht = TaskHistoryTable::new(ThtConfig {
            bucket_bits: 4,
            ways: 8,
        });
        let a = key(0x10);
        let b = key(0xA0_0010); // same low 4 bits
        tht.insert(a, producer(), snapshot(&store, &[1.0]));
        tht.insert(b, producer(), snapshot(&store, &[2.0]));
        assert_eq!(tht.lookup(&a).unwrap().outputs[0].data.as_f32(), &[1.0]);
        assert_eq!(tht.lookup(&b).unwrap().outputs[0].data.as_f32(), &[2.0]);
    }

    #[test]
    fn bucket_count_is_power_of_two() {
        assert_eq!(
            TaskHistoryTable::new(ThtConfig {
                bucket_bits: 0,
                ways: 1
            })
            .bucket_count(),
            1
        );
        assert_eq!(
            TaskHistoryTable::new(ThtConfig {
                bucket_bits: 8,
                ways: 1
            })
            .bucket_count(),
            256
        );
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_is_rejected() {
        let _ = TaskHistoryTable::new(ThtConfig {
            bucket_bits: 1,
            ways: 0,
        });
    }
}
