//! The Task History Table (THT).
//!
//! The THT is the central memoization structure of ATM (§III-A, Figure 1):
//! a table of `2^N` buckets, each holding up to `M` entries. An entry stores
//! the 8-byte hash key of a completed task's (sampled) inputs, the
//! percentage `p` the key was computed with, and a full copy of the task's
//! outputs. Buckets are protected by individual locks that allow parallel
//! reads and exclusive writes; when a bucket is full the oldest entry is
//! evicted first-in-first-out.

use crate::snapshot::OutputSnapshot;
use atm_runtime::{TaskId, TaskTypeId};
use atm_sync::RwLock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Sizing of the THT: `N` (bucket bits) and `M` (ways per bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThtConfig {
    /// Number of index bits: the table has `2^bucket_bits` buckets. The
    /// paper reports that N = 8 avoids lock contention (§IV-B).
    pub bucket_bits: u32,
    /// Maximum number of entries per bucket. The paper uses M = 128 (Kmeans
    /// needs it; the other benchmarks saturate at M = 16).
    pub ways: usize,
}

impl Default for ThtConfig {
    fn default() -> Self {
        ThtConfig {
            bucket_bits: 8,
            ways: 128,
        }
    }
}

/// The lookup key of a THT entry.
///
/// Besides the Jenkins hash of the sampled inputs, an entry is only valid
/// for the same task type and the same selection percentage (the paper
/// extends the THT to store `p` together with the hash key because `p`
/// affects key generation, §III-D). `p` is stored as its raw bit pattern so
/// the struct stays `Eq`/hashable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryKey {
    /// The task type that produced the entry.
    pub task_type: TaskTypeId,
    /// The Jenkins hash of the sampled inputs.
    pub hash: u64,
    /// Bit pattern of the selection percentage used for the hash.
    pub p_bits: u64,
}

impl EntryKey {
    /// Builds a key from a task type, hash and percentage fraction.
    pub fn new(task_type: TaskTypeId, hash: u64, p: f64) -> Self {
        EntryKey {
            task_type,
            hash,
            p_bits: p.to_bits(),
        }
    }
}

/// One memoized task in the THT.
#[derive(Debug, Clone)]
pub struct ThtEntry {
    /// The lookup key.
    pub key: EntryKey,
    /// The task that produced the outputs (reuse provenance for Figure 9).
    pub producer: TaskId,
    /// The stored outputs.
    pub outputs: Arc<Vec<OutputSnapshot>>,
}

impl ThtEntry {
    fn size_bytes(&self) -> usize {
        // 8-byte hash + 8-byte p + type id + the stored outputs.
        let meta = std::mem::size_of::<EntryKey>() + std::mem::size_of::<TaskId>();
        meta + self
            .outputs
            .iter()
            .map(OutputSnapshot::size_bytes)
            .sum::<usize>()
    }
}

/// The Task History Table.
#[derive(Debug)]
pub struct TaskHistoryTable {
    buckets: Vec<RwLock<VecDeque<ThtEntry>>>,
    config: ThtConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    stored_bytes: AtomicUsize,
}

impl TaskHistoryTable {
    /// Creates an empty table with the given sizing.
    pub fn new(config: ThtConfig) -> Self {
        assert!(
            config.bucket_bits <= 20,
            "more than 2^20 buckets is never useful"
        );
        assert!(config.ways >= 1, "each bucket needs at least one way");
        let buckets = (0..(1usize << config.bucket_bits))
            .map(|_| RwLock::new(VecDeque::new()))
            .collect();
        TaskHistoryTable {
            buckets,
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stored_bytes: AtomicUsize::new(0),
        }
    }

    /// The table sizing.
    pub fn config(&self) -> ThtConfig {
        self.config
    }

    /// Number of buckets (`2^N`).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket_of(&self, key: &EntryKey) -> usize {
        // Index with the lower N bits of the hash, as in Figure 1.
        (key.hash as usize) & (self.buckets.len() - 1)
    }

    /// Looks up an entry with exactly this key. Takes the bucket's read
    /// lock, so concurrent lookups proceed in parallel.
    pub fn lookup(&self, key: &EntryKey) -> Option<ThtEntry> {
        let bucket = self.buckets[self.bucket_of(key)].read();
        let found = bucket.iter().rev().find(|e| e.key == *key).cloned();
        drop(bucket);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts the outputs of a completed task. If the bucket already holds
    /// `M` entries the oldest is evicted (FIFO).
    pub fn insert(&self, key: EntryKey, producer: TaskId, outputs: Arc<Vec<OutputSnapshot>>) {
        let entry = ThtEntry {
            key,
            producer,
            outputs,
        };
        let added = entry.size_bytes();
        let mut bucket = self.buckets[self.bucket_of(&key)].write();
        bucket.push_back(entry);
        let mut removed = 0usize;
        while bucket.len() > self.config.ways {
            if let Some(old) = bucket.pop_front() {
                removed += old.size_bytes();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(bucket);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.stored_bytes.fetch_add(added, Ordering::Relaxed);
        self.stored_bytes.fetch_sub(removed, Ordering::Relaxed);
    }

    /// Total number of stored entries (diagnostic; takes every bucket lock).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.read().len()).sum()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently stored in the table (keys + outputs), the main
    /// contributor to the ATM memory overhead of Table III.
    pub fn memory_bytes(&self) -> usize {
        self.stored_bytes.load(Ordering::Relaxed)
    }

    /// Counter snapshot: `(hits, misses, insertions, evictions)`.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.insertions.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_runtime::{Access, DataStore};

    fn snapshot(store: &DataStore, values: &[f32]) -> Arc<Vec<OutputSnapshot>> {
        // Region names are unique per store; derive one from the slot count.
        let r = store
            .register_typed(format!("out{}", store.len()), values.to_vec())
            .unwrap();
        Arc::new(vec![OutputSnapshot::capture(store, &Access::write(&r))])
    }

    fn key(hash: u64) -> EntryKey {
        EntryKey::new(TaskTypeId::from_raw(0), hash, 1.0)
    }

    fn producer() -> TaskId {
        TaskId::from_raw(0)
    }

    #[test]
    fn insert_then_lookup_hits() {
        let store = DataStore::new();
        let tht = TaskHistoryTable::new(ThtConfig::default());
        let outputs = snapshot(&store, &[1.0, 2.0]);
        tht.insert(key(42), producer(), outputs);
        let entry = tht.lookup(&key(42)).expect("entry must be found");
        assert_eq!(entry.outputs[0].data.as_f32(), &[1.0, 2.0]);
        assert!(tht.lookup(&key(43)).is_none());
        let (hits, misses, insertions, evictions) = tht.counters();
        assert_eq!((hits, misses, insertions, evictions), (1, 1, 1, 0));
    }

    #[test]
    fn different_p_or_type_does_not_match() {
        let store = DataStore::new();
        let tht = TaskHistoryTable::new(ThtConfig::default());
        tht.insert(
            EntryKey::new(TaskTypeId::from_raw(0), 7, 1.0),
            producer(),
            snapshot(&store, &[1.0]),
        );
        assert!(tht
            .lookup(&EntryKey::new(TaskTypeId::from_raw(0), 7, 0.5))
            .is_none());
        assert!(tht
            .lookup(&EntryKey::new(TaskTypeId::from_raw(1), 7, 1.0))
            .is_none());
        assert!(tht
            .lookup(&EntryKey::new(TaskTypeId::from_raw(0), 7, 1.0))
            .is_some());
    }

    #[test]
    fn fifo_eviction_keeps_the_newest_m_entries() {
        let store = DataStore::new();
        let tht = TaskHistoryTable::new(ThtConfig {
            bucket_bits: 0,
            ways: 2,
        });
        for hash_high in 0..4u64 {
            // Same bucket (bucket_bits = 0 means a single bucket).
            tht.insert(
                key(hash_high << 32),
                producer(),
                snapshot(&store, &[hash_high as f32]),
            );
        }
        assert_eq!(tht.len(), 2);
        let (_, _, insertions, evictions) = tht.counters();
        assert_eq!(insertions, 4);
        assert_eq!(evictions, 2);
        // The two most recent entries survive.
        assert!(tht.lookup(&key(2 << 32)).is_some());
        assert!(tht.lookup(&key(3 << 32)).is_some());
        assert!(tht.lookup(&key(0)).is_none());
    }

    #[test]
    fn memory_accounting_grows_and_shrinks() {
        let store = DataStore::new();
        let tht = TaskHistoryTable::new(ThtConfig {
            bucket_bits: 0,
            ways: 1,
        });
        assert_eq!(tht.memory_bytes(), 0);
        tht.insert(key(1), producer(), snapshot(&store, &[1.0; 100]));
        let after_one = tht.memory_bytes();
        assert!(
            after_one >= 400,
            "at least the 400 output bytes must be accounted"
        );
        // Inserting a second entry evicts the first; memory should not double.
        tht.insert(key(1 << 40), producer(), snapshot(&store, &[1.0; 100]));
        assert_eq!(tht.memory_bytes(), after_one);
    }

    #[test]
    fn keys_with_same_low_bits_land_in_same_bucket_but_do_not_collide() {
        let store = DataStore::new();
        let tht = TaskHistoryTable::new(ThtConfig {
            bucket_bits: 4,
            ways: 8,
        });
        let a = key(0x10);
        let b = key(0xA0_0010); // same low 4 bits
        tht.insert(a, producer(), snapshot(&store, &[1.0]));
        tht.insert(b, producer(), snapshot(&store, &[2.0]));
        assert_eq!(tht.lookup(&a).unwrap().outputs[0].data.as_f32(), &[1.0]);
        assert_eq!(tht.lookup(&b).unwrap().outputs[0].data.as_f32(), &[2.0]);
    }

    #[test]
    fn bucket_count_is_power_of_two() {
        assert_eq!(
            TaskHistoryTable::new(ThtConfig {
                bucket_bits: 0,
                ways: 1
            })
            .bucket_count(),
            1
        );
        assert_eq!(
            TaskHistoryTable::new(ThtConfig {
                bucket_bits: 8,
                ways: 1
            })
            .bucket_count(),
            256
        );
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_is_rejected() {
        let _ = TaskHistoryTable::new(ThtConfig {
            bucket_bits: 1,
            ways: 0,
        });
    }
}
