//! The ATM engine: the [`TaskInterceptor`] that implements Approximate Task
//! Memoization on top of the runtime.
//!
//! Control flow (Figure 1 of the paper):
//!
//! 1. A worker pulls task A from the Ready Queue and calls
//!    [`AtmEngine::before_execute`]. If A's type is memoizable, the engine
//!    computes A's hash key over a percentage `p` of its input bytes.
//! 2. The Task History Table is probed. On a hit the stored outputs are
//!    copied into A's output regions (`copyOuts()`) and A never executes —
//!    unless the Dynamic ATM controller is still training, in which case A
//!    executes anyway so the approximation error can be measured.
//! 3. On a THT miss the In-flight Key Table is probed. If a task B with the
//!    same key is currently executing, A registers a postponed copy-out and
//!    is deferred (`postponeCopyOuts()`).
//! 4. Otherwise A executes; its key is put in the IKT while it runs. When it
//!    finishes, [`AtmEngine::after_execute`] retires the key, performs the
//!    postponed copy-outs for any tasks that deferred onto A, and stores A's
//!    outputs in the THT (`updateTHT&IKT()`).

use crate::ikt::{InFlightKeyTable, Waiter};
use crate::key::{KeyGenerator, KeyScratch};
use crate::snapshot::{apply_snapshots_to, OutputSnapshot};
use crate::stats::{AtmStats, AtmStatsSnapshot, ReuseEvent, TypeSummaries, TypeSummary};
use crate::tht::{EntryKey, TaskHistoryTable, ThtConfig};
use crate::training::{evaluate_metric_data, TrainingController};
use atm_hash::Percentage;
use atm_obs::{
    DecisionRecord, EngineObservation, LatencyMetric, MemoDecision, Observability, StoreObservation,
};
use atm_runtime::{
    ArgPrecision, DataStore, Decision, MemoPolicy, MemoSpec, RegionId, TaskId, TaskInterceptor,
    TaskTypeId, TaskView, ThreadState, Tracer,
};
use atm_store::{PersistError, PolicyKind, StoreConfig, StoreCountersSnapshot};
use atm_sync::Mutex;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Engine-wide operating mode.
///
/// Since the per-type [`MemoSpec`] redesign, approximation policy lives on
/// the task type: each memoizable type declares whether it is exact,
/// adaptive or fixed-precision, with its own `τ_max`, training window,
/// error metric and per-argument precision overrides. `AtmMode` is demoted
/// to an engine-wide *default/override* for the benchmark harness:
///
/// * [`AtmMode::Dynamic`] — **respect the per-type specs** (the normal
///   production mode). A type whose spec is
///   [`MemoSpec::approximate`] trains exactly as the paper's Dynamic ATM
///   did, so `AtmConfig::dynamic_atm()` with default specs reproduces the
///   pre-redesign behaviour bit for bit.
/// * [`AtmMode::Static`] — force exact memoization (`p = 100 %`) on every
///   memoizable type, ignoring the specs (the paper's Static ATM bars).
/// * [`AtmMode::FixedP`] — force one constant `p` on every memoizable
///   type, ignoring the specs (the evaluation's Oracle sweeps).
/// * [`AtmMode::Off`] — disable ATM entirely (the baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AtmMode {
    /// ATM disabled: every task executes (the paper's baseline).
    Off,
    /// Override: exact memoization with `p = 100 %` for every memoizable
    /// type (§III-B). Guarantees bit-identical results.
    Static,
    /// Respect each task type's [`MemoSpec`] (approximate specs train their
    /// own `p` against their own `τ_max`, §III-D). The default specs make
    /// this the paper's Dynamic ATM.
    Dynamic,
    /// Override: a fixed selection percentage for every memoizable type —
    /// the "Oracle" configurations of the evaluation (Figures 3–6) are
    /// produced by sweeping this mode over the 16 values of the training
    /// ladder.
    FixedP(f64),
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtmConfig {
    /// Operating mode.
    pub mode: AtmMode,
    /// Whether the In-flight Key Table is used (Figure 3 separates THT-only
    /// from THT+IKT configurations).
    pub use_ikt: bool,
    /// Task History Table sizing.
    pub tht: ThtConfig,
    /// Seed for the hash and the per-type index shuffles (reproducibility).
    pub key_seed: u64,
    /// Eviction policy of the memo store behind the THT. The default,
    /// [`PolicyKind::Fifo`], together with an unlimited budget reproduces
    /// the paper's table bit for bit.
    pub policy: PolicyKind,
    /// Global byte budget of the memo store, enforced across all buckets.
    /// `None` (the default) disables budget enforcement.
    pub byte_budget: Option<usize>,
    /// Admission control: entries charged more than this fraction of the
    /// byte budget are refused. Ignored without a budget.
    pub max_entry_fraction: f64,
}

impl Default for AtmConfig {
    fn default() -> Self {
        AtmConfig {
            mode: AtmMode::Static,
            use_ikt: true,
            tht: ThtConfig::default(),
            key_seed: 0x5EED,
            policy: PolicyKind::Fifo,
            byte_budget: None,
            max_entry_fraction: 1.0,
        }
    }
}

impl AtmConfig {
    /// Baseline configuration: ATM disabled.
    pub fn off() -> Self {
        AtmConfig {
            mode: AtmMode::Off,
            ..Default::default()
        }
    }

    /// Static ATM (exact memoization).
    pub fn static_atm() -> Self {
        AtmConfig {
            mode: AtmMode::Static,
            ..Default::default()
        }
    }

    /// Dynamic ATM (adaptive approximation).
    pub fn dynamic_atm() -> Self {
        AtmConfig {
            mode: AtmMode::Dynamic,
            ..Default::default()
        }
    }

    /// Oracle-style fixed selection percentage.
    pub fn fixed_p(p: f64) -> Self {
        AtmConfig {
            mode: AtmMode::FixedP(p),
            ..Default::default()
        }
    }

    /// Disables the IKT (THT-only configurations of Figure 3).
    #[must_use]
    pub fn without_ikt(mut self) -> Self {
        self.use_ikt = false;
        self
    }

    /// Overrides the THT sizing.
    #[must_use]
    pub fn with_tht(mut self, tht: ThtConfig) -> Self {
        self.tht = tht;
        self
    }

    /// Selects the eviction policy of the memo store.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Caps the memo store at a global byte budget.
    #[must_use]
    pub fn with_byte_budget(mut self, budget: usize) -> Self {
        self.byte_budget = Some(budget);
        self
    }

    /// Sets the admission-control fraction (of the byte budget).
    #[must_use]
    pub fn with_admission_fraction(mut self, fraction: f64) -> Self {
        self.max_entry_fraction = fraction;
        self
    }

    /// The memo-store configuration this engine configuration describes.
    pub fn store_config(&self) -> StoreConfig {
        StoreConfig {
            bucket_bits: self.tht.bucket_bits,
            ways: self.tht.ways,
            byte_budget: self.byte_budget,
            max_entry_fraction: self.max_entry_fraction,
            policy: self.policy,
            ..StoreConfig::default()
        }
    }
}

/// Per-task-type engine state: the resolved policy of one task type.
struct TypeState {
    keygen: KeyGenerator,
    controller: Mutex<TrainingController>,
    /// The effective spec of the type (resolved when its first instance
    /// reached the engine); carries the per-argument precision overrides
    /// the key pipeline consumes.
    spec: MemoSpec,
    /// Whether the engine mode respects the spec's per-argument overrides
    /// (`Dynamic`) or overrode the policy wholesale (`Static` / `FixedP`,
    /// whose sweeps must hash every argument uniformly).
    honor_overrides: bool,
}

impl TypeState {
    /// One selection percentage per read access of `accesses`, in
    /// declaration order, written into the reused `out` vector: the spec's
    /// per-argument override where one was declared, the type-wide `p`
    /// otherwise.
    fn arg_precisions_into(
        &self,
        accesses: &[atm_runtime::Access],
        p: Percentage,
        out: &mut Vec<Percentage>,
    ) {
        out.clear();
        out.extend(
            accesses
                .iter()
                .enumerate()
                .filter(|(_, a)| a.mode.is_read())
                .map(|(index, _)| {
                    if !self.honor_overrides {
                        return p;
                    }
                    match self.spec.precision_override(index) {
                        Some(ArgPrecision::Exact) => Percentage::FULL,
                        Some(ArgPrecision::Fraction(f)) => Percentage::from_fraction(f),
                        None => p,
                    }
                }),
        );
    }
}

/// Number of per-worker key-scratch slots the engine keeps. Workers index by
/// `worker % KEY_SCRATCH_SLOTS`, so runtimes with more workers than slots
/// share (the slot lock is uncontended in the common ≤16-worker case).
const KEY_SCRATCH_SLOTS: usize = 16;

/// One cache-line-isolated scratch slot: the reusable temporaries of the key
/// pipeline for one worker, so the steady-state lookup path allocates
/// nothing and workers never write a shared line.
#[repr(align(128))]
#[derive(Default)]
struct ScratchSlot {
    scratch: Mutex<WorkerScratch>,
}

/// The per-worker reusable buffers of `before_execute`'s key computation.
#[derive(Default)]
struct WorkerScratch {
    precisions: Vec<Percentage>,
    key: KeyScratch,
}

/// Bookkeeping attached to a task between `before_execute` and `after_execute`.
struct PendingExec {
    key: EntryKey,
    registered_ikt: bool,
    /// THT outputs to compare against after execution (training phase).
    training_reference: Option<Arc<Vec<OutputSnapshot>>>,
    /// True when the task writes an unstable output region and must not be
    /// stored in the THT.
    skip_tht_update: bool,
    /// Timestamp at dispatch; `after_execute` turns it into the measured
    /// kernel time of this type.
    dispatched_ns: u64,
}

/// The scalar context stamped onto one audit record: the decision's driving
/// metric (observed error for training comparisons, 0 where nothing
/// applies), the τ in effect, and the selection percentage.
#[derive(Clone, Copy)]
struct DecisionScalars {
    metric_value: f64,
    tau: f64,
    p: f64,
}

/// The ATM engine. Install it into the runtime with
/// [`atm_runtime::RuntimeBuilder::interceptor`].
pub struct AtmEngine {
    config: AtmConfig,
    tht: TaskHistoryTable,
    ikt: InFlightKeyTable,
    types: Mutex<HashMap<TaskTypeId, Arc<TypeState>>>,
    pending: Mutex<HashMap<TaskId, PendingExec>>,
    stats: AtmStats,
    summaries: TypeSummaries,
    obs: Option<Arc<Observability>>,
    /// Per-worker key-computation scratch (see [`ScratchSlot`]).
    key_scratch: Box<[ScratchSlot]>,
}

impl AtmEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: AtmConfig) -> Self {
        AtmEngine {
            tht: TaskHistoryTable::with_store_config(config.store_config()),
            ikt: InFlightKeyTable::new(),
            types: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            stats: AtmStats::new(),
            summaries: TypeSummaries::new(),
            config,
            obs: None,
            key_scratch: (0..KEY_SCRATCH_SLOTS)
                .map(|_| ScratchSlot::default())
                .collect(),
        }
    }

    /// Attaches an observability handle: every memo decision (THT hit, IKT
    /// defer, miss, training accept/reject, down-shift) lands in its
    /// decision stream, the memo-lookup latency in its histograms, and the
    /// backing store reports its own insert/evict events. Share the same
    /// handle with [`atm_runtime::RuntimeBuilder::observability`] to get a
    /// unified [`atm_runtime::Runtime::observe`] snapshot.
    #[must_use]
    pub fn with_observability(mut self, obs: Arc<Observability>) -> Self {
        self.tht.set_observability(Arc::clone(&obs));
        self.obs = Some(obs);
        self
    }

    /// The attached observability handle, but only when it records.
    #[inline]
    fn obs_on(&self) -> Option<&Observability> {
        match &self.obs {
            Some(obs) if obs.is_enabled() => Some(obs),
            _ => None,
        }
    }

    /// Convenience: creates the engine already wrapped in an [`Arc`] so it
    /// can be both installed as the runtime interceptor and queried for
    /// statistics afterwards.
    pub fn shared(config: AtmConfig) -> Arc<Self> {
        Arc::new(Self::new(config))
    }

    /// The engine configuration.
    pub fn config(&self) -> AtmConfig {
        self.config
    }

    /// Aggregate statistics snapshot.
    pub fn stats(&self) -> AtmStatsSnapshot {
        self.stats.snapshot()
    }

    /// Reuse provenance events (Figure 9).
    pub fn reuse_events(&self) -> Vec<ReuseEvent> {
        self.stats.reuse_events()
    }

    /// Per-task-type summaries (chosen `p`, phase, hit counts).
    pub fn type_summaries(&self) -> HashMap<TaskTypeId, TypeSummary> {
        self.refresh_summaries();
        self.summaries.all()
    }

    /// The Task History Table (for sizing experiments and diagnostics).
    pub fn tht(&self) -> &TaskHistoryTable {
        &self.tht
    }

    /// The In-flight Key Table (diagnostics).
    pub fn ikt(&self) -> &InFlightKeyTable {
        &self.ikt
    }

    /// Counter snapshot of the memo store behind the THT (hits, misses,
    /// insertions, evictions, rejected admissions, resident bytes, saved
    /// kernel nanoseconds).
    pub fn store_counters(&self) -> StoreCountersSnapshot {
        self.tht.store_counters()
    }

    /// Persists the memo store to `path` (versioned, checksummed binary
    /// snapshot; see `atm_store::persist`).
    pub fn save_store(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.tht.store().save_to(path)
    }

    /// Warm-starts the memo store from a snapshot written by
    /// [`AtmEngine::save_store`] in a previous run. Entries go through the
    /// normal admission/eviction path; the number admitted is returned.
    ///
    /// Hash keys embed the task-type id and the key seed, so the snapshot
    /// only produces hits when task types are registered in the same order
    /// and `key_seed` is unchanged — the natural situation for repeated
    /// runs of one application.
    pub fn warm_start_from(&self, path: impl AsRef<Path>) -> Result<usize, PersistError> {
        self.tht.store().absorb_from(path)
    }

    /// ATM memory overhead in bytes: THT contents, IKT bookkeeping and the
    /// cached index-shuffle vectors (Table III numerator).
    pub fn memory_bytes(&self) -> usize {
        let keygens: usize = self
            .types
            .lock()
            .values()
            .map(|t| t.keygen.memory_bytes())
            .sum();
        self.tht.memory_bytes() + self.ikt.memory_bytes() + keygens
    }

    /// The selection percentage currently in effect for a task type (the
    /// starred values of Figure 5 / the `p` columns of §V-C).
    pub fn current_p(&self, type_id: TaskTypeId) -> Option<f64> {
        self.types
            .lock()
            .get(&type_id)
            .map(|t| t.controller.lock().current_p().fraction())
    }

    fn mode_enabled(&self) -> bool {
        !matches!(self.config.mode, AtmMode::Off)
    }

    /// Appends one record to the memo-decision audit stream (no-op without
    /// an enabled observability handle).
    fn record_memo_decision(
        &self,
        worker: usize,
        task: &TaskView<'_>,
        tracer: &Tracer,
        decision: MemoDecision,
        scalars: DecisionScalars,
    ) {
        if let Some(obs) = self.obs_on() {
            obs.record_decision(
                worker,
                DecisionRecord {
                    task_type: task.type_id.index() as u32,
                    task_id: task.id.raw(),
                    decision,
                    metric_value: scalars.metric_value,
                    tau: scalars.tau,
                    p: scalars.p,
                    t_ns: tracer.now_ns(),
                },
            );
        }
    }

    /// Resolves the effective policy of a task type the first time one of
    /// its instances reaches the engine: the type's (or instance's)
    /// [`MemoSpec`] decides, unless the engine-wide mode overrides it.
    fn type_state(&self, view: &TaskView<'_>) -> Arc<TypeState> {
        let mut types = self.types.lock();
        if let Some(existing) = types.get(&view.type_id) {
            return Arc::clone(existing);
        }
        let spec = view.memo_spec().cloned().unwrap_or_default();
        let controller = match self.config.mode {
            AtmMode::Off | AtmMode::Static => TrainingController::fixed(Percentage::FULL),
            AtmMode::FixedP(p) => TrainingController::fixed(Percentage::from_fraction(p)),
            AtmMode::Dynamic => match spec.policy() {
                MemoPolicy::Exact => TrainingController::fixed(Percentage::FULL),
                MemoPolicy::FixedPrecision(p) => {
                    TrainingController::fixed(Percentage::from_fraction(p))
                }
                MemoPolicy::Approximate => {
                    let controller =
                        TrainingController::new(spec.training_window_len(), spec.tau_max())
                            .with_metric(spec.error_metric());
                    match spec.down_shift_margin() {
                        Some(margin) => controller.with_down_shift(margin),
                        None => controller,
                    }
                }
            },
        };
        let state = Arc::new(TypeState {
            keygen: KeyGenerator::new(
                self.config.key_seed
                    ^ (view.type_id.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                spec.is_type_aware(),
            ),
            controller: Mutex::new(controller),
            spec,
            honor_overrides: matches!(self.config.mode, AtmMode::Dynamic),
        });
        types.insert(view.type_id, Arc::clone(&state));
        state
    }

    /// The output signature of a task: the element count of every write
    /// access, in declaration order. Stored outputs (THT entries, in-flight
    /// producers) can only serve tasks with an identical signature; task
    /// types normally have a fixed signature, but the engine must not trust
    /// that (§III-E: under-declared or irregular outputs are a user-side
    /// hazard the runtime has to survive).
    fn output_signature(store: &DataStore, view: &TaskView<'_>) -> Vec<usize> {
        view.accesses
            .iter()
            .filter(|a| a.mode.is_write())
            .map(|a| crate::snapshot::elem_range_of(store, a).len())
            .collect()
    }

    /// True when a stored set of output snapshots can be copied into a task
    /// with the given output signature.
    fn entry_matches_shape(outputs: &[OutputSnapshot], signature: &[usize]) -> bool {
        outputs.len() == signature.len()
            && outputs
                .iter()
                .zip(signature)
                .all(|(snapshot, &len)| snapshot.elem_range.len() == len)
    }

    fn writes_unstable_region(&self, state: &TypeState, view: &TaskView<'_>) -> bool {
        let controller = state.controller.lock();
        if controller.unstable_outputs().is_empty() {
            return false;
        }
        view.accesses
            .iter()
            .filter(|a| a.mode.is_write())
            .any(|a| controller.is_unstable(a.region))
    }

    fn refresh_summaries(&self) {
        let types = self.types.lock();
        for (type_id, state) in types.iter() {
            let controller = state.controller.lock();
            let p = controller.current_p().fraction();
            let steady = !controller.is_training();
            let unstable = controller.unstable_outputs().len();
            let down_shifts = controller.down_shifts();
            self.summaries.update(*type_id, |s| {
                s.final_p = p;
                s.steady = steady;
                s.unstable_outputs = unstable;
                s.down_shifts = down_shifts;
            });
        }
    }

    fn failing_output_regions(
        &self,
        store: &DataStore,
        view: &TaskView<'_>,
        reference: &[OutputSnapshot],
        tau_max: f64,
        metric: atm_runtime::ErrorMetric,
    ) -> (f64, Vec<RegionId>) {
        // Overall τ across all outputs plus the per-output failures, each
        // output judged with the task type's declared error metric — on the
        // output's **native element grid** (an f32 output is compared as
        // f32, so a ULP τ_max counts f32 steps, not the 2²⁹-times-larger
        // f64 steps the old widen-to-f64 comparison produced).
        let writes: Vec<_> = view.accesses.iter().filter(|a| a.mode.is_write()).collect();
        let mut failing = Vec::new();
        let mut overall_tau = 0.0f64;
        for (access, snapshot) in writes.iter().zip(reference) {
            let elem_range = crate::snapshot::elem_range_of(store, access);
            let correct = {
                let region = store.read(access.region);
                let guard = region.lock();
                guard.slice_elems(elem_range)
            };
            // Shape or element-type mismatches come back as infinity: a
            // stored entry that no longer matches the task's outputs can
            // never be an acceptable approximation.
            let tau = evaluate_metric_data(metric, &correct, &snapshot.data);
            overall_tau = overall_tau.max(tau);
            if tau >= tau_max {
                failing.push(access.region);
            }
        }
        (overall_tau, failing)
    }
}

impl TaskInterceptor for AtmEngine {
    fn before_execute(
        &self,
        task: TaskView<'_>,
        store: &DataStore,
        tracer: &Tracer,
        worker: usize,
    ) -> Decision {
        if !self.mode_enabled() || !task.memoizable() {
            return Decision::Execute;
        }

        self.stats.incr(&self.stats.seen);
        let type_name = task.info.name.clone();
        self.summaries.update(task.type_id, |s| {
            if s.name.is_empty() {
                s.name = type_name;
            }
            s.seen += 1;
        });

        let state = self.type_state(&task);
        let (p, training, tau_max) = {
            let controller = state.controller.lock();
            (
                controller.current_p(),
                controller.is_training(),
                controller.tau_max(),
            )
        };

        // Hash-key computation (traced as its own state, Figure 7). Each
        // read argument is hashed at the type-wide `p` unless the type's
        // spec pinned it to an explicit precision. The temporaries live in
        // this worker's scratch slot: warm lookups allocate nothing.
        let mut slot = self.key_scratch[worker % KEY_SCRATCH_SLOTS].scratch.lock();
        let ws = &mut *slot;
        state.arg_precisions_into(task.accesses, p, &mut ws.precisions);
        let hash_start = tracer.now_ns();
        let key_result =
            state
                .keygen
                .compute_with_scratch(store, task.accesses, &ws.precisions, &mut ws.key);
        let hash_end = tracer.now_ns();
        drop(slot);
        tracer.record(
            worker,
            ThreadState::HashKeyComputation,
            hash_start,
            hash_end,
        );
        self.stats.add(&self.stats.hash_ns, hash_end - hash_start);
        let key = EntryKey::new(task.type_id, key_result.key, p.fraction());

        // Outputs black-listed during training are never memoized in the
        // steady state (§III-D): execute, and skip the THT update later.
        if !training && self.writes_unstable_region(&state, &task) {
            self.pending.lock().insert(
                task.id,
                PendingExec {
                    key,
                    registered_ikt: false,
                    training_reference: None,
                    skip_tht_update: true,
                    dispatched_ns: tracer.now_ns(),
                },
            );
            self.stats.incr(&self.stats.executed);
            self.record_memo_decision(
                worker,
                &task,
                tracer,
                MemoDecision::MissExecute,
                DecisionScalars {
                    metric_value: 0.0,
                    tau: tau_max,
                    p: p.fraction(),
                },
            );
            return Decision::Execute;
        }

        // Task History Table probe. An entry only counts as a hit when its
        // stored outputs have exactly the shape this task declares.
        let signature = Self::output_signature(store, &task);
        let lookup_start = self.obs_on().map(|_| tracer.now_ns());
        let entry = self
            .tht
            .lookup(&key)
            .filter(|e| Self::entry_matches_shape(&e.outputs, &signature));
        if let (Some(obs), Some(start)) = (self.obs_on(), lookup_start) {
            obs.record_latency(
                LatencyMetric::MemoLookup,
                worker,
                tracer.now_ns().saturating_sub(start),
            );
        }
        if let Some(entry) = entry {
            if training {
                // Training phase: execute anyway and verify the
                // approximation in `after_execute`.
                self.stats.incr(&self.stats.training_hits);
                self.summaries
                    .update(task.type_id, |s| s.training_hits += 1);
                self.pending.lock().insert(
                    task.id,
                    PendingExec {
                        key,
                        registered_ikt: false,
                        training_reference: Some(Arc::clone(&entry.outputs)),
                        skip_tht_update: true,
                        dispatched_ns: tracer.now_ns(),
                    },
                );
                self.stats.incr(&self.stats.executed);
                return Decision::Execute;
            }

            // Steady state: provide the outputs without executing. Only now
            // is the entry's benefit genuinely saved kernel time.
            self.tht.note_saved(entry.benefit_ns);
            let copy_start = tracer.now_ns();
            apply_snapshots_to(store, &entry.outputs, task.accesses);
            let copy_end = tracer.now_ns();
            tracer.record(worker, ThreadState::Memoization, copy_start, copy_end);
            self.stats.add(&self.stats.copy_ns, copy_end - copy_start);
            self.stats.incr(&self.stats.tht_bypassed);
            self.summaries.update(task.type_id, |s| s.tht_bypassed += 1);
            self.stats.record_reuse(ReuseEvent {
                producer: entry.producer,
                consumer: task.id,
                from_tht: true,
            });
            self.record_memo_decision(
                worker,
                &task,
                tracer,
                MemoDecision::ThtHit,
                DecisionScalars {
                    metric_value: 0.0,
                    tau: tau_max,
                    p: p.fraction(),
                },
            );
            return Decision::Memoized;
        }

        // In-flight Key Table probe (steady state only; during training the
        // task must execute so there is nothing to defer onto).
        if self.config.use_ikt && !training {
            let waiter = Waiter {
                task: task.id,
                accesses: task.accesses.to_vec(),
            };
            if let Some(producer) = self.ikt.register_waiter(&key, waiter) {
                self.stats.incr(&self.stats.ikt_deferred);
                self.summaries.update(task.type_id, |s| s.ikt_deferred += 1);
                self.stats.record_reuse(ReuseEvent {
                    producer,
                    consumer: task.id,
                    from_tht: false,
                });
                self.record_memo_decision(
                    worker,
                    &task,
                    tracer,
                    MemoDecision::IktDefer,
                    DecisionScalars {
                        metric_value: 0.0,
                        tau: tau_max,
                        p: p.fraction(),
                    },
                );
                return Decision::Deferred;
            }
        }

        // Miss everywhere: execute, leaving the key in the IKT while in flight.
        let registered_ikt = self.config.use_ikt && self.ikt.register_producer(key, task.id);
        self.pending.lock().insert(
            task.id,
            PendingExec {
                key,
                registered_ikt,
                training_reference: None,
                skip_tht_update: false,
                dispatched_ns: tracer.now_ns(),
            },
        );
        self.stats.incr(&self.stats.executed);
        self.record_memo_decision(
            worker,
            &task,
            tracer,
            MemoDecision::MissExecute,
            DecisionScalars {
                metric_value: 0.0,
                tau: tau_max,
                p: p.fraction(),
            },
        );
        Decision::Execute
    }

    fn after_execute(
        &self,
        task: TaskView<'_>,
        store: &DataStore,
        tracer: &Tracer,
        worker: usize,
        executed: bool,
    ) -> Vec<TaskId> {
        if !self.mode_enabled() || !task.memoizable() || !executed {
            return Vec::new();
        }
        let Some(pending) = self.pending.lock().remove(&task.id) else {
            return Vec::new();
        };
        let state = self.type_state(&task);

        // Per-task kernel timing: the interval between dispatch and
        // completion is (almost entirely) the kernel run. The measured
        // duration of *this* execution is the benefit estimate stored with
        // its THT entry — the kernel nanoseconds a future hit saves — which
        // the cost-aware eviction policy divides by entry size. Storing the
        // producing task's own duration (rather than a per-type average)
        // keeps eviction sharp when task durations vary within one type.
        let kernel_ns = tracer.now_ns().saturating_sub(pending.dispatched_ns);

        // Adaptive-spec training: compare the stored (approximate) outputs
        // against the freshly computed ones with the type's error metric.
        if let Some(reference) = &pending.training_reference {
            let (tau_max, metric) = {
                let controller = state.controller.lock();
                (controller.tau_max(), controller.metric())
            };
            let (tau, failing) =
                self.failing_output_regions(store, &task, reference, tau_max, metric);
            let mut controller = state.controller.lock();
            let p_tested = controller.current_p().fraction();
            let shifts_before = controller.down_shifts();
            if controller.is_training() {
                controller.record_comparison(tau, &failing);
            }
            let down_shifted = controller.down_shifts() > shifts_before;
            drop(controller);
            let accepted = tau < tau_max;
            self.record_memo_decision(
                worker,
                &task,
                tracer,
                if accepted {
                    MemoDecision::TrainingAccept
                } else {
                    MemoDecision::TrainingReject
                },
                DecisionScalars {
                    metric_value: tau,
                    tau: tau_max,
                    p: p_tested,
                },
            );
            if down_shifted {
                self.record_memo_decision(
                    worker,
                    &task,
                    tracer,
                    MemoDecision::DownShift,
                    DecisionScalars {
                        metric_value: tau,
                        tau: tau_max,
                        p: p_tested,
                    },
                );
            }
        }

        // Snapshot the outputs once; they serve both the postponed IKT
        // copy-outs and the THT update.
        let mut completed = Vec::new();
        let need_snapshot = pending.registered_ikt || !pending.skip_tht_update;
        let outputs: Option<Arc<Vec<OutputSnapshot>>> = if need_snapshot {
            let copy_start = tracer.now_ns();
            let snaps = Arc::new(OutputSnapshot::capture_all(store, task.accesses));
            let copy_end = tracer.now_ns();
            tracer.record(worker, ThreadState::Memoization, copy_start, copy_end);
            self.stats.add(&self.stats.copy_ns, copy_end - copy_start);
            Some(snaps)
        } else {
            None
        };

        // Retire the in-flight key and satisfy the tasks deferred onto this one.
        if pending.registered_ikt {
            let waiters = self.ikt.retire(&pending.key, task.id);
            if !waiters.is_empty() {
                let snaps = outputs
                    .as_ref()
                    .expect("snapshot exists when registered in the IKT");
                for waiter in waiters {
                    let waiter_signature: Vec<usize> = waiter
                        .accesses
                        .iter()
                        .filter(|a| a.mode.is_write())
                        .map(|a| crate::snapshot::elem_range_of(store, a).len())
                        .collect();
                    if Self::entry_matches_shape(snaps, &waiter_signature) {
                        let copy_start = tracer.now_ns();
                        apply_snapshots_to(store, snaps, &waiter.accesses);
                        let copy_end = tracer.now_ns();
                        tracer.record(worker, ThreadState::Memoization, copy_start, copy_end);
                        self.stats.add(&self.stats.copy_ns, copy_end - copy_start);
                    } else {
                        // Shape mismatch (same key, different output layout):
                        // the deferred task cannot be satisfied by a copy, so
                        // run its kernel here — its dependences were already
                        // satisfied when it was deferred — and complete it.
                        let ctx = atm_runtime::TaskContext::new(store, &waiter.accesses);
                        (task.info.kernel)(&ctx);
                        self.stats.incr(&self.stats.executed);
                    }
                    completed.push(waiter.task);
                }
            }
        }

        // Store the outputs in the THT for future reuse, unless this task's
        // outputs were black-listed.
        if !pending.skip_tht_update {
            let still_stable = !self.writes_unstable_region(&state, &task);
            if still_stable {
                let snaps = outputs.expect("snapshot exists when the THT is updated");
                self.tht
                    .insert_with_benefit(pending.key, task.id, snaps, kernel_ns);
                if let Some(obs) = self.obs_on() {
                    obs.sample_store_bytes(
                        worker,
                        tracer.now_ns(),
                        self.tht.store_counters().resident_bytes as u64,
                    );
                }
            }
        }

        completed
    }

    fn observe(&self) -> Option<(EngineObservation, StoreObservation)> {
        let stats = self.stats.snapshot();
        let store = self.tht.store_counters();
        Some((
            EngineObservation {
                seen: stats.seen,
                tht_bypassed: stats.tht_bypassed,
                ikt_deferred: stats.ikt_deferred,
                training_hits: stats.training_hits,
                executed: stats.executed,
                hash_ns: stats.hash_ns,
                copy_ns: stats.copy_ns,
            },
            StoreObservation {
                hits: store.hits,
                misses: store.misses,
                insertions: store.insertions,
                evictions: store.evictions,
                rejected_admissions: store.rejected_admissions,
                saved_ns: store.saved_ns,
                resident_bytes: store.resident_bytes as u64,
                entries: store.entries as u64,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_runtime::{Access, ErrorMetric, Region, TaskTypeBuilder};

    fn view_for<'a>(
        id: u64,
        type_id: u32,
        info: &'a atm_runtime::TaskTypeInfo,
        accesses: &'a [Access],
    ) -> TaskView<'a> {
        TaskView {
            id: TaskId::from_raw(id),
            type_id: TaskTypeId::from_raw(type_id),
            info,
            accesses,
            memo: None,
        }
    }

    fn memoizable_info() -> atm_runtime::TaskTypeInfo {
        TaskTypeBuilder::new("square", |ctx| {
            let x = ctx.arg::<f64>(0);
            let out: Vec<f64> = x.iter().map(|v| v * v).collect();
            ctx.out(1, &out);
        })
        .arg::<f64>()
        .out::<f64>()
        .memoizable()
        .build()
    }

    /// Drives the engine by hand (without the scheduler) the way a worker
    /// would: before_execute, optionally run the kernel, after_execute.
    fn drive(engine: &AtmEngine, store: &DataStore, view: TaskView<'_>) -> (Decision, Vec<TaskId>) {
        let tracer = Tracer::new(false);
        let decision = engine.before_execute(view, store, &tracer, 0);
        let executed = decision == Decision::Execute;
        if executed {
            let ctx = atm_runtime::TaskContext::new(store, view.accesses);
            (view.info.kernel)(&ctx);
        }
        let completed = engine.after_execute(view, store, &tracer, 0, executed);
        (decision, completed)
    }

    #[test]
    fn static_atm_memoizes_identical_inputs() {
        let engine = AtmEngine::new(AtmConfig::static_atm());
        let store = DataStore::new();
        let info = memoizable_info();
        let input = store.register_typed("in", vec![1.0f64, 2.0, 3.0]).unwrap();
        let out_a = store.register_zeros::<f64>("a", 3).unwrap();
        let out_b = store.register_zeros::<f64>("b", 3).unwrap();

        let acc_a = vec![Access::read(&input), Access::write(&out_a)];
        let (d1, _) = drive(&engine, &store, view_for(0, 0, &info, &acc_a));
        assert_eq!(d1, Decision::Execute);
        assert_eq!(store.read(out_a).lock().as_f64(), &[1.0, 4.0, 9.0]);

        // Second task, same input, different output region: must be bypassed
        // and still produce the right output.
        let acc_b = vec![Access::read(&input), Access::write(&out_b)];
        let (d2, _) = drive(&engine, &store, view_for(1, 0, &info, &acc_b));
        assert_eq!(d2, Decision::Memoized);
        assert_eq!(store.read(out_b).lock().as_f64(), &[1.0, 4.0, 9.0]);

        let stats = engine.stats();
        assert_eq!(stats.seen, 2);
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.tht_bypassed, 1);
        assert_eq!(engine.reuse_events().len(), 1);
        assert!(engine.memory_bytes() > 0);
    }

    #[test]
    fn static_atm_does_not_memoize_different_inputs() {
        let engine = AtmEngine::new(AtmConfig::static_atm());
        let store = DataStore::new();
        let info = memoizable_info();
        let in_a = store.register_typed("ia", vec![1.0f64, 2.0]).unwrap();
        let in_b = store.register_typed("ib", vec![1.0f64, 2.5]).unwrap();
        let out_a = store.register_zeros::<f64>("oa", 2).unwrap();
        let out_b = store.register_zeros::<f64>("ob", 2).unwrap();

        let acc_a = vec![Access::read(&in_a), Access::write(&out_a)];
        let acc_b = vec![Access::read(&in_b), Access::write(&out_b)];
        assert_eq!(
            drive(&engine, &store, view_for(0, 0, &info, &acc_a)).0,
            Decision::Execute
        );
        assert_eq!(
            drive(&engine, &store, view_for(1, 0, &info, &acc_b)).0,
            Decision::Execute
        );
        assert_eq!(store.read(out_b).lock().as_f64(), &[1.0, 6.25]);
        assert_eq!(engine.stats().tht_bypassed, 0);
    }

    #[test]
    fn non_memoizable_types_are_ignored() {
        let engine = AtmEngine::new(AtmConfig::static_atm());
        let store = DataStore::new();
        let info = TaskTypeBuilder::new("plain", |_| {}).build();
        let r = store.register_typed("r", vec![1.0f64]).unwrap();
        let accesses = vec![Access::read_write(&r)];
        let (d, _) = drive(&engine, &store, view_for(0, 0, &info, &accesses));
        assert_eq!(d, Decision::Execute);
        assert_eq!(engine.stats().seen, 0);
    }

    #[test]
    fn off_mode_never_touches_the_tables() {
        let engine = AtmEngine::new(AtmConfig::off());
        let store = DataStore::new();
        let info = memoizable_info();
        let input = store.register_typed("in", vec![1.0f64]).unwrap();
        let out = store.register_zeros::<f64>("out", 1).unwrap();
        let accesses = vec![Access::read(&input), Access::write(&out)];
        for id in 0..3 {
            let (d, _) = drive(&engine, &store, view_for(id, 0, &info, &accesses));
            assert_eq!(d, Decision::Execute);
        }
        assert!(engine.tht().is_empty());
        assert_eq!(engine.stats().seen, 0);
    }

    #[test]
    fn dynamic_atm_trains_then_bypasses() {
        let engine = AtmEngine::new(AtmConfig::dynamic_atm());
        let store = DataStore::new();
        let info = TaskTypeBuilder::new("square", |ctx| {
            let x = ctx.arg::<f64>(0);
            let out: Vec<f64> = x.iter().map(|v| v * v).collect();
            ctx.out(1, &out);
        })
        .arg::<f64>()
        .out::<f64>()
        .memo(MemoSpec::approximate().tau(0.01).training_window(2))
        .build();

        let input = store.register_typed("in", vec![2.0f64; 16]).unwrap();
        let outs: Vec<Region<f64>> = (0..6)
            .map(|i| store.register_zeros::<f64>(format!("o{i}"), 16).unwrap())
            .collect();

        let mut decisions = Vec::new();
        for (i, out) in outs.iter().enumerate() {
            let accesses = vec![Access::read(&input), Access::write(out)];
            let (d, _) = drive(&engine, &store, view_for(i as u64, 0, &info, &accesses));
            decisions.push(d);
        }
        // Task 0 misses and executes; tasks 1 and 2 are training hits (still
        // executed); from task 3 on the controller is steady and hits bypass.
        assert_eq!(decisions[0], Decision::Execute);
        assert_eq!(decisions[1], Decision::Execute);
        assert_eq!(decisions[2], Decision::Execute);
        assert_eq!(decisions[3], Decision::Memoized);
        assert_eq!(decisions[4], Decision::Memoized);
        // All outputs are correct either way (identical inputs).
        for &out in &outs {
            assert_eq!(store.read(out).lock().as_f64(), &[4.0; 16]);
        }
        let summary = engine.type_summaries().into_values().next().unwrap();
        assert!(summary.steady);
        assert_eq!(summary.training_hits, 2);
        assert!(summary.final_p <= Percentage::MIN.fraction() * 2.0 + 1e-12);
    }

    #[test]
    fn decision_stream_reconciles_with_engine_stats() {
        let obs = Arc::new(atm_obs::Observability::enabled());
        let engine = AtmEngine::new(AtmConfig::dynamic_atm()).with_observability(Arc::clone(&obs));
        let store = DataStore::new();
        let info = TaskTypeBuilder::new("square", |ctx| {
            let x = ctx.arg::<f64>(0);
            let out: Vec<f64> = x.iter().map(|v| v * v).collect();
            ctx.out(1, &out);
        })
        .arg::<f64>()
        .out::<f64>()
        .memo(MemoSpec::approximate().tau(0.01).training_window(2))
        .build();

        let input = store.register_typed("in", vec![2.0f64; 16]).unwrap();
        for i in 0..6u64 {
            let out = store.register_zeros::<f64>(format!("o{i}"), 16).unwrap();
            let accesses = vec![Access::read(&input), Access::write(&out)];
            drive(&engine, &store, view_for(i, 0, &info, &accesses));
        }

        let stats = engine.stats();
        let decisions = obs.decisions();
        use atm_obs::MemoDecision as D;
        assert_eq!(decisions.count(0, D::ThtHit), stats.tht_bypassed);
        assert_eq!(decisions.count(0, D::IktDefer), stats.ikt_deferred);
        assert_eq!(
            decisions.count(0, D::TrainingAccept) + decisions.count(0, D::TrainingReject),
            stats.training_hits
        );
        // Every execution is either a cold miss or a verified training hit.
        assert_eq!(
            decisions.count(0, D::MissExecute) + stats.training_hits,
            stats.executed
        );
        // Identical inputs verify cleanly: the training hits all accept.
        assert_eq!(decisions.count(0, D::TrainingAccept), stats.training_hits);
        assert_eq!(decisions.count(0, D::DownShift), 0);
        assert_eq!(decisions.dropped, 0);
        // The memo-lookup histogram saw one probe per steady-phase task.
        let metrics = obs.metrics();
        let lookups = metrics.get(atm_obs::LatencyMetric::MemoLookup);
        assert!(lookups.count > 0, "THT probes must be timed");
        // The store-occupancy track was sampled at each THT insert.
        assert!(!obs.store_bytes_samples().is_empty());
    }

    #[test]
    fn down_shift_emits_a_decision_event() {
        let obs = Arc::new(atm_obs::Observability::enabled());
        let engine = AtmEngine::new(AtmConfig::dynamic_atm()).with_observability(Arc::clone(&obs));
        let store = DataStore::new();
        // A kernel whose output depends on bits the sampled hash key misses:
        // training comparisons fail, forcing the controller to down-shift.
        let info = TaskTypeBuilder::new("sum", |ctx| {
            let x = ctx.arg::<f64>(0);
            let total: f64 = x.iter().sum();
            ctx.out(1, &[total; 4]);
        })
        .arg::<f64>()
        .out::<f64>()
        .memo(MemoSpec::approximate().tau(1e-12).training_window(64))
        .build();

        // Inputs agree on the sampled prefix but differ in the tail, so the
        // approximate key collides while the true outputs diverge.
        let mut base = vec![1.0f64; 4096];
        let inputs: Vec<Region<f64>> = (0..8)
            .map(|i| {
                base[4095] = i as f64 * 1000.0;
                store.register_typed(format!("i{i}"), base.clone()).unwrap()
            })
            .collect();
        for (i, input) in inputs.iter().enumerate() {
            let out = store.register_zeros::<f64>(format!("o{i}"), 4).unwrap();
            let accesses = vec![Access::read(input), Access::write(&out)];
            drive(&engine, &store, view_for(i as u64, 0, &info, &accesses));
        }

        let decisions = obs.decisions();
        use atm_obs::MemoDecision as D;
        let summary = engine.type_summaries().into_values().next().unwrap();
        assert_eq!(decisions.count(0, D::DownShift), summary.down_shifts);
        assert_eq!(
            decisions.count(0, D::TrainingAccept) + decisions.count(0, D::TrainingReject),
            summary.training_hits
        );
    }

    #[test]
    fn ikt_defers_onto_in_flight_producer() {
        let engine = AtmEngine::new(AtmConfig::static_atm());
        let store = DataStore::new();
        let info = memoizable_info();
        let input = store.register_typed("in", vec![3.0f64, 4.0]).unwrap();
        let out_a = store.register_zeros::<f64>("a", 2).unwrap();
        let out_b = store.register_zeros::<f64>("b", 2).unwrap();
        let tracer = Tracer::new(false);

        let acc_a = vec![Access::read(&input), Access::write(&out_a)];
        let acc_b = vec![Access::read(&input), Access::write(&out_b)];
        let view_a = view_for(0, 0, &info, &acc_a);
        let view_b = view_for(1, 0, &info, &acc_b);

        // A starts executing (registers its key in the IKT)…
        assert_eq!(
            engine.before_execute(view_a, &store, &tracer, 0),
            Decision::Execute
        );
        // …and B, with the same inputs, arrives while A is still in flight.
        assert_eq!(
            engine.before_execute(view_b, &store, &tracer, 1),
            Decision::Deferred
        );

        // A's kernel runs and finishes: B must be completed with A's outputs.
        let ctx = atm_runtime::TaskContext::new(&store, &acc_a);
        (info.kernel)(&ctx);
        let completed = engine.after_execute(view_a, &store, &tracer, 0, true);
        assert_eq!(completed, vec![TaskId::from_raw(1)]);
        assert_eq!(store.read(out_b).lock().as_f64(), &[9.0, 16.0]);
        assert_eq!(engine.stats().ikt_deferred, 1);
    }

    #[test]
    fn disabling_ikt_prevents_deferral() {
        let engine = AtmEngine::new(AtmConfig::static_atm().without_ikt());
        let store = DataStore::new();
        let info = memoizable_info();
        let input = store.register_typed("in", vec![1.0f64]).unwrap();
        let out_a = store.register_zeros::<f64>("a", 1).unwrap();
        let out_b = store.register_zeros::<f64>("b", 1).unwrap();
        let tracer = Tracer::new(false);

        let acc_a = vec![Access::read(&input), Access::write(&out_a)];
        let acc_b = vec![Access::read(&input), Access::write(&out_b)];
        assert_eq!(
            engine.before_execute(view_for(0, 0, &info, &acc_a), &store, &tracer, 0),
            Decision::Execute
        );
        assert_eq!(
            engine.before_execute(view_for(1, 0, &info, &acc_b), &store, &tracer, 1),
            Decision::Execute,
            "without the IKT a concurrent identical task cannot be deferred"
        );
    }

    #[test]
    fn warm_start_reproduces_hits_across_engines() {
        let path =
            std::env::temp_dir().join(format!("atm-engine-warmstart-{}.bin", std::process::id()));

        // Cold engine: one execution populates the store; persist it.
        let cold = AtmEngine::new(AtmConfig::static_atm());
        let store = DataStore::new();
        let info = memoizable_info();
        let input = store.register_typed("in", vec![1.0f64, 2.0, 3.0]).unwrap();
        let out = store.register_zeros::<f64>("cold_out", 3).unwrap();
        let accesses = vec![Access::read(&input), Access::write(&out)];
        let (d, _) = drive(&cold, &store, view_for(0, 0, &info, &accesses));
        assert_eq!(d, Decision::Execute);
        cold.save_store(&path).unwrap();

        // Warm engine over a *fresh* data store: same input bytes, same task
        // type index, same key seed — the first task of its life is a hit.
        let warm = AtmEngine::new(AtmConfig::static_atm());
        let loaded = warm.warm_start_from(&path).unwrap();
        assert_eq!(loaded, 1);
        let store2 = DataStore::new();
        let input2 = store2.register_typed("in", vec![1.0f64, 2.0, 3.0]).unwrap();
        let out2 = store2.register_zeros::<f64>("warm_out", 3).unwrap();
        let accesses2 = vec![Access::read(&input2), Access::write(&out2)];
        let (d2, _) = drive(&warm, &store2, view_for(0, 0, &info, &accesses2));
        assert_eq!(d2, Decision::Memoized, "warm start must hit immediately");
        assert_eq!(store2.read(out2).lock().as_f64(), &[1.0, 4.0, 9.0]);
        assert_eq!(warm.stats().executed, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn store_policy_and_budget_are_plumbed_through_the_config() {
        let config = AtmConfig::static_atm()
            .with_policy(atm_store::PolicyKind::CostAware)
            .with_byte_budget(4096)
            .with_admission_fraction(0.5);
        let engine = AtmEngine::new(config);
        let store_config = engine.tht().store().config();
        assert_eq!(store_config.policy, atm_store::PolicyKind::CostAware);
        assert_eq!(store_config.byte_budget, Some(4096));
        assert!((store_config.max_entry_fraction - 0.5).abs() < 1e-12);
        assert_eq!(engine.tht().store().policy_name(), "cost-aware");
        assert_eq!(engine.store_counters(), Default::default());
    }

    #[test]
    fn inserted_entries_carry_the_measured_kernel_benefit() {
        let engine = AtmEngine::new(AtmConfig::static_atm());
        let store = DataStore::new();
        let info = memoizable_info();
        let input = store.register_typed("in", vec![1.0f64; 64]).unwrap();
        let out = store.register_zeros::<f64>("out", 64).unwrap();
        let accesses = vec![Access::read(&input), Access::write(&out)];
        let _ = drive(&engine, &store, view_for(0, 0, &info, &accesses));
        let exported = engine.tht().store().export();
        assert_eq!(exported.len(), 1);
        // drive() measures real time around the kernel, so the benefit can
        // be small but is recorded from the per-type timing stats.
        let out_b = store.register_zeros::<f64>("b", 64).unwrap();
        let acc_b = vec![Access::read(&input), Access::write(&out_b)];
        let (d, _) = drive(&engine, &store, view_for(1, 0, &info, &acc_b));
        assert_eq!(d, Decision::Memoized);
        assert_eq!(
            engine.store_counters().saved_ns,
            exported[0].benefit_ns,
            "a hit accrues exactly the stored benefit estimate"
        );
    }

    /// Tentpole behaviour: under the spec-respecting mode, three task types
    /// with different `MemoSpec`s resolve to three independent policies in
    /// the same engine.
    #[test]
    fn per_type_specs_resolve_independently_under_one_engine() {
        let engine = AtmEngine::new(AtmConfig::dynamic_atm());
        let store = DataStore::new();
        let square = |ctx: &atm_runtime::TaskContext<'_>| {
            let x = ctx.arg::<f64>(0);
            let out: Vec<f64> = x.iter().map(|v| v * v).collect();
            ctx.out(1, &out);
        };
        let exact = TaskTypeBuilder::new("exact", square)
            .arg::<f64>()
            .out::<f64>()
            .memo(MemoSpec::exact())
            .build();
        let dynamic = TaskTypeBuilder::new("dynamic", square)
            .arg::<f64>()
            .out::<f64>()
            .memo(MemoSpec::approximate().tau(0.05).training_window(1))
            .build();
        let fixed = TaskTypeBuilder::new("fixed", square)
            .arg::<f64>()
            .out::<f64>()
            .memo(MemoSpec::fixed_precision(0.25))
            .build();

        let input = store.register_typed("in", vec![2.0f64; 64]).unwrap();
        let mut task_id = 0u64;
        let mut run = |type_id: u32, info: &atm_runtime::TaskTypeInfo| -> Decision {
            let out = store
                .register_zeros::<f64>(format!("out{task_id}"), 64)
                .unwrap();
            let accesses = vec![Access::read(&input), Access::write(&out)];
            let view = view_for(task_id, type_id, info, &accesses);
            task_id += 1;
            drive(&engine, &store, view).0
        };

        // Interleave instances of the three types.
        for _ in 0..3 {
            run(0, &exact);
            run(1, &dynamic);
            run(2, &fixed);
        }

        // Exact: steady from the start at p = 100 %, no training ever.
        assert_eq!(engine.current_p(TaskTypeId::from_raw(0)), Some(1.0));
        // Dynamic: trained its own p down to the minimum (identical inputs
        // approximate perfectly), independent of the other types.
        let dynamic_p = engine.current_p(TaskTypeId::from_raw(1)).unwrap();
        assert!(
            dynamic_p < 0.01,
            "the adaptive type must have trained a small p, got {dynamic_p}"
        );
        // Fixed: pinned at its declared precision.
        let fixed_p = engine.current_p(TaskTypeId::from_raw(2)).unwrap();
        assert!((fixed_p - 0.25).abs() < 1e-12);

        let summaries = engine.type_summaries();
        let by_name = |name: &str| {
            summaries
                .values()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("no summary for {name}"))
                .clone()
        };
        let exact_summary = by_name("exact");
        assert!(exact_summary.steady);
        assert_eq!(exact_summary.training_hits, 0);
        assert!(exact_summary.tht_bypassed > 0, "exact type must hit");
        let dynamic_summary = by_name("dynamic");
        assert!(dynamic_summary.steady);
        assert!(dynamic_summary.training_hits > 0, "adaptive type trains");
        assert!(dynamic_summary.tht_bypassed > 0);
        let fixed_summary = by_name("fixed");
        assert!(fixed_summary.steady);
        assert_eq!(fixed_summary.training_hits, 0);
        assert!(fixed_summary.tht_bypassed > 0, "fixed type must hit");
    }

    /// The engine-wide Static override ignores per-type specs: everything
    /// becomes exact, as in the paper's Static ATM bars.
    #[test]
    fn static_mode_overrides_per_type_specs() {
        let engine = AtmEngine::new(AtmConfig::static_atm());
        let store = DataStore::new();
        let info = TaskTypeBuilder::new("would_be_fixed", |ctx| {
            let x = ctx.arg::<f64>(0);
            ctx.out(1, &x);
        })
        .arg::<f64>()
        .out::<f64>()
        .memo(MemoSpec::fixed_precision(0.25))
        .build();
        let input = store.register_typed("in", vec![1.0f64; 8]).unwrap();
        let out = store.register_zeros::<f64>("out", 8).unwrap();
        let accesses = vec![Access::read(&input), Access::write(&out)];
        let _ = drive(&engine, &store, view_for(0, 0, &info, &accesses));
        assert_eq!(
            engine.current_p(TaskTypeId::from_raw(0)),
            Some(1.0),
            "Static mode forces p = 100 % regardless of the spec"
        );
    }

    /// Per-argument overrides reach the key pipeline: an exact-pinned
    /// control argument distinguishes entries even when the type-wide p
    /// would never sample its differing byte.
    #[test]
    fn arg_exact_override_separates_control_arguments() {
        let engine = AtmEngine::new(AtmConfig::dynamic_atm());
        let store = DataStore::new();
        let info = TaskTypeBuilder::new("controlled", |ctx| {
            let mode = ctx.arg::<i32>(0)[0];
            let x = ctx.arg::<f64>(1);
            let out: Vec<f64> = x.iter().map(|v| v * f64::from(mode)).collect();
            ctx.out(2, &out);
        })
        .arg::<i32>()
        .arg::<f64>()
        .out::<f64>()
        .memo(MemoSpec::fixed_precision(0.25).arg_exact(0))
        .build();

        let field = store.register_typed("field", vec![3.0f64; 64]).unwrap();
        let mode_a = store.register_typed("mode_a", vec![2i32]).unwrap();
        // mode_b differs from mode_a only in the lowest byte — at p = 25 %
        // with MSB-first selection that byte is never sampled, so only the
        // arg_exact(0) override can keep the two modes apart.
        let mode_b = store.register_typed("mode_b", vec![3i32]).unwrap();
        let out_a = store.register_zeros::<f64>("oa", 64).unwrap();
        let out_b = store.register_zeros::<f64>("ob", 64).unwrap();

        let acc_a = vec![
            Access::read(&mode_a),
            Access::read(&field),
            Access::write(&out_a),
        ];
        let acc_b = vec![
            Access::read(&mode_b),
            Access::read(&field),
            Access::write(&out_b),
        ];
        assert_eq!(
            drive(&engine, &store, view_for(0, 0, &info, &acc_a)).0,
            Decision::Execute
        );
        assert_eq!(
            drive(&engine, &store, view_for(1, 0, &info, &acc_b)).0,
            Decision::Execute,
            "a different control value must miss, not alias the first entry"
        );
        assert_eq!(store.read(out_a).lock().as_f64(), &[6.0; 64]);
        assert_eq!(store.read(out_b).lock().as_f64(), &[9.0; 64]);
        assert_eq!(engine.stats().tht_bypassed, 0);

        // The same control value hits.
        let out_c = store.register_zeros::<f64>("oc", 64).unwrap();
        let acc_c = vec![
            Access::read(&mode_a),
            Access::read(&field),
            Access::write(&out_c),
        ];
        assert_eq!(
            drive(&engine, &store, view_for(2, 0, &info, &acc_c)).0,
            Decision::Memoized
        );
        assert_eq!(store.read(out_c).lock().as_f64(), &[6.0; 64]);
    }

    /// The spec's error metric drives the training comparisons.
    #[test]
    fn spec_metric_is_used_during_training() {
        let engine = AtmEngine::new(AtmConfig::dynamic_atm());
        let store = DataStore::new();
        let info = TaskTypeBuilder::new("ulp_strict", |ctx| {
            let x = ctx.arg::<f64>(0);
            ctx.out(1, &x);
        })
        .arg::<f64>()
        .out::<f64>()
        // MaxUlp with τ = 1: only bit-identical outputs pass training.
        .memo(
            MemoSpec::approximate()
                .metric(ErrorMetric::MaxUlp)
                .tau(1.0)
                .training_window(1),
        )
        .build();
        let state = engine.type_state(&view_for(0, 0, &info, &[]));
        assert_eq!(state.controller.lock().metric(), ErrorMetric::MaxUlp);
        assert!((state.controller.lock().tau_max() - 1.0).abs() < 1e-12);

        // A one-ULP output difference is τ = 1 ≥ τ_max: rejected, p doubles.
        let base = 1.0f64;
        let off_by_one_ulp = f64::from_bits(base.to_bits() + 1);
        let input = store.register_typed("in", vec![base; 4]).unwrap();
        let out = store.register_zeros::<f64>("out", 4).unwrap();
        let accesses = vec![Access::read(&input), Access::write(&out)];
        let view = view_for(0, 0, &info, &accesses);
        let reference = vec![OutputSnapshot {
            region: out.id(),
            elem_range: 0..4,
            data: atm_runtime::RegionData::F64(vec![off_by_one_ulp; 4]),
        }];
        store
            .write(out)
            .lock()
            .as_f64_mut()
            .copy_from_slice(&[base; 4]);
        let (tau, failing) =
            engine.failing_output_regions(&store, &view, &reference, 1.0, ErrorMetric::MaxUlp);
        assert_eq!(tau, 1.0);
        assert_eq!(failing, vec![out.id()]);
        // The Chebyshev metric would have accepted the same outputs.
        let (cheb_tau, cheb_failing) =
            engine.failing_output_regions(&store, &view, &reference, 1.0, ErrorMetric::Chebyshev);
        assert!(cheb_tau < 1e-12);
        assert!(cheb_failing.is_empty());
    }

    #[test]
    fn first_instance_spec_configures_the_type() {
        let engine = AtmEngine::new(AtmConfig::dynamic_atm());
        let store = DataStore::new();
        let info = memoizable_info(); // default (approximate) type spec
        let instance_spec = MemoSpec::fixed_precision(0.5);
        let input = store.register_typed("in", vec![1.0f64; 8]).unwrap();
        let out = store.register_zeros::<f64>("out", 8).unwrap();
        let accesses = vec![Access::read(&input), Access::write(&out)];
        let view = TaskView {
            memo: Some(&instance_spec),
            ..view_for(0, 0, &info, &accesses)
        };
        let _ = drive(&engine, &store, view);
        assert_eq!(
            engine.current_p(TaskTypeId::from_raw(0)),
            Some(0.5),
            "the first instance's spec configures the type's controller"
        );

        // Documented resolution rule: once the type's policy is resolved, a
        // later instance's spec does not re-configure it.
        let late_spec = MemoSpec::fixed_precision(0.125);
        let out2 = store.register_zeros::<f64>("out2", 8).unwrap();
        let accesses2 = vec![Access::read(&input), Access::write(&out2)];
        let view2 = TaskView {
            memo: Some(&late_spec),
            ..view_for(1, 0, &info, &accesses2)
        };
        let _ = drive(&engine, &store, view2);
        assert_eq!(
            engine.current_p(TaskTypeId::from_raw(0)),
            Some(0.5),
            "later instance specs must not re-configure a resolved type"
        );
    }

    #[test]
    fn fixed_p_mode_uses_the_requested_percentage() {
        let engine = AtmEngine::new(AtmConfig::fixed_p(0.5));
        let store = DataStore::new();
        let info = memoizable_info();
        let input = store.register_typed("in", vec![1.0f64; 8]).unwrap();
        let out = store.register_zeros::<f64>("out", 8).unwrap();
        let accesses = vec![Access::read(&input), Access::write(&out)];
        let _ = drive(&engine, &store, view_for(0, 0, &info, &accesses));
        assert!((engine.current_p(TaskTypeId::from_raw(0)).unwrap() - 0.5).abs() < 1e-12);
    }
}
