//! The In-flight Key Table (IKT).
//!
//! In a parallel execution a task A may become ready while a task B with the
//! same hash key is *currently executing*: B's outputs are not yet in the
//! THT, so A would miss and redundantly execute. The IKT (§III-A, Figure 1)
//! fixes this: it maps the keys of in-flight tasks to the executing task, so
//! A can register a *postponed copy-out* request; when B finishes it copies
//! its outputs into A's output regions and A completes without executing.
//!
//! The table holds at most as many keys as there are worker threads (only
//! in-flight tasks appear in it) and accesses never copy outputs, so — as in
//! the paper — a single lock protects it.

use crate::tht::EntryKey;
use atm_runtime::{Access, TaskId};
use atm_sync::Mutex;
use std::collections::HashMap;

/// A task waiting for an in-flight producer to provide its outputs.
#[derive(Debug, Clone)]
pub struct Waiter {
    /// The deferred task.
    pub task: TaskId,
    /// The deferred task's accesses (its write accesses receive the copies).
    pub accesses: Vec<Access>,
}

#[derive(Debug)]
struct InFlightEntry {
    producer: TaskId,
    waiters: Vec<Waiter>,
}

/// The In-flight Key Table.
#[derive(Debug, Default)]
pub struct InFlightKeyTable {
    inner: Mutex<HashMap<EntryKey, InFlightEntry>>,
}

impl InFlightKeyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `producer` as the in-flight task for `key`, if no other
    /// task already claims it. Returns true when this task is now the
    /// registered producer.
    pub fn register_producer(&self, key: EntryKey, producer: TaskId) -> bool {
        let mut inner = self.inner.lock();
        match inner.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(InFlightEntry {
                    producer,
                    waiters: Vec::new(),
                });
                true
            }
        }
    }

    /// If a task with this key is in flight, registers a postponed copy-out
    /// for `waiter` and returns the producer's id. Otherwise returns `None`.
    pub fn register_waiter(&self, key: &EntryKey, waiter: Waiter) -> Option<TaskId> {
        let mut inner = self.inner.lock();
        inner.get_mut(key).map(|entry| {
            entry.waiters.push(waiter);
            entry.producer
        })
    }

    /// Removes the in-flight entry of `producer` for `key` and returns the
    /// postponed copy-out requests registered against it.
    ///
    /// Returns an empty list if the entry does not exist or belongs to a
    /// different producer (which can only happen if `register_producer`
    /// returned false and the caller retires anyway — a logic error that is
    /// tolerated to keep retirement idempotent).
    pub fn retire(&self, key: &EntryKey, producer: TaskId) -> Vec<Waiter> {
        let mut inner = self.inner.lock();
        match inner.get(key) {
            Some(entry) if entry.producer == producer => {
                inner.remove(key).map(|e| e.waiters).unwrap_or_default()
            }
            _ => Vec::new(),
        }
    }

    /// Number of keys currently in flight.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no key is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint in bytes (keys + waiter bookkeeping).
    pub fn memory_bytes(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .values()
            .map(|entry| {
                std::mem::size_of::<EntryKey>()
                    + std::mem::size_of::<InFlightEntry>()
                    + entry.waiters.len() * std::mem::size_of::<Waiter>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_runtime::TaskTypeId;

    fn key(hash: u64) -> EntryKey {
        EntryKey::new(TaskTypeId::from_raw(0), hash, 1.0)
    }

    fn waiter(id: u64) -> Waiter {
        Waiter {
            task: TaskId::from_raw(id),
            accesses: vec![],
        }
    }

    #[test]
    fn producer_registration_is_exclusive_per_key() {
        let ikt = InFlightKeyTable::new();
        assert!(ikt.register_producer(key(1), TaskId::from_raw(10)));
        assert!(
            !ikt.register_producer(key(1), TaskId::from_raw(11)),
            "second producer for the same key is rejected"
        );
        assert!(
            ikt.register_producer(key(2), TaskId::from_raw(11)),
            "a different key is fine"
        );
        assert_eq!(ikt.len(), 2);
    }

    #[test]
    fn waiters_are_returned_to_the_right_producer_on_retire() {
        let ikt = InFlightKeyTable::new();
        ikt.register_producer(key(7), TaskId::from_raw(1));
        assert_eq!(
            ikt.register_waiter(&key(7), waiter(2)),
            Some(TaskId::from_raw(1))
        );
        assert_eq!(
            ikt.register_waiter(&key(7), waiter(3)),
            Some(TaskId::from_raw(1))
        );
        assert!(
            ikt.register_waiter(&key(8), waiter(4)).is_none(),
            "no producer in flight for key 8"
        );

        let waiters = ikt.retire(&key(7), TaskId::from_raw(1));
        assert_eq!(waiters.len(), 2);
        assert_eq!(waiters[0].task, TaskId::from_raw(2));
        assert_eq!(waiters[1].task, TaskId::from_raw(3));
        assert!(ikt.is_empty());
    }

    #[test]
    fn retire_by_wrong_producer_is_a_noop() {
        let ikt = InFlightKeyTable::new();
        ikt.register_producer(key(5), TaskId::from_raw(1));
        assert!(ikt.retire(&key(5), TaskId::from_raw(99)).is_empty());
        assert_eq!(ikt.len(), 1, "the real producer's entry must survive");
        assert!(ikt.retire(&key(5), TaskId::from_raw(1)).is_empty());
        assert!(ikt.is_empty());
    }

    #[test]
    fn retire_unknown_key_is_a_noop() {
        let ikt = InFlightKeyTable::new();
        assert!(ikt.retire(&key(1), TaskId::from_raw(0)).is_empty());
    }

    #[test]
    fn memory_accounting_counts_entries_and_waiters() {
        let ikt = InFlightKeyTable::new();
        assert_eq!(ikt.memory_bytes(), 0);
        ikt.register_producer(key(1), TaskId::from_raw(1));
        let base = ikt.memory_bytes();
        assert!(base > 0);
        ikt.register_waiter(&key(1), waiter(2));
        assert!(ikt.memory_bytes() > base);
    }
}
