//! The Dynamic ATM training controller (§III-D of the paper).
//!
//! Dynamic ATM splits the execution into a **training phase** and a
//! **steady-state phase**. During training, every THT hit still executes the
//! task and compares the stored (approximate) outputs against the freshly
//! computed ones with the task type's error metric — the Chebyshev relative
//! error τ (Eq. 1) by default, or whatever the type's
//! [`MemoSpec`](atm_runtime::MemoSpec) selected:
//!
//! * if τ ≥ τ_max the approximation was too aggressive: the selection
//!   percentage `p` is doubled (starting from 2⁻¹⁵, so at most 15 steps
//!   until p = 100 %) and the run of correct approximations restarts;
//! * if τ < τ_max the approximation is counted; after `L_training`
//!   correctly-approximated tasks at the current `p`, the controller
//!   freezes `p` and enters the steady state, where hits are bypassed for
//!   real.
//!
//! The controller also records which output regions exceeded τ_max during
//! training (outputs with chaotic behaviour); the engine refuses to memoize
//! tasks writing those regions in the steady state.

use atm_hash::Percentage;
use atm_metrics::{chebyshev_relative_error, max_ulp_error, rel_l2_error};
use atm_runtime::{ErrorMetric, RegionId};
use std::collections::HashSet;

/// Evaluates an [`ErrorMetric`] between the correct and the approximated
/// output of one region (both viewed as `f64` vectors).
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn evaluate_metric(metric: ErrorMetric, correct: &[f64], approx: &[f64]) -> f64 {
    match metric {
        ErrorMetric::Chebyshev => chebyshev_relative_error(correct, approx),
        ErrorMetric::RelL2 => rel_l2_error(correct, approx),
        ErrorMetric::MaxUlp => max_ulp_error(correct, approx),
    }
}

/// Phase of the Dynamic ATM controller for one task type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Exploring `p`; hits are verified by executing the task anyway.
    Training,
    /// `p` is frozen; hits bypass execution.
    Steady,
}

/// Outcome of a training-phase comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingOutcome {
    /// The approximation was within τ_max and counted towards `L_training`.
    Accepted,
    /// The approximation exceeded τ_max; `p` was doubled.
    Rejected,
    /// The approximation exceeded τ_max and `p` was already 100 %: the
    /// outputs are chaotic (only possible through output regions that do
    /// not respond to approximation at all).
    RejectedAtFullP,
}

/// Per-task-type adaptive state.
#[derive(Debug, Clone)]
pub struct TrainingController {
    phase: Phase,
    p: Percentage,
    correct_in_a_row: usize,
    l_training: usize,
    tau_max: f64,
    metric: ErrorMetric,
    doublings: usize,
    comparisons: u64,
    rejections: u64,
    unstable_outputs: HashSet<RegionId>,
}

impl TrainingController {
    /// Creates a controller in the training phase with `p = 2⁻¹⁵` and the
    /// paper-default Chebyshev metric.
    pub fn new(l_training: usize, tau_max: f64) -> Self {
        assert!(l_training >= 1, "L_training must be at least 1");
        assert!(tau_max > 0.0, "τ_max must be positive");
        TrainingController {
            phase: Phase::Training,
            p: Percentage::MIN,
            correct_in_a_row: 0,
            l_training,
            tau_max,
            metric: ErrorMetric::Chebyshev,
            doublings: 0,
            comparisons: 0,
            rejections: 0,
            unstable_outputs: HashSet::new(),
        }
    }

    /// Selects the error metric the training comparisons are judged with.
    #[must_use]
    pub fn with_metric(mut self, metric: ErrorMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Creates a controller that is already in the steady state with a fixed
    /// `p` — used for exact memoization (p = 100 %), fixed-precision specs
    /// and the Oracle configurations.
    pub fn fixed(p: Percentage) -> Self {
        TrainingController {
            phase: Phase::Steady,
            p,
            correct_in_a_row: 0,
            l_training: 1,
            tau_max: f64::INFINITY,
            metric: ErrorMetric::Chebyshev,
            doublings: 0,
            comparisons: 0,
            rejections: 0,
            unstable_outputs: HashSet::new(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// True while the controller is still training.
    pub fn is_training(&self) -> bool {
        self.phase == Phase::Training
    }

    /// The selection percentage to use for the next task of this type.
    pub fn current_p(&self) -> Percentage {
        self.p
    }

    /// The τ_max threshold.
    pub fn tau_max(&self) -> f64 {
        self.tau_max
    }

    /// The error metric training comparisons are judged with.
    pub fn metric(&self) -> ErrorMetric {
        self.metric
    }

    /// Number of training comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of rejected approximations (each one doubled `p`).
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Output regions that exceeded τ_max during training.
    pub fn unstable_outputs(&self) -> &HashSet<RegionId> {
        &self.unstable_outputs
    }

    /// True when `region` was found to respond badly to approximation.
    pub fn is_unstable(&self, region: RegionId) -> bool {
        self.unstable_outputs.contains(&region)
    }

    /// Records the result of a training-phase comparison.
    ///
    /// `tau` is the Chebyshev relative error between the THT-stored outputs
    /// and the freshly computed outputs; `failing_regions` are the output
    /// regions whose individual error exceeded τ_max (recorded as unstable).
    ///
    /// # Panics
    /// Panics if called in the steady state.
    pub fn record_comparison(&mut self, tau: f64, failing_regions: &[RegionId]) -> TrainingOutcome {
        assert!(
            self.is_training(),
            "training comparisons only happen in the training phase"
        );
        self.comparisons += 1;
        if tau < self.tau_max {
            self.correct_in_a_row += 1;
            if self.correct_in_a_row >= self.l_training {
                self.phase = Phase::Steady;
            }
            return TrainingOutcome::Accepted;
        }

        self.rejections += 1;
        self.correct_in_a_row = 0;
        for &region in failing_regions {
            self.unstable_outputs.insert(region);
        }
        if self.p.is_full() {
            // Cannot become more conservative: the offending outputs are
            // simply excluded from memoization (the Jacobi case in §IV-A).
            TrainingOutcome::RejectedAtFullP
        } else {
            self.p = self.p.doubled();
            self.doublings += 1;
            TrainingOutcome::Rejected
        }
    }

    /// Number of times `p` was doubled during training.
    pub fn doublings(&self) -> usize {
        self.doublings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_minimum_p_in_training() {
        let c = TrainingController::new(15, 0.01);
        assert!(c.is_training());
        assert_eq!(c.current_p(), Percentage::MIN);
        assert_eq!(c.doublings(), 0);
    }

    #[test]
    fn accepts_until_l_training_then_freezes() {
        let mut c = TrainingController::new(3, 0.01);
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(c.record_comparison(0.001, &[]), TrainingOutcome::Accepted);
        assert!(c.is_training());
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(c.phase(), Phase::Steady);
        assert_eq!(
            c.current_p(),
            Percentage::MIN,
            "p must not change when approximations are correct"
        );
        assert_eq!(c.comparisons(), 3);
    }

    #[test]
    fn rejection_doubles_p_and_resets_the_streak() {
        let mut c = TrainingController::new(2, 0.01);
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(c.record_comparison(0.5, &[]), TrainingOutcome::Rejected);
        assert!((c.current_p().fraction() - Percentage::MIN.fraction() * 2.0).abs() < 1e-12);
        assert_eq!(c.rejections(), 1);
        // The streak restarted: two more acceptances are needed.
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert!(c.is_training());
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(c.phase(), Phase::Steady);
    }

    #[test]
    fn fifteen_rejections_reach_full_p() {
        let mut c = TrainingController::new(1, 0.01);
        for _ in 0..Percentage::STEPS {
            assert_eq!(c.record_comparison(1.0, &[]), TrainingOutcome::Rejected);
        }
        assert!(c.current_p().is_full());
        assert_eq!(
            c.record_comparison(1.0, &[]),
            TrainingOutcome::RejectedAtFullP
        );
        assert!(c.current_p().is_full());
        assert_eq!(c.doublings(), Percentage::STEPS);
    }

    #[test]
    fn failing_regions_are_recorded_as_unstable() {
        let mut c = TrainingController::new(1, 0.01);
        let chaotic = RegionId::from_raw(7);
        c.record_comparison(0.9, &[chaotic]);
        assert!(c.is_unstable(chaotic));
        assert!(!c.is_unstable(RegionId::from_raw(8)));
        assert_eq!(c.unstable_outputs().len(), 1);
    }

    #[test]
    fn fixed_controller_is_immediately_steady() {
        let c = TrainingController::fixed(Percentage::from_fraction(0.25));
        assert_eq!(c.phase(), Phase::Steady);
        assert!((c.current_p().fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "training phase")]
    fn comparisons_in_steady_state_panic() {
        let mut c = TrainingController::fixed(Percentage::FULL);
        c.record_comparison(0.0, &[]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_l_training_is_rejected() {
        let _ = TrainingController::new(0, 0.01);
    }

    #[test]
    fn metric_defaults_to_chebyshev_and_is_selectable() {
        let c = TrainingController::new(1, 0.01);
        assert_eq!(c.metric(), ErrorMetric::Chebyshev);
        let c = TrainingController::new(1, 0.01).with_metric(ErrorMetric::MaxUlp);
        assert_eq!(c.metric(), ErrorMetric::MaxUlp);
    }

    #[test]
    fn evaluate_metric_dispatches_to_the_right_error() {
        let correct = [2.0, -4.0, 8.0];
        let approx = [2.0, -4.4, 8.2];
        assert!((evaluate_metric(ErrorMetric::Chebyshev, &correct, &approx) - 0.05).abs() < 1e-12);
        // RelL2 = sqrt(Σd²/Σc²) = sqrt((0.16+0.04)/84)
        let expected = (0.2f64 / 84.0).sqrt();
        assert!((evaluate_metric(ErrorMetric::RelL2, &correct, &approx) - expected).abs() < 1e-12);
        let next = f64::from_bits(2.0f64.to_bits() + 2);
        assert_eq!(evaluate_metric(ErrorMetric::MaxUlp, &[2.0], &[next]), 2.0);
    }
}
