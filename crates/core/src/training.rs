//! The Dynamic ATM training controller (§III-D of the paper).
//!
//! Dynamic ATM splits the execution into a **training phase** and a
//! **steady-state phase**. During training, every THT hit still executes the
//! task and compares the stored (approximate) outputs against the freshly
//! computed ones with the task type's error metric — the Chebyshev relative
//! error τ (Eq. 1) by default, or whatever the type's
//! [`MemoSpec`](atm_runtime::MemoSpec) selected:
//!
//! * if τ ≥ τ_max the approximation was too aggressive: the selection
//!   percentage `p` is doubled (starting from 2⁻¹⁵, so at most 15 steps
//!   until p = 100 %) and the run of correct approximations restarts;
//! * if τ < τ_max the approximation is counted; after `L_training`
//!   correctly-approximated tasks at the current `p`, the controller
//!   freezes `p` and enters the steady state, where hits are bypassed for
//!   real.
//!
//! The controller also records which output regions exceeded τ_max during
//! training (outputs with chaotic behaviour); the engine refuses to memoize
//! tasks writing those regions in the steady state.

use atm_hash::Percentage;
use atm_metrics::{chebyshev_relative_error, max_ulp_error, max_ulp_error_f32, rel_l2_error};
use atm_runtime::{ErrorMetric, RegionData, RegionId};
use std::collections::HashSet;

/// Evaluates an [`ErrorMetric`] between the correct and the approximated
/// output of one region (both viewed as `f64` vectors).
///
/// For [`ErrorMetric::MaxUlp`] this judges on the `f64` grid; prefer
/// [`evaluate_metric_data`] when the typed region data is at hand, so f32
/// outputs are judged on the f32 grid.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn evaluate_metric(metric: ErrorMetric, correct: &[f64], approx: &[f64]) -> f64 {
    match metric {
        ErrorMetric::Chebyshev => chebyshev_relative_error(correct, approx),
        ErrorMetric::RelL2 => rel_l2_error(correct, approx),
        ErrorMetric::MaxUlp => max_ulp_error(correct, approx),
    }
}

/// Evaluates an [`ErrorMetric`] between the correct and the approximated
/// output of one region, **natively per element type**.
///
/// The relative-error metrics (Chebyshev, relative L2) are computed on the
/// values, so the `f64` view is exact for every element type. The ULP
/// metric is computed on each type's own grid: `f32` outputs count steps
/// between adjacent `f32` values (converting them to `f64` first would turn
/// one f32 step into 2²⁹ f64 steps), integer outputs count the absolute
/// integer distance.
///
/// Shape or element-type mismatches yield infinity (a stored entry that no
/// longer matches the task's outputs can never be an acceptable
/// approximation).
pub fn evaluate_metric_data(metric: ErrorMetric, correct: &RegionData, approx: &RegionData) -> f64 {
    if correct.len() != approx.len() || correct.elem_type() != approx.elem_type() {
        return f64::INFINITY;
    }
    match metric {
        ErrorMetric::Chebyshev => {
            chebyshev_relative_error(&correct.to_f64_vec(), &approx.to_f64_vec())
        }
        ErrorMetric::RelL2 => rel_l2_error(&correct.to_f64_vec(), &approx.to_f64_vec()),
        ErrorMetric::MaxUlp => match (correct, approx) {
            (RegionData::F32(c), RegionData::F32(a)) => max_ulp_error_f32(c, a),
            (RegionData::F64(c), RegionData::F64(a)) => max_ulp_error(c, a),
            (RegionData::I32(c), RegionData::I32(a)) => c
                .iter()
                .zip(a)
                .map(|(&x, &y)| x.abs_diff(y))
                .max()
                .unwrap_or(0) as f64,
            (RegionData::I64(c), RegionData::I64(a)) => c
                .iter()
                .zip(a)
                .map(|(&x, &y)| x.abs_diff(y))
                .max()
                .unwrap_or(0) as f64,
            (RegionData::U8(c), RegionData::U8(a)) => c
                .iter()
                .zip(a)
                .map(|(&x, &y)| x.abs_diff(y))
                .max()
                .unwrap_or(0)
                .into(),
            _ => f64::INFINITY,
        },
    }
}

/// Phase of the Dynamic ATM controller for one task type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Exploring `p`; hits are verified by executing the task anyway.
    Training,
    /// `p` is frozen; hits bypass execution.
    Steady,
}

/// Outcome of a training-phase comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingOutcome {
    /// The approximation was within τ_max and counted towards `L_training`.
    Accepted,
    /// The approximation was accepted, and a long streak of acceptances far
    /// under τ_max let the controller *halve* `p` again (the opt-in
    /// down-shift of [`MemoSpec::down_shift`]); the training window
    /// restarted at the sharper precision.
    ///
    /// [`MemoSpec::down_shift`]: atm_runtime::MemoSpec::down_shift
    AcceptedDownShift,
    /// The approximation exceeded τ_max; `p` was doubled.
    Rejected,
    /// The approximation exceeded τ_max and `p` was already 100 %: the
    /// outputs are chaotic (only possible through output regions that do
    /// not respond to approximation at all).
    RejectedAtFullP,
}

/// Per-task-type adaptive state.
#[derive(Debug, Clone)]
pub struct TrainingController {
    phase: Phase,
    p: Percentage,
    correct_in_a_row: usize,
    l_training: usize,
    tau_max: f64,
    metric: ErrorMetric,
    doublings: usize,
    comparisons: u64,
    rejections: u64,
    /// Opt-in down-shift: when `Some(margin)`, a streak of `l_training`
    /// consecutive acceptances with `τ < margin · τ_max` halves `p` again
    /// instead of freezing (the controller only ever doubled before).
    down_margin: Option<f64>,
    over_precise_streak: usize,
    down_shifts: u64,
    unstable_outputs: HashSet<RegionId>,
}

impl TrainingController {
    /// Creates a controller in the training phase with `p = 2⁻¹⁵` and the
    /// paper-default Chebyshev metric.
    pub fn new(l_training: usize, tau_max: f64) -> Self {
        assert!(l_training >= 1, "L_training must be at least 1");
        assert!(tau_max > 0.0, "τ_max must be positive");
        TrainingController {
            phase: Phase::Training,
            p: Percentage::MIN,
            correct_in_a_row: 0,
            l_training,
            tau_max,
            metric: ErrorMetric::Chebyshev,
            doublings: 0,
            comparisons: 0,
            rejections: 0,
            down_margin: None,
            over_precise_streak: 0,
            down_shifts: 0,
            unstable_outputs: HashSet::new(),
        }
    }

    /// Selects the error metric the training comparisons are judged with.
    #[must_use]
    pub fn with_metric(mut self, metric: ErrorMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Enables the adaptive down-shift: after `l_training` consecutive
    /// acceptances whose observed error stays below `margin · τ_max`, the
    /// controller halves `p` (down to [`Percentage::MIN`]) and restarts the
    /// training window, instead of freezing an over-precise `p`.
    #[must_use]
    pub fn with_down_shift(mut self, margin: f64) -> Self {
        assert!(
            margin.is_finite() && margin > 0.0 && margin < 1.0,
            "the down-shift margin must be in (0, 1), got {margin}"
        );
        self.down_margin = Some(margin);
        self
    }

    /// Creates a controller that is already in the steady state with a fixed
    /// `p` — used for exact memoization (p = 100 %), fixed-precision specs
    /// and the Oracle configurations.
    pub fn fixed(p: Percentage) -> Self {
        TrainingController {
            phase: Phase::Steady,
            p,
            correct_in_a_row: 0,
            l_training: 1,
            tau_max: f64::INFINITY,
            metric: ErrorMetric::Chebyshev,
            doublings: 0,
            comparisons: 0,
            rejections: 0,
            down_margin: None,
            over_precise_streak: 0,
            down_shifts: 0,
            unstable_outputs: HashSet::new(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// True while the controller is still training.
    pub fn is_training(&self) -> bool {
        self.phase == Phase::Training
    }

    /// The selection percentage to use for the next task of this type.
    pub fn current_p(&self) -> Percentage {
        self.p
    }

    /// The τ_max threshold.
    pub fn tau_max(&self) -> f64 {
        self.tau_max
    }

    /// The error metric training comparisons are judged with.
    pub fn metric(&self) -> ErrorMetric {
        self.metric
    }

    /// Number of training comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of rejected approximations (each one doubled `p`).
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Output regions that exceeded τ_max during training.
    pub fn unstable_outputs(&self) -> &HashSet<RegionId> {
        &self.unstable_outputs
    }

    /// True when `region` was found to respond badly to approximation.
    pub fn is_unstable(&self, region: RegionId) -> bool {
        self.unstable_outputs.contains(&region)
    }

    /// Records the result of a training-phase comparison.
    ///
    /// `tau` is the Chebyshev relative error between the THT-stored outputs
    /// and the freshly computed outputs; `failing_regions` are the output
    /// regions whose individual error exceeded τ_max (recorded as unstable).
    ///
    /// # Panics
    /// Panics if called in the steady state.
    pub fn record_comparison(&mut self, tau: f64, failing_regions: &[RegionId]) -> TrainingOutcome {
        assert!(
            self.is_training(),
            "training comparisons only happen in the training phase"
        );
        self.comparisons += 1;
        if tau < self.tau_max {
            self.correct_in_a_row += 1;
            let over_precise = self.down_margin.is_some_and(|m| tau < m * self.tau_max);
            if over_precise {
                self.over_precise_streak += 1;
            } else {
                self.over_precise_streak = 0;
            }
            // Down-shift check comes before the freeze: a whole window of
            // far-too-precise acceptances means a cheaper p is worth
            // exploring, so the window restarts at p/2 instead of freezing.
            if over_precise && self.over_precise_streak >= self.l_training && !self.p.is_min() {
                self.p = self.p.halved();
                self.down_shifts += 1;
                self.over_precise_streak = 0;
                self.correct_in_a_row = 0;
                return TrainingOutcome::AcceptedDownShift;
            }
            if self.correct_in_a_row >= self.l_training {
                self.phase = Phase::Steady;
            }
            return TrainingOutcome::Accepted;
        }

        self.rejections += 1;
        self.correct_in_a_row = 0;
        self.over_precise_streak = 0;
        for &region in failing_regions {
            self.unstable_outputs.insert(region);
        }
        if self.p.is_full() {
            // Cannot become more conservative: the offending outputs are
            // simply excluded from memoization (the Jacobi case in §IV-A).
            TrainingOutcome::RejectedAtFullP
        } else {
            self.p = self.p.doubled();
            self.doublings += 1;
            TrainingOutcome::Rejected
        }
    }

    /// Number of times `p` was doubled during training.
    pub fn doublings(&self) -> usize {
        self.doublings
    }

    /// Number of times the adaptive down-shift halved `p` again.
    pub fn down_shifts(&self) -> u64 {
        self.down_shifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_minimum_p_in_training() {
        let c = TrainingController::new(15, 0.01);
        assert!(c.is_training());
        assert_eq!(c.current_p(), Percentage::MIN);
        assert_eq!(c.doublings(), 0);
    }

    #[test]
    fn accepts_until_l_training_then_freezes() {
        let mut c = TrainingController::new(3, 0.01);
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(c.record_comparison(0.001, &[]), TrainingOutcome::Accepted);
        assert!(c.is_training());
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(c.phase(), Phase::Steady);
        assert_eq!(
            c.current_p(),
            Percentage::MIN,
            "p must not change when approximations are correct"
        );
        assert_eq!(c.comparisons(), 3);
    }

    #[test]
    fn rejection_doubles_p_and_resets_the_streak() {
        let mut c = TrainingController::new(2, 0.01);
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(c.record_comparison(0.5, &[]), TrainingOutcome::Rejected);
        assert!((c.current_p().fraction() - Percentage::MIN.fraction() * 2.0).abs() < 1e-12);
        assert_eq!(c.rejections(), 1);
        // The streak restarted: two more acceptances are needed.
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert!(c.is_training());
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(c.phase(), Phase::Steady);
    }

    #[test]
    fn fifteen_rejections_reach_full_p() {
        let mut c = TrainingController::new(1, 0.01);
        for _ in 0..Percentage::STEPS {
            assert_eq!(c.record_comparison(1.0, &[]), TrainingOutcome::Rejected);
        }
        assert!(c.current_p().is_full());
        assert_eq!(
            c.record_comparison(1.0, &[]),
            TrainingOutcome::RejectedAtFullP
        );
        assert!(c.current_p().is_full());
        assert_eq!(c.doublings(), Percentage::STEPS);
    }

    #[test]
    fn failing_regions_are_recorded_as_unstable() {
        let mut c = TrainingController::new(1, 0.01);
        let chaotic = RegionId::from_raw(7);
        c.record_comparison(0.9, &[chaotic]);
        assert!(c.is_unstable(chaotic));
        assert!(!c.is_unstable(RegionId::from_raw(8)));
        assert_eq!(c.unstable_outputs().len(), 1);
    }

    #[test]
    fn fixed_controller_is_immediately_steady() {
        let c = TrainingController::fixed(Percentage::from_fraction(0.25));
        assert_eq!(c.phase(), Phase::Steady);
        assert!((c.current_p().fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "training phase")]
    fn comparisons_in_steady_state_panic() {
        let mut c = TrainingController::fixed(Percentage::FULL);
        c.record_comparison(0.0, &[]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_l_training_is_rejected() {
        let _ = TrainingController::new(0, 0.01);
    }

    #[test]
    fn metric_defaults_to_chebyshev_and_is_selectable() {
        let c = TrainingController::new(1, 0.01);
        assert_eq!(c.metric(), ErrorMetric::Chebyshev);
        let c = TrainingController::new(1, 0.01).with_metric(ErrorMetric::MaxUlp);
        assert_eq!(c.metric(), ErrorMetric::MaxUlp);
    }

    #[test]
    fn down_shift_lowers_p_after_an_over_precise_window() {
        let mut c = TrainingController::new(2, 0.01).with_down_shift(0.1);
        // Two rejections push p up two rungs.
        assert_eq!(c.record_comparison(1.0, &[]), TrainingOutcome::Rejected);
        assert_eq!(c.record_comparison(1.0, &[]), TrainingOutcome::Rejected);
        let high = c.current_p();
        assert!((high.fraction() - Percentage::MIN.fraction() * 4.0).abs() < 1e-15);
        // A full window of acceptances far under τ_max halves p instead of
        // freezing it.
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(
            c.record_comparison(0.0, &[]),
            TrainingOutcome::AcceptedDownShift
        );
        assert!(c.is_training(), "a down-shift restarts the window");
        assert_eq!(c.down_shifts(), 1);
        assert!((c.current_p().fraction() - high.halved().fraction()).abs() < 1e-15);
        // Another over-precise window at p = 2·MIN shifts down to MIN …
        c.record_comparison(0.0, &[]);
        assert_eq!(
            c.record_comparison(0.0, &[]),
            TrainingOutcome::AcceptedDownShift
        );
        assert!(c.current_p().is_min());
        // … where the next window freezes (no shift below MIN).
        c.record_comparison(0.0, &[]);
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(c.phase(), Phase::Steady);
        assert_eq!(c.down_shifts(), 2);
    }

    #[test]
    fn down_shift_needs_the_full_streak_of_over_precise_acceptances() {
        let mut c = TrainingController::new(3, 0.01).with_down_shift(0.1);
        c.record_comparison(1.0, &[]); // p -> 2·MIN
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        // An acceptance inside (margin·τ_max, τ_max) breaks the streak.
        assert_eq!(c.record_comparison(0.005, &[]), TrainingOutcome::Accepted);
        assert_eq!(
            c.record_comparison(0.0, &[]),
            TrainingOutcome::Accepted,
            "the window freezes: only 1 of the last 3 was over-precise"
        );
        assert_eq!(c.phase(), Phase::Steady);
        assert_eq!(c.down_shifts(), 0);
    }

    #[test]
    fn without_the_opt_in_the_controller_never_down_shifts() {
        let mut c = TrainingController::new(2, 0.01);
        c.record_comparison(1.0, &[]);
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(c.record_comparison(0.0, &[]), TrainingOutcome::Accepted);
        assert_eq!(c.phase(), Phase::Steady);
        assert_eq!(c.down_shifts(), 0);
        assert!(
            (c.current_p().fraction() - Percentage::MIN.fraction() * 2.0).abs() < 1e-15,
            "the pre-down-shift trajectory is unchanged"
        );
    }

    #[test]
    #[should_panic(expected = "down-shift margin")]
    fn down_shift_rejects_an_out_of_range_margin() {
        let _ = TrainingController::new(1, 0.01).with_down_shift(1.5);
    }

    #[test]
    fn metric_data_judges_f32_on_the_f32_grid() {
        let x = 1.0f32;
        let next = f32::from_bits(x.to_bits() + 1);
        let correct = RegionData::F32(vec![x; 3]);
        let approx = RegionData::F32(vec![x, next, x]);
        assert_eq!(
            evaluate_metric_data(ErrorMetric::MaxUlp, &correct, &approx),
            1.0,
            "adjacent f32 values are 1 ULP apart on the f32 grid"
        );
        // The old f64-grid path saw the same pair as 2²⁹ ULPs apart.
        let widened_c: Vec<f64> = vec![f64::from(x); 3];
        let widened_a = vec![f64::from(x), f64::from(next), f64::from(x)];
        assert_eq!(
            evaluate_metric(ErrorMetric::MaxUlp, &widened_c, &widened_a),
            (1u64 << 29) as f64
        );
    }

    #[test]
    fn metric_data_handles_f64_integers_and_mismatches() {
        let next = f64::from_bits(2.0f64.to_bits() + 2);
        assert_eq!(
            evaluate_metric_data(
                ErrorMetric::MaxUlp,
                &RegionData::F64(vec![2.0]),
                &RegionData::F64(vec![next])
            ),
            2.0
        );
        assert_eq!(
            evaluate_metric_data(
                ErrorMetric::MaxUlp,
                &RegionData::I32(vec![5, -3]),
                &RegionData::I32(vec![7, -3])
            ),
            2.0
        );
        assert_eq!(
            evaluate_metric_data(
                ErrorMetric::MaxUlp,
                &RegionData::U8(vec![10]),
                &RegionData::U8(vec![250])
            ),
            240.0
        );
        // Element-type and shape mismatches can never be acceptable.
        assert!(evaluate_metric_data(
            ErrorMetric::MaxUlp,
            &RegionData::F32(vec![1.0]),
            &RegionData::F64(vec![1.0])
        )
        .is_infinite());
        assert!(evaluate_metric_data(
            ErrorMetric::Chebyshev,
            &RegionData::F64(vec![1.0]),
            &RegionData::F64(vec![1.0, 2.0])
        )
        .is_infinite());
        // Value metrics agree with the f64 view.
        assert!(
            (evaluate_metric_data(
                ErrorMetric::Chebyshev,
                &RegionData::F32(vec![2.0, -4.0, 8.0]),
                &RegionData::F32(vec![2.0, -4.4, 8.2])
            ) - 0.05)
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn evaluate_metric_dispatches_to_the_right_error() {
        let correct = [2.0, -4.0, 8.0];
        let approx = [2.0, -4.4, 8.2];
        assert!((evaluate_metric(ErrorMetric::Chebyshev, &correct, &approx) - 0.05).abs() < 1e-12);
        // RelL2 = sqrt(Σd²/Σc²) = sqrt((0.16+0.04)/84)
        let expected = (0.2f64 / 84.0).sqrt();
        assert!((evaluate_metric(ErrorMetric::RelL2, &correct, &approx) - expected).abs() < 1e-12);
        let next = f64::from_bits(2.0f64.to_bits() + 2);
        assert_eq!(evaluate_metric(ErrorMetric::MaxUlp, &[2.0], &[next]), 2.0);
    }
}
