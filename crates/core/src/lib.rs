//! # ATM — Approximate Task Memoization
//!
//! This crate implements the runtime-system technique of *"ATM: Approximate
//! Task Memoization in the Runtime System"* (Brumar, Casas, Moretó, Valero,
//! Sohi — IPDPS 2017) on top of the [`atm_runtime`] task-dataflow runtime.
//!
//! ATM transparently eliminates redundant task executions:
//!
//! * **Static ATM** hashes the complete data inputs of every task of a
//!   programmer-selected task type and stores the task outputs in a
//!   [`tht::TaskHistoryTable`]. A later task with the same input hash gets
//!   its outputs copied instead of executing, with zero accuracy loss.
//! * **Dynamic ATM** additionally *approximates*: it hashes only a
//!   percentage `p` of the input bytes (most-significant bytes first), so
//!   similar-but-not-identical tasks can also be memoized. An adaptive
//!   [`training::TrainingController`] picks the smallest `p` that keeps the
//!   per-task Chebyshev error below the programmer's `τ_max`.
//! * The [`ikt::InFlightKeyTable`] catches redundancy between concurrently
//!   running tasks: a ready task whose twin is still executing defers to it
//!   instead of recomputing.
//!
//! The engine plugs into the runtime as a
//! [`TaskInterceptor`](atm_runtime::TaskInterceptor):
//!
//! ```
//! use atm_core::{AtmConfig, AtmEngine};
//! use atm_runtime::prelude::*;
//!
//! let engine = AtmEngine::shared(AtmConfig::static_atm());
//! let rt = RuntimeBuilder::new().workers(2).interceptor(engine.clone()).build();
//!
//! let input = rt.store().register_typed("in", vec![1.0f64, 2.0, 3.0, 4.0]).unwrap();
//! let out_a = rt.store().register_zeros::<f64>("a", 1).unwrap();
//! let out_b = rt.store().register_zeros::<f64>("b", 1).unwrap();
//!
//! // The programmer opts the task type into memoization, as in the paper,
//! // and declares its access signature for submission-time validation.
//! let sum = rt.register_task_type(
//!     TaskTypeBuilder::new("sum", |ctx| {
//!         let total: f64 = ctx.arg::<f64>(0).iter().sum();
//!         ctx.out(1, &[total]);
//!     })
//!     .arg::<f64>()
//!     .out::<f64>()
//!     .memoizable()
//!     .build(),
//! );
//!
//! // Two tasks with identical inputs: the second one is memoized.
//! rt.task(sum).reads(&input).writes(&out_a).submit().unwrap();
//! rt.taskwait();
//! rt.task(sum).reads(&input).writes(&out_b).submit().unwrap();
//! rt.taskwait();
//!
//! assert_eq!(rt.store().read(out_b).lock().as_f64(), &[10.0]);
//! assert_eq!(engine.stats().tht_bypassed, 1);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod ikt;
pub mod key;
pub mod stats;
pub mod tht;
pub mod training;

/// Output snapshots (moved to the `atm-store` crate; re-exported here so the
/// `atm_core::snapshot` paths keep working).
pub use atm_store::snapshot;

pub use engine::{AtmConfig, AtmEngine, AtmMode};
pub use ikt::{InFlightKeyTable, Waiter};
pub use key::{KeyGenerator, KeyResult};
pub use snapshot::OutputSnapshot;
pub use stats::{AtmStats, AtmStatsSnapshot, ReuseEvent, TypeSummary};
pub use tht::{EntryKey, TaskHistoryTable, ThtConfig, ThtEntry};
pub use training::{Phase, TrainingController, TrainingOutcome};

/// Re-export of the selection-percentage type used throughout the API.
pub use atm_hash::Percentage;

/// Re-exports of the memo-store subsystem the THT is built on: policies,
/// budgets, admission control and persistence.
pub use atm_store::{
    EvictionPolicy, InsertOutcome, MemoStore, PersistError, PolicyKind, StoreConfig,
    StoreCountersSnapshot,
};
