//! # ATM — Approximate Task Memoization
//!
//! This crate implements the runtime-system technique of *"ATM: Approximate
//! Task Memoization in the Runtime System"* (Brumar, Casas, Moretó, Valero,
//! Sohi — IPDPS 2017) on top of the [`atm_runtime`] task-dataflow runtime.
//!
//! ATM transparently eliminates redundant task executions. Approximation
//! policy is declared **per task type** through a
//! [`MemoSpec`], stated where the kernel is
//! registered:
//!
//! * `MemoSpec::exact()` hashes the complete data inputs and stores the
//!   task outputs in the [`tht::TaskHistoryTable`]. A later task with the
//!   same input hash gets its outputs copied instead of executing, with
//!   zero accuracy loss (the paper's Static ATM).
//! * `MemoSpec::approximate()` additionally *approximates*: it hashes only
//!   a percentage `p` of the input bytes (most-significant bytes first), so
//!   similar-but-not-identical tasks can also be memoized. An adaptive
//!   [`training::TrainingController`] picks the smallest `p` that keeps the
//!   per-task error below the spec's `τ_max`, judged with the spec's
//!   [`ErrorMetric`] over the spec's training
//!   window (the paper's Dynamic ATM, now with per-type thresholds,
//!   metrics and per-argument precision overrides).
//! * `MemoSpec::fixed_precision(p)` pins `p` offline (the evaluation's
//!   Oracle configurations).
//! * The [`ikt::InFlightKeyTable`] catches redundancy between concurrently
//!   running tasks: a ready task whose twin is still executing defers to it
//!   instead of recomputing.
//!
//! Different types run different policies concurrently in one runtime; the
//! engine-wide [`AtmMode`] remains only as a bench-harness override (force
//! everything exact, force one `p`, or disable ATM — see [`AtmMode`]).
//!
//! The engine plugs into the runtime as a
//! [`TaskInterceptor`](atm_runtime::TaskInterceptor):
//!
//! ```
//! use atm_core::{AtmConfig, AtmEngine};
//! use atm_runtime::prelude::*;
//!
//! // `dynamic_atm()` = respect each task type's declared MemoSpec.
//! let engine = AtmEngine::shared(AtmConfig::dynamic_atm());
//! let rt = RuntimeBuilder::new().workers(2).interceptor(engine.clone()).build();
//!
//! let input = rt.store().register_typed("in", vec![1.0f64, 2.0, 3.0, 4.0]).unwrap();
//! let out_a = rt.store().register_zeros::<f64>("a", 1).unwrap();
//! let out_b = rt.store().register_zeros::<f64>("b", 1).unwrap();
//!
//! // The programmer declares the type's approximation policy next to its
//! // kernel and access signature: exact hashing for this type.
//! let sum = rt.register_task_type(
//!     TaskTypeBuilder::new("sum", |ctx| {
//!         let total: f64 = ctx.arg::<f64>(0).iter().sum();
//!         ctx.out(1, &[total]);
//!     })
//!     .arg::<f64>()
//!     .out::<f64>()
//!     .memo(MemoSpec::exact())
//!     .build(),
//! );
//! // Another type in the same runtime can train its own approximation:
//! //   .memo(MemoSpec::approximate().tau(1e-3).metric(ErrorMetric::RelL2)
//! //         .training_window(32).arg_exact(0))
//!
//! // Two tasks with identical inputs: the second one is memoized.
//! rt.task(sum).reads(&input).writes(&out_a).submit().unwrap();
//! rt.taskwait();
//! rt.task(sum).reads(&input).writes(&out_b).submit().unwrap();
//! rt.taskwait();
//!
//! assert_eq!(rt.store().read(out_b).lock().as_f64(), &[10.0]);
//! assert_eq!(engine.stats().tht_bypassed, 1);
//!
//! // Wave submission goes through the batched builder: one validation and
//! // one dependence pass for the whole wave. Finished graph nodes retire
//! // (their slots are recycled), so a long-running service's graph memory
//! // follows the live window — both visible in the runtime stats.
//! let mut wave = rt.tasks(sum);
//! for i in 0..8 {
//!     let out = rt.store().register_zeros::<f64>(format!("w{i}"), 1).unwrap();
//!     wave = wave.next().reads(&input).writes(&out);
//! }
//! assert_eq!(wave.submit_all().unwrap().len(), 8);
//! rt.taskwait();
//! let stats = rt.stats();
//! assert_eq!(stats.live_nodes, 0, "every finished wave retires");
//! assert_eq!(stats.retired_nodes, 10);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod ikt;
pub mod key;
pub mod stats;
pub mod tht;
pub mod training;

/// Output snapshots (moved to the `atm-store` crate; re-exported here so the
/// `atm_core::snapshot` paths keep working).
pub use atm_store::snapshot;

pub use engine::{AtmConfig, AtmEngine, AtmMode};
pub use ikt::{InFlightKeyTable, Waiter};
pub use key::{KeyGenerator, KeyResult};
pub use snapshot::OutputSnapshot;
pub use stats::{AtmStats, AtmStatsSnapshot, ReuseEvent, TypeSummary};
pub use tht::{EntryKey, TaskHistoryTable, ThtConfig, ThtEntry};
pub use training::{
    evaluate_metric, evaluate_metric_data, Phase, TrainingController, TrainingOutcome,
};

/// Re-exports of the per-task-type approximation-policy API (declared on
/// `TaskTypeBuilder::memo` in `atm-runtime`, consumed by the engine here).
pub use atm_runtime::{ArgPrecision, ErrorMetric, MemoPolicy, MemoSpec, MemoSpecError};

/// Re-export of the selection-percentage type used throughout the API.
pub use atm_hash::Percentage;

/// Re-exports of the memo-store subsystem the THT is built on: policies,
/// budgets, admission control and persistence.
pub use atm_store::{
    EvictionPolicy, InsertOutcome, MemoStore, PersistError, PolicyKind, StoreConfig,
    StoreCountersSnapshot,
};
