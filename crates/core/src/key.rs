//! Hash-key generation for task instances.
//!
//! Combines the runtime's view of a task (its read accesses over typed
//! regions) with the `atm-hash` sampling machinery (§III-B/§III-C of the
//! paper): the concatenated input bytes are sampled through a per-task-type
//! shuffled index vector (built once and cached) and hashed with the Jenkins
//! hash into the 8-byte key stored in the THT/IKT.
//!
//! The cost of computing a key is proportional to the number of *selected*
//! bytes: the sampled bytes are gathered directly from the typed region
//! storage, without serialising the whole input first. This is what makes
//! Dynamic ATM's small `p` values reduce the hashing overhead (the gap
//! between "Static ATM" and "Oracle (100%)" in Figure 3).

use crate::snapshot::elem_range_of;
use atm_hash::shuffle::InputSpec;
use atm_hash::{jenkins_hash64, ByteLayout, InputSampler, Percentage};
use atm_runtime::{Access, DataStore};
use atm_sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shape of a task instance's inputs: `(elements, elem_width)` per read
/// access. Task types normally have a fixed shape, but the paper explicitly
/// supports input sizes that vary at execution time, so samplers are cached
/// per shape.
pub type LayoutSignature = Vec<(usize, usize)>;

/// Cache of per-argument samplers, keyed by the read-argument index and its
/// `(elements, elem_width)` shape.
type ArgSamplerCache = HashMap<(usize, (usize, usize)), Arc<InputSampler>>;

/// Per-task-type hash-key generator with cached shuffled index vectors.
///
/// Precision is a *vector*: every read access carries its own selection
/// percentage, which is how a [`MemoSpec`](atm_runtime::MemoSpec)'s
/// per-argument overrides reach the key pipeline (a small control argument
/// hashed exactly, a large field argument hashed at the trained `p`). When
/// every entry of the vector is equal — the default, override-free case —
/// the generator uses the exact same whole-layout shuffle as the original
/// single-`p` implementation, so default-spec keys are bit-identical to the
/// paper reproduction's.
#[derive(Debug)]
pub struct KeyGenerator {
    samplers: Mutex<HashMap<LayoutSignature, Arc<InputSampler>>>,
    /// Per-argument samplers for mixed-precision instances.
    arg_samplers: Mutex<ArgSamplerCache>,
    type_aware: bool,
    seed: u64,
}

impl KeyGenerator {
    /// Creates a generator for one task type. `seed` makes the index
    /// shuffle (and therefore the keys) reproducible; `type_aware` selects
    /// the significance-ordered byte selection of §III-C.
    pub fn new(seed: u64, type_aware: bool) -> Self {
        KeyGenerator {
            samplers: Mutex::new(HashMap::new()),
            arg_samplers: Mutex::new(HashMap::new()),
            type_aware,
            seed,
        }
    }

    /// Whether type-aware selection is enabled.
    pub fn is_type_aware(&self) -> bool {
        self.type_aware
    }

    /// Layout signature of a task instance (read accesses only).
    pub fn signature(store: &DataStore, accesses: &[Access]) -> LayoutSignature {
        accesses
            .iter()
            .filter(|a| a.mode.is_read())
            .map(|a| (elem_range_of(store, a).len(), a.elem.width()))
            .collect()
    }

    /// Computes the hash key of a task instance with one selection
    /// percentage per read access (in access-declaration order).
    ///
    /// # Panics
    /// Panics if `precisions` does not have exactly one entry per read
    /// access.
    pub fn compute(
        &self,
        store: &DataStore,
        accesses: &[Access],
        precisions: &[Percentage],
    ) -> KeyResult {
        let reads: Vec<&Access> = accesses.iter().filter(|a| a.mode.is_read()).collect();
        assert_eq!(
            precisions.len(),
            reads.len(),
            "one precision per read access: got {} precisions for {} reads",
            precisions.len(),
            reads.len()
        );
        let ranges: Vec<std::ops::Range<usize>> =
            reads.iter().map(|a| elem_range_of(store, a)).collect();
        let signature: LayoutSignature = ranges
            .iter()
            .zip(&reads)
            .map(|(r, a)| (r.len(), a.elem.width()))
            .collect();
        let total_bytes: usize = signature.iter().map(|(n, w)| n * w).sum();

        if total_bytes == 0 {
            return KeyResult {
                key: jenkins_hash64(&[], self.seed),
                selected_bytes: 0,
                total_bytes: 0,
            };
        }

        // The uniform case (no per-argument overrides) goes through the
        // whole-layout shuffle, bit-identical to the single-`p` pipeline.
        if precisions.windows(2).all(|w| w[0] == w[1]) {
            return self.compute_uniform_inner(
                store,
                &reads,
                &ranges,
                &signature,
                total_bytes,
                precisions[0],
            );
        }

        // Mixed precision: gather per argument — full segments contiguously,
        // sampled segments through a per-argument significance shuffle.
        let mut buf = Vec::new();
        for (j, ((access, range), &p)) in reads.iter().zip(&ranges).zip(precisions).enumerate() {
            let (elements, width) = signature[j];
            if elements == 0 {
                continue;
            }
            let region = store.read(access.region);
            let guard = region.lock();
            if p.is_full() {
                buf.extend_from_slice(&guard.bytes_in_elem_range(range.clone()));
                continue;
            }
            let sampler = self.arg_sampler_for(j, (elements, width));
            let base_byte = range.start * width;
            for &flat in sampler.selected_indices(p) {
                buf.push(guard.byte_at(base_byte + flat as usize));
            }
        }
        KeyResult {
            key: jenkins_hash64(&buf, self.seed),
            selected_bytes: buf.len(),
            total_bytes,
        }
    }

    /// Computes the hash key with one uniform selection percentage over all
    /// read accesses (the override-free fast path; also convenient for
    /// benchmarks and tests).
    pub fn compute_uniform(
        &self,
        store: &DataStore,
        accesses: &[Access],
        p: Percentage,
    ) -> KeyResult {
        let reads = accesses.iter().filter(|a| a.mode.is_read()).count();
        self.compute(store, accesses, &vec![p; reads])
    }

    fn compute_uniform_inner(
        &self,
        store: &DataStore,
        reads: &[&Access],
        ranges: &[std::ops::Range<usize>],
        signature: &LayoutSignature,
        total_bytes: usize,
        p: Percentage,
    ) -> KeyResult {
        // Full selection (exact memoization): hash the inputs contiguously
        // without going through the index vector.
        if p.is_full() {
            let mut buf = Vec::with_capacity(total_bytes);
            for (access, range) in reads.iter().zip(ranges) {
                let region = store.read(access.region);
                let guard = region.lock();
                buf.extend_from_slice(&guard.bytes_in_elem_range(range.clone()));
            }
            return KeyResult {
                key: jenkins_hash64(&buf, self.seed),
                selected_bytes: total_bytes,
                total_bytes,
            };
        }

        let sampler = self.sampler_for(signature);
        let selected = sampler.selected_indices(p);

        // Gather the selected bytes directly from the typed region storage.
        let layout = sampler.layout();
        let region_handles: Vec<_> = reads.iter().map(|a| store.read(a.region)).collect();
        let guards: Vec<_> = region_handles.iter().map(|h| h.lock()).collect();
        let mut buf = Vec::with_capacity(selected.len());
        for &flat in selected {
            let (segment, offset) = layout.locate(flat as usize);
            let access = reads[segment];
            let base_byte = ranges[segment].start * access.elem.width();
            buf.push(guards[segment].byte_at(base_byte + offset));
        }
        KeyResult {
            key: jenkins_hash64(&buf, self.seed),
            selected_bytes: buf.len(),
            total_bytes,
        }
    }

    /// Memory held by the cached index vectors (Table III accounting).
    pub fn memory_bytes(&self) -> usize {
        let whole: usize = self
            .samplers
            .lock()
            .values()
            .map(|s| s.memory_bytes())
            .sum();
        let per_arg: usize = self
            .arg_samplers
            .lock()
            .values()
            .map(|s| s.memory_bytes())
            .sum();
        whole + per_arg
    }

    fn sampler_for(&self, signature: &LayoutSignature) -> Arc<InputSampler> {
        let mut samplers = self.samplers.lock();
        if let Some(existing) = samplers.get(signature) {
            return Arc::clone(existing);
        }
        let layout = ByteLayout::new(
            signature
                .iter()
                .map(|&(elements, elem_width)| InputSpec {
                    elements,
                    elem_width,
                })
                .collect(),
        );
        let sampler = Arc::new(InputSampler::new(layout, self.type_aware, self.seed));
        samplers.insert(signature.clone(), Arc::clone(&sampler));
        sampler
    }

    /// Sampler over a single argument's bytes, for mixed-precision
    /// instances. The shuffle seed mixes in the argument index so two
    /// same-shaped arguments do not share a selection pattern.
    fn arg_sampler_for(&self, arg: usize, shape: (usize, usize)) -> Arc<InputSampler> {
        let mut samplers = self.arg_samplers.lock();
        if let Some(existing) = samplers.get(&(arg, shape)) {
            return Arc::clone(existing);
        }
        let layout = ByteLayout::new(vec![InputSpec {
            elements: shape.0,
            elem_width: shape.1,
        }]);
        let seed = self.seed ^ (arg as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        let sampler = Arc::new(InputSampler::new(layout, self.type_aware, seed));
        samplers.insert((arg, shape), Arc::clone(&sampler));
        sampler
    }
}

/// Result of one key computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyResult {
    /// The 8-byte Jenkins key.
    pub key: u64,
    /// Number of input bytes selected and hashed.
    pub selected_bytes: usize,
    /// Total number of input bytes of the task.
    pub total_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_runtime::Region;

    fn store_with_f32(values: &[f32]) -> (DataStore, Region<f32>) {
        let store = DataStore::new();
        let id = store.register_typed("in", values.to_vec()).unwrap();
        (store, id)
    }

    #[test]
    fn identical_inputs_give_identical_keys_and_changed_inputs_differ() {
        let (store, region) = store_with_f32(&[1.0, 2.0, 3.0, 4.0]);
        let keygen = KeyGenerator::new(1, true);
        let accesses = vec![Access::read(&region)];
        let k1 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        let k2 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        assert_eq!(k1, k2);
        assert_eq!(k1.total_bytes, 16);
        assert_eq!(k1.selected_bytes, 16);

        store.write(region).lock().as_f32_mut()[2] = 3.5;
        let k3 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        assert_ne!(k1.key, k3.key);
    }

    #[test]
    fn sampled_key_matches_between_instances_with_equal_selected_bytes() {
        // Two different regions with data that agrees on the high-order
        // bytes but differs in the low mantissa bits: a small p with
        // type-aware selection must produce the same key for both.
        let store = DataStore::new();
        let a = store
            .register_typed("a", (0..64).map(|i| 1.0 + i as f32).collect::<Vec<_>>())
            .unwrap();
        let b_data: Vec<f32> = (0..64)
            .map(|i| f32::from_bits((1.0f32 + i as f32).to_bits() ^ 0x1))
            .collect();
        let b = store.register_typed("b", b_data).unwrap();
        let keygen = KeyGenerator::new(3, true);
        let p = Percentage::from_fraction(0.25);
        let ka = keygen.compute_uniform(&store, &[Access::read(&a)], p);
        let kb = keygen.compute_uniform(&store, &[Access::read(&b)], p);
        assert_eq!(ka.key, kb.key);
        assert_eq!(ka.selected_bytes, 64);
    }

    #[test]
    fn ranged_accesses_hash_only_their_window() {
        let store = DataStore::new();
        let region = store
            .register_typed("m", (0..32).map(f64::from).collect::<Vec<_>>())
            .unwrap();
        let keygen = KeyGenerator::new(9, false);
        let first_half = vec![Access::read(&region).with_range(0..128)];
        let second_half = vec![Access::read(&region).with_range(128..256)];
        let k1 = keygen.compute_uniform(&store, &first_half, Percentage::FULL);
        let k2 = keygen.compute_uniform(&store, &second_half, Percentage::FULL);
        assert_ne!(k1.key, k2.key);
        assert_eq!(k1.total_bytes, 128);

        // Changing data outside the window must not change the key.
        store.write(region).lock().as_f64_mut()[20] = 99.0;
        let k1_again = keygen.compute_uniform(&store, &first_half, Percentage::FULL);
        assert_eq!(k1.key, k1_again.key);
    }

    #[test]
    fn write_only_accesses_do_not_contribute_to_the_key() {
        let store = DataStore::new();
        let input = store.register_typed("in", vec![1.0f32, 2.0]).unwrap();
        let output = store.register_zeros::<f32>("out", 2).unwrap();
        let keygen = KeyGenerator::new(5, true);
        let accesses = vec![Access::read(&input), Access::write(&output)];
        let k1 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        store.write(output).lock().as_f32_mut()[0] = 7.0;
        let k2 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        assert_eq!(k1.key, k2.key, "outputs must not affect the key");
    }

    #[test]
    fn sampled_and_full_keys_use_the_same_generator_consistently() {
        let (store, region) = store_with_f32(&[5.0; 1024]);
        let keygen = KeyGenerator::new(11, true);
        let accesses = vec![Access::read(&region)];
        let p = Percentage::from_training_step(3);
        let k_small = keygen.compute_uniform(&store, &accesses, p);
        assert_eq!(k_small.selected_bytes, p.bytes_of(4096));
        assert!(k_small.selected_bytes < k_small.total_bytes);
        // Deterministic across calls.
        assert_eq!(keygen.compute_uniform(&store, &accesses, p), k_small);
    }

    #[test]
    fn different_shapes_get_their_own_samplers() {
        let store = DataStore::new();
        let big = store.register_zeros::<f32>("big", 128).unwrap();
        let small = store.register_zeros::<f32>("small", 16).unwrap();
        let keygen = KeyGenerator::new(2, true);
        let p = Percentage::from_fraction(0.5);
        let _ = keygen.compute_uniform(&store, &[Access::read(&big)], p);
        let _ = keygen.compute_uniform(&store, &[Access::read(&small)], p);
        assert_eq!(keygen.samplers.lock().len(), 2);
        assert_eq!(keygen.memory_bytes(), (128 * 4 + 16 * 4) * 4);
    }

    #[test]
    fn mixed_precision_hashes_exact_arguments_fully() {
        // Argument 0 is a tiny control argument hashed exactly; argument 1
        // is a large field argument hashed at a small p. Changing any byte
        // of the control argument must change the key, even though the
        // type-wide p would almost never select its bytes.
        let store = DataStore::new();
        let control = store.register_typed("control", vec![7i32, 9]).unwrap();
        let field = store.register_typed("field", vec![1.0f32; 4096]).unwrap();
        let out = store.register_zeros::<f32>("out", 1).unwrap();
        let accesses = vec![
            Access::read(&control),
            Access::read(&field),
            Access::write(&out),
        ];
        let keygen = KeyGenerator::new(21, true);
        let precisions = [Percentage::FULL, Percentage::MIN];
        let k1 = keygen.compute(&store, &accesses, &precisions);
        assert_eq!(keygen.compute(&store, &accesses, &precisions), k1);
        // 8 control bytes + MIN of 16 KiB (at least 1 byte).
        assert_eq!(
            k1.selected_bytes,
            8 + Percentage::MIN.bytes_of(4096 * 4),
            "the exact argument contributes every byte"
        );

        // A low-significance flip in the control argument flips the key…
        store.write(control).lock().as_i32_mut()[1] = 10;
        let k2 = keygen.compute(&store, &accesses, &precisions);
        assert_ne!(k1.key, k2.key, "exact argument must be fully sensitive");

        // …while a low-mantissa flip in the field argument does not (those
        // bytes are the last the significance-ordered shuffle would select).
        store.write(field).lock().as_f32_mut()[17] = f32::from_bits(1.0f32.to_bits() ^ 0x1);
        let k3 = keygen.compute(&store, &accesses, &precisions);
        assert_eq!(
            k2.key, k3.key,
            "approximate argument tolerates low-significance noise"
        );
    }

    #[test]
    fn uniform_vector_matches_the_single_p_pipeline_bit_for_bit() {
        let store = DataStore::new();
        let a = store.register_typed("a", vec![3.5f64; 512]).unwrap();
        let b = store.register_typed("b", vec![-1.25f64; 64]).unwrap();
        let accesses = vec![Access::read(&a), Access::read(&b)];
        let keygen = KeyGenerator::new(13, true);
        for step in [0usize, 4, 9, 15] {
            let p = Percentage::from_training_step(step);
            let uniform = keygen.compute_uniform(&store, &accesses, p);
            let vector = keygen.compute(&store, &accesses, &[p, p]);
            assert_eq!(uniform, vector, "step {step}");
        }
    }

    #[test]
    #[should_panic(expected = "one precision per read access")]
    fn precision_vector_arity_is_checked() {
        let (store, region) = store_with_f32(&[1.0, 2.0]);
        let keygen = KeyGenerator::new(1, true);
        let _ = keygen.compute(
            &store,
            &[Access::read(&region)],
            &[Percentage::FULL, Percentage::FULL],
        );
    }

    /// Property (satellite of the MemoSpec redesign): key selection is
    /// *monotone in precision*. The selected byte set at precision `p` is a
    /// superset of the set at any `p' < p` (a prefix of the same shuffled
    /// index vector), so two inputs whose keys collide at `p` must also
    /// collide at every smaller `p'`.
    #[test]
    fn key_collisions_are_monotone_in_precision() {
        use atm_hash::Xoshiro256StarStar;
        const CASES: usize = 24;
        const ELEMS: usize = 256;
        let mut rng = Xoshiro256StarStar::new(0xC0111D);
        for case in 0..CASES {
            let store = DataStore::new();
            // Input `a` is random; input `b` agrees with `a` except for a
            // random set of low-mantissa bit flips, so the pair collides at
            // small p and (usually) separates as p grows.
            let a_data: Vec<f32> = (0..ELEMS)
                .map(|_| (rng.next_f32() - 0.5) * 1000.0)
                .collect();
            let b_data: Vec<f32> = a_data
                .iter()
                .map(|&v| {
                    if rng.below(4) == 0 {
                        f32::from_bits(v.to_bits() ^ (1u32 << rng.below(10)))
                    } else {
                        v
                    }
                })
                .collect();
            let a = store.register_typed(format!("a{case}"), a_data).unwrap();
            let b = store.register_typed(format!("b{case}"), b_data).unwrap();
            let keygen = KeyGenerator::new(rng.next_u64(), true);

            let keys_at = |accesses: &[Access], step: usize| {
                keygen
                    .compute_uniform(&store, accesses, Percentage::from_training_step(step))
                    .key
            };
            let acc_a = vec![Access::read(&a)];
            let acc_b = vec![Access::read(&b)];
            let collides: Vec<bool> = (0..=Percentage::STEPS)
                .map(|step| keys_at(&acc_a, step) == keys_at(&acc_b, step))
                .collect();
            for hi in 0..collides.len() {
                if collides[hi] {
                    for (lo, &collides_lo) in collides.iter().enumerate().take(hi) {
                        assert!(
                            collides_lo,
                            "case {case}: keys collide at step {hi} but not at \
                             smaller step {lo} — selection is not monotone"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_inputs_produce_a_stable_key() {
        let store = DataStore::new();
        let out = store.register_zeros::<f32>("out", 1).unwrap();
        let keygen = KeyGenerator::new(1, true);
        let accesses = vec![Access::write(&out)];
        let k1 = keygen.compute_uniform(&store, &accesses, Percentage::FULL);
        let k2 = keygen.compute_uniform(&store, &accesses, Percentage::MIN);
        assert_eq!(k1.key, k2.key);
        assert_eq!(k1.total_bytes, 0);
    }
}
