//! Hash-key generation for task instances.
//!
//! Combines the runtime's view of a task (its read accesses over typed
//! regions) with the `atm-hash` sampling machinery (§III-B/§III-C of the
//! paper): the concatenated input bytes are sampled through a per-task-type
//! shuffled index vector (built once and cached) and hashed with the Jenkins
//! hash into the 8-byte key stored in the THT/IKT.
//!
//! The cost of computing a key is proportional to the number of *selected*
//! bytes: the sampled bytes are gathered directly from the typed region
//! storage, without serialising the whole input first. This is what makes
//! Dynamic ATM's small `p` values reduce the hashing overhead (the gap
//! between "Static ATM" and "Oracle (100%)" in Figure 3).

use crate::snapshot::elem_range_of;
use atm_hash::shuffle::InputSpec;
use atm_hash::{jenkins_hash64, ByteLayout, InputSampler, Percentage};
use atm_runtime::{Access, DataStore};
use atm_sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Shape of a task instance's inputs: `(elements, elem_width)` per read
/// access. Task types normally have a fixed shape, but the paper explicitly
/// supports input sizes that vary at execution time, so samplers are cached
/// per shape.
pub type LayoutSignature = Vec<(usize, usize)>;

/// Per-task-type hash-key generator with cached shuffled index vectors.
#[derive(Debug)]
pub struct KeyGenerator {
    samplers: Mutex<HashMap<LayoutSignature, Arc<InputSampler>>>,
    type_aware: bool,
    seed: u64,
}

impl KeyGenerator {
    /// Creates a generator for one task type. `seed` makes the index
    /// shuffle (and therefore the keys) reproducible; `type_aware` selects
    /// the significance-ordered byte selection of §III-C.
    pub fn new(seed: u64, type_aware: bool) -> Self {
        KeyGenerator {
            samplers: Mutex::new(HashMap::new()),
            type_aware,
            seed,
        }
    }

    /// Whether type-aware selection is enabled.
    pub fn is_type_aware(&self) -> bool {
        self.type_aware
    }

    /// Layout signature of a task instance (read accesses only).
    pub fn signature(store: &DataStore, accesses: &[Access]) -> LayoutSignature {
        accesses
            .iter()
            .filter(|a| a.mode.is_read())
            .map(|a| (elem_range_of(store, a).len(), a.elem.width()))
            .collect()
    }

    /// Computes the hash key of a task instance at selection percentage `p`.
    ///
    /// Returns `(key, selected_bytes, total_input_bytes)`.
    pub fn compute(&self, store: &DataStore, accesses: &[Access], p: Percentage) -> KeyResult {
        let reads: Vec<&Access> = accesses.iter().filter(|a| a.mode.is_read()).collect();
        let ranges: Vec<std::ops::Range<usize>> =
            reads.iter().map(|a| elem_range_of(store, a)).collect();
        let signature: LayoutSignature = ranges
            .iter()
            .zip(&reads)
            .map(|(r, a)| (r.len(), a.elem.width()))
            .collect();
        let total_bytes: usize = signature.iter().map(|(n, w)| n * w).sum();

        if total_bytes == 0 {
            return KeyResult {
                key: jenkins_hash64(&[], self.seed),
                selected_bytes: 0,
                total_bytes: 0,
            };
        }

        // Full selection (Static ATM): hash the inputs contiguously without
        // going through the index vector.
        if p.is_full() {
            let mut buf = Vec::with_capacity(total_bytes);
            for (access, range) in reads.iter().zip(&ranges) {
                let region = store.read(access.region);
                let guard = region.lock();
                buf.extend_from_slice(&guard.bytes_in_elem_range(range.clone()));
            }
            return KeyResult {
                key: jenkins_hash64(&buf, self.seed),
                selected_bytes: total_bytes,
                total_bytes,
            };
        }

        let sampler = self.sampler_for(&signature);
        let selected = sampler.selected_indices(p);

        // Gather the selected bytes directly from the typed region storage.
        let layout = sampler.layout();
        let region_handles: Vec<_> = reads.iter().map(|a| store.read(a.region)).collect();
        let guards: Vec<_> = region_handles.iter().map(|h| h.lock()).collect();
        let mut buf = Vec::with_capacity(selected.len());
        for &flat in selected {
            let (segment, offset) = layout.locate(flat as usize);
            let access = reads[segment];
            let base_byte = ranges[segment].start * access.elem.width();
            buf.push(guards[segment].byte_at(base_byte + offset));
        }
        KeyResult {
            key: jenkins_hash64(&buf, self.seed),
            selected_bytes: buf.len(),
            total_bytes,
        }
    }

    /// Memory held by the cached index vectors (Table III accounting).
    pub fn memory_bytes(&self) -> usize {
        self.samplers
            .lock()
            .values()
            .map(|s| s.memory_bytes())
            .sum()
    }

    fn sampler_for(&self, signature: &LayoutSignature) -> Arc<InputSampler> {
        let mut samplers = self.samplers.lock();
        if let Some(existing) = samplers.get(signature) {
            return Arc::clone(existing);
        }
        let layout = ByteLayout::new(
            signature
                .iter()
                .map(|&(elements, elem_width)| InputSpec {
                    elements,
                    elem_width,
                })
                .collect(),
        );
        let sampler = Arc::new(InputSampler::new(layout, self.type_aware, self.seed));
        samplers.insert(signature.clone(), Arc::clone(&sampler));
        sampler
    }
}

/// Result of one key computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyResult {
    /// The 8-byte Jenkins key.
    pub key: u64,
    /// Number of input bytes selected and hashed.
    pub selected_bytes: usize,
    /// Total number of input bytes of the task.
    pub total_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use atm_runtime::Region;

    fn store_with_f32(values: &[f32]) -> (DataStore, Region<f32>) {
        let store = DataStore::new();
        let id = store.register_typed("in", values.to_vec()).unwrap();
        (store, id)
    }

    #[test]
    fn identical_inputs_give_identical_keys_and_changed_inputs_differ() {
        let (store, region) = store_with_f32(&[1.0, 2.0, 3.0, 4.0]);
        let keygen = KeyGenerator::new(1, true);
        let accesses = vec![Access::read(&region)];
        let k1 = keygen.compute(&store, &accesses, Percentage::FULL);
        let k2 = keygen.compute(&store, &accesses, Percentage::FULL);
        assert_eq!(k1, k2);
        assert_eq!(k1.total_bytes, 16);
        assert_eq!(k1.selected_bytes, 16);

        store.write(region).lock().as_f32_mut()[2] = 3.5;
        let k3 = keygen.compute(&store, &accesses, Percentage::FULL);
        assert_ne!(k1.key, k3.key);
    }

    #[test]
    fn sampled_key_matches_between_instances_with_equal_selected_bytes() {
        // Two different regions with data that agrees on the high-order
        // bytes but differs in the low mantissa bits: a small p with
        // type-aware selection must produce the same key for both.
        let store = DataStore::new();
        let a = store
            .register_typed("a", (0..64).map(|i| 1.0 + i as f32).collect::<Vec<_>>())
            .unwrap();
        let b_data: Vec<f32> = (0..64)
            .map(|i| f32::from_bits((1.0f32 + i as f32).to_bits() ^ 0x1))
            .collect();
        let b = store.register_typed("b", b_data).unwrap();
        let keygen = KeyGenerator::new(3, true);
        let p = Percentage::from_fraction(0.25);
        let ka = keygen.compute(&store, &[Access::read(&a)], p);
        let kb = keygen.compute(&store, &[Access::read(&b)], p);
        assert_eq!(ka.key, kb.key);
        assert_eq!(ka.selected_bytes, 64);
    }

    #[test]
    fn ranged_accesses_hash_only_their_window() {
        let store = DataStore::new();
        let region = store
            .register_typed("m", (0..32).map(f64::from).collect::<Vec<_>>())
            .unwrap();
        let keygen = KeyGenerator::new(9, false);
        let first_half = vec![Access::read(&region).with_range(0..128)];
        let second_half = vec![Access::read(&region).with_range(128..256)];
        let k1 = keygen.compute(&store, &first_half, Percentage::FULL);
        let k2 = keygen.compute(&store, &second_half, Percentage::FULL);
        assert_ne!(k1.key, k2.key);
        assert_eq!(k1.total_bytes, 128);

        // Changing data outside the window must not change the key.
        store.write(region).lock().as_f64_mut()[20] = 99.0;
        let k1_again = keygen.compute(&store, &first_half, Percentage::FULL);
        assert_eq!(k1.key, k1_again.key);
    }

    #[test]
    fn write_only_accesses_do_not_contribute_to_the_key() {
        let store = DataStore::new();
        let input = store.register_typed("in", vec![1.0f32, 2.0]).unwrap();
        let output = store.register_zeros::<f32>("out", 2).unwrap();
        let keygen = KeyGenerator::new(5, true);
        let accesses = vec![Access::read(&input), Access::write(&output)];
        let k1 = keygen.compute(&store, &accesses, Percentage::FULL);
        store.write(output).lock().as_f32_mut()[0] = 7.0;
        let k2 = keygen.compute(&store, &accesses, Percentage::FULL);
        assert_eq!(k1.key, k2.key, "outputs must not affect the key");
    }

    #[test]
    fn sampled_and_full_keys_use_the_same_generator_consistently() {
        let (store, region) = store_with_f32(&[5.0; 1024]);
        let keygen = KeyGenerator::new(11, true);
        let accesses = vec![Access::read(&region)];
        let p = Percentage::from_training_step(3);
        let k_small = keygen.compute(&store, &accesses, p);
        assert_eq!(k_small.selected_bytes, p.bytes_of(4096));
        assert!(k_small.selected_bytes < k_small.total_bytes);
        // Deterministic across calls.
        assert_eq!(keygen.compute(&store, &accesses, p), k_small);
    }

    #[test]
    fn different_shapes_get_their_own_samplers() {
        let store = DataStore::new();
        let big = store.register_zeros::<f32>("big", 128).unwrap();
        let small = store.register_zeros::<f32>("small", 16).unwrap();
        let keygen = KeyGenerator::new(2, true);
        let p = Percentage::from_fraction(0.5);
        let _ = keygen.compute(&store, &[Access::read(&big)], p);
        let _ = keygen.compute(&store, &[Access::read(&small)], p);
        assert_eq!(keygen.samplers.lock().len(), 2);
        assert_eq!(keygen.memory_bytes(), (128 * 4 + 16 * 4) * 4);
    }

    #[test]
    fn empty_inputs_produce_a_stable_key() {
        let store = DataStore::new();
        let out = store.register_zeros::<f32>("out", 1).unwrap();
        let keygen = KeyGenerator::new(1, true);
        let accesses = vec![Access::write(&out)];
        let k1 = keygen.compute(&store, &accesses, Percentage::FULL);
        let k2 = keygen.compute(&store, &accesses, Percentage::MIN);
        assert_eq!(k1.key, k2.key);
        assert_eq!(k1.total_bytes, 0);
    }
}
